//! Offline stand-in for the parts of `proptest` this workspace uses.
//!
//! Implements the `proptest!` macro, `ProptestConfig`, integer-range and
//! collection strategies, `prop_map`, and `any::<bool>()` on top of a
//! deterministic seeded generator. Each property runs `cases` times with
//! inputs derived from a seed hashed from the test name, so failures are
//! reproducible run to run. Unlike real proptest there is no shrinking:
//! a failing case reports the assertion as-is.

use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};
use std::ops::Range;

use rand::{Rng, RngCore, SeedableRng, StdRng};

pub mod prelude {
    //! Import-everything module mirroring `proptest::prelude`.

    pub use crate::strategy::Strategy;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, TestRng};

    pub mod prop {
        //! The `prop::` path familiar from real proptest.

        pub use crate::collection;
    }
}

/// Configuration of a property-test run.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property executes.
    pub cases: u32,
    /// Seed offset mixed into the per-test seed (0 = name-derived only).
    pub seed: u64,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, seed: 0 }
    }
}

/// Deterministic generator driving the strategies of one test.
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// Seed from the test name (stable across runs and platforms for a
    /// given Rust release).
    pub fn deterministic(name: &str, config: &ProptestConfig) -> Self {
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        TestRng { rng: StdRng::seed_from_u64(h.finish() ^ config.seed) }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    pub(crate) fn usize_in(&mut self, range: Range<usize>) -> usize {
        self.rng.random_range(range)
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u64, u32, usize, i64, i32);

    /// Strategy for `bool` (fair coin).
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Types with a canonical strategy, usable through [`any`].
pub trait Arbitrary: Sized {
    /// The canonical strategy for this type.
    type Strategy: strategy::Strategy<Value = Self>;
    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

impl Arbitrary for bool {
    type Strategy = strategy::AnyBool;
    fn arbitrary() -> Self::Strategy {
        strategy::AnyBool
    }
}

/// The canonical strategy for `T` (`any::<bool>()`, ...).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub mod collection {
    //! Collection strategies (`prop::collection::{vec, btree_set}`).

    use super::strategy::Strategy;
    use super::{BTreeSet, Range, TestRng};

    /// Strategy producing `Vec`s with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` of values from `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy producing `BTreeSet`s with target sizes drawn from `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `BTreeSet` of values from `element` with a size in `size` (best
    /// effort: with a narrow element domain the set may saturate below
    /// the requested size, as in real proptest).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        assert!(size.start < size.end, "empty size range");
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = rng.usize_in(self.size.clone());
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target.saturating_mul(20) + 20 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Assertion macro (maps to `assert!`; no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion macro (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Define property tests: each `fn` runs `cases` times with fresh inputs
/// drawn from the strategies named after `in`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::deterministic(stringify!($name), &config);
                for _case in 0..config.cases {
                    $(let $arg = $crate::prelude::Strategy::generate(&($strategy), &mut rng);)+
                    $body
                }
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($arg in $strategy),+) $body)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_respect_bounds(x in 10u64..20, y in 3usize..5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((3..5).contains(&y));
        }

        #[test]
        fn collections_respect_sizes(v in prop::collection::vec(0u64..100, 2..8)) {
            prop_assert!(v.len() >= 2 && v.len() < 8);
        }

        #[test]
        fn btree_sets_are_sorted_unique(s in prop::collection::btree_set(0u64..512, 0..60)) {
            let v: Vec<u64> = s.into_iter().collect();
            prop_assert!(v.windows(2).all(|w| w[0] < w[1]));
        }

        #[test]
        fn prop_map_applies(v in prop::collection::btree_set(0u64..9, 1..4)
            .prop_map(|s| s.into_iter().collect::<Vec<u64>>())) {
            prop_assert!(!v.is_empty());
            prop_assert!(v.iter().all(|&x| x < 9));
        }

        #[test]
        fn any_bool_generates(b in any::<bool>()) {
            prop_assert_eq!(b, b);
        }
    }
}
