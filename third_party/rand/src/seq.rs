//! Sequence helpers (`rand::seq::SliceRandom`).

use crate::RngCore;

/// Random operations on slices.
pub trait SliceRandom {
    /// Shuffle the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = crate::uniform_below(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SeedableRng, StdRng};

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, (0..50).collect::<Vec<u32>>());
    }
}
