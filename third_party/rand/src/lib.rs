//! Offline stand-in for the parts of `rand` 0.9 this workspace uses.
//!
//! The build environment has no access to crates.io, so this crate
//! reimplements the small API surface the workspace needs — `StdRng`
//! seeded with `seed_from_u64`, the `Rng` sampling methods `random`,
//! `random_bool` and `random_range`, and `SliceRandom::shuffle` — on top
//! of a xoshiro256++ generator. All uses across the workspace seed
//! explicitly, so runs are deterministic and reproducible.

pub mod rngs;
pub mod seq;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of `T` from its standard distribution
    /// (`f64` in `[0, 1)`, uniform integers, fair `bool`).
    fn random<T: StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Bernoulli sample: `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p.clamp(0.0, 1.0)
    }

    /// Uniform sample from an integer range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable by [`Rng::random`].
pub trait StandardUniform: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl StandardUniform for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardUniform for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardUniform for usize {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardUniform for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::random_range`] to produce a `T`.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

/// Unbiased uniform integer in `[0, span)` via Lemire-style rejection.
pub(crate) fn uniform_below<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - u64::MAX % span;
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range_int!(usize, u64, u32, i64, i32);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The standard generator: xoshiro256++ (same family the real `rand`
/// has used for `StdRng` alternatives; statistically strong and fast).
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // An all-zero state is a fixed point; SplitMix64 cannot produce
        // four consecutive zeros, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_samples_lie_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn ranges_cover_and_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            let v = rng.random_range(0..4usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = rng.random_range(5..=7u64);
            assert!((5..=7).contains(&v));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.1));
    }
}
