//! Named generator types (`rand::rngs::StdRng`).

pub use crate::StdRng;
