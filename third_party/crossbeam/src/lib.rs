//! Offline stand-in for the parts of `crossbeam` this workspace uses.
//!
//! Only `crossbeam::channel::{unbounded, Sender, Receiver}` is needed (the
//! simulated runtime's message fabric), and for that usage
//! `std::sync::mpsc` is a drop-in: senders are `Clone + Send + Sync`,
//! each receiver is owned by exactly one rank thread, and channels are
//! unbounded FIFO.

pub mod channel {
    //! MPSC channels with the `crossbeam::channel` construction API.

    pub use std::sync::mpsc::{Receiver, RecvError, RecvTimeoutError, SendError, Sender};

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn channels_move_values_across_threads() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(41u64).unwrap());
        std::thread::spawn(move || tx.send(1u64).unwrap());
        let sum: u64 = (0..2).map(|_| rx.recv().unwrap()).sum();
        assert_eq!(sum, 42);
    }
}
