//! Offline stand-in for the parts of `rayon` this workspace uses.
//!
//! The kernels use two patterns:
//! `(0..n).into_par_iter().map(f).collect::<Vec<_>>()` and
//! `slice.par_chunks(size).map(f).collect::<Vec<_>>()`, so this crate
//! provides exactly those: parallel maps over an index range or over
//! contiguous slice chunks, executed on scoped OS threads and preserving
//! output order. Work is split into contiguous chunks, one per available
//! core; small inputs run inline to avoid spawn overhead.

use std::ops::Range;

pub mod prelude {
    //! Import-everything module mirroring `rayon::prelude`.

    pub use crate::{
        EnumeratedParChunksMut, IntoParallelIterator, ParChunks, ParChunksMap, ParChunksMut,
        ParRangeMap, ParallelRange, ParallelSlice, ParallelSliceMut,
    };
}

/// Conversion into a parallel iterator (mirrors rayon's entry point).
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type Iter;
    /// Convert `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParallelRange;
    fn into_par_iter(self) -> ParallelRange {
        ParallelRange { range: self }
    }
}

/// A parallel iterator over `Range<usize>`.
pub struct ParallelRange {
    range: Range<usize>,
}

impl ParallelRange {
    /// Map each index through `f` (executed in parallel on collect).
    pub fn map<T, F>(self, f: F) -> ParRangeMap<F>
    where
        F: Fn(usize) -> T + Sync,
        T: Send,
    {
        ParRangeMap { range: self.range, f }
    }
}

/// The mapped parallel range, ready to collect.
pub struct ParRangeMap<F> {
    range: Range<usize>,
    f: F,
}

impl<F> ParRangeMap<F> {
    /// Execute the map in parallel and collect results in index order.
    pub fn collect<C, T>(self) -> C
    where
        F: Fn(usize) -> T + Sync,
        T: Send,
        C: From<Vec<T>>,
    {
        C::from(par_map_range(self.range, &self.f))
    }

    /// Execute the map in parallel and reduce the results with `op`,
    /// mirroring rayon's `reduce(identity, op)`: each worker folds its
    /// contiguous index chunk starting from `identity()`, and the per-chunk
    /// partials are combined left to right. As in real rayon, `op` must be
    /// associative and `identity()` a true identity for the result to be
    /// independent of how the range is split across threads.
    pub fn reduce<T, ID, OP>(self, identity: ID, op: OP) -> T
    where
        F: Fn(usize) -> T + Sync,
        T: Send,
        ID: Fn() -> T + Sync,
        OP: Fn(T, T) -> T + Sync,
    {
        par_reduce_range(self.range, &self.f, &identity, &op)
    }
}

/// Parallel operations on slices (mirrors rayon's `ParallelSlice`).
pub trait ParallelSlice<T: Sync> {
    /// Split the slice into contiguous chunks of at most `chunk_size`
    /// elements, processed in parallel on collect.
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunks { slice: self, chunk_size }
    }
}

/// A parallel iterator over contiguous slice chunks.
pub struct ParChunks<'a, T> {
    slice: &'a [T],
    chunk_size: usize,
}

impl<'a, T: Sync> ParChunks<'a, T> {
    /// Map each chunk through `f` (executed in parallel on collect).
    pub fn map<U, F>(self, f: F) -> ParChunksMap<'a, T, F>
    where
        F: Fn(&[T]) -> U + Sync,
        U: Send,
    {
        ParChunksMap { slice: self.slice, chunk_size: self.chunk_size, f }
    }
}

/// The mapped parallel chunks, ready to collect.
pub struct ParChunksMap<'a, T, F> {
    slice: &'a [T],
    chunk_size: usize,
    f: F,
}

impl<T: Sync, F> ParChunksMap<'_, T, F> {
    /// Execute the map in parallel and collect the per-chunk results in
    /// chunk order.
    pub fn collect<C, U>(self) -> C
    where
        F: Fn(&[T]) -> U + Sync,
        U: Send,
        C: From<Vec<U>>,
    {
        let nchunks = self.slice.len().div_ceil(self.chunk_size.max(1));
        let out = par_map_range(0..nchunks, &|c| {
            let lo = c * self.chunk_size;
            let hi = (lo + self.chunk_size).min(self.slice.len());
            (self.f)(&self.slice[lo..hi])
        });
        C::from(out)
    }

    /// Map each chunk in parallel and reduce the per-chunk results with
    /// `op` (fold/reduce over chunks). Same contract as
    /// [`ParRangeMap::reduce`]: `op` associative, `identity()` neutral.
    pub fn reduce<U, ID, OP>(self, identity: ID, op: OP) -> U
    where
        F: Fn(&[T]) -> U + Sync,
        U: Send,
        ID: Fn() -> U + Sync,
        OP: Fn(U, U) -> U + Sync,
    {
        let nchunks = self.slice.len().div_ceil(self.chunk_size.max(1));
        par_reduce_range(
            0..nchunks,
            &|c| {
                let lo = c * self.chunk_size;
                let hi = (lo + self.chunk_size).min(self.slice.len());
                (self.f)(&self.slice[lo..hi])
            },
            &identity,
            &op,
        )
    }
}

/// Parallel operations on mutable slices (mirrors rayon's
/// `ParallelSliceMut`).
pub trait ParallelSliceMut<T: Send> {
    /// Split the slice into contiguous mutable chunks of at most
    /// `chunk_size` elements, processed in parallel on `for_each`.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut { slice: self, chunk_size }
    }
}

/// A parallel iterator over contiguous mutable slice chunks.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pair every chunk with its index (chunk `i` covers elements
    /// `i * chunk_size ..`), mirroring rayon's `enumerate()`.
    pub fn enumerate(self) -> EnumeratedParChunksMut<'a, T> {
        EnumeratedParChunksMut { slice: self.slice, chunk_size: self.chunk_size }
    }

    /// Run `f` on every chunk in parallel (in-place fill).
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
        T: Sync,
    {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

/// The enumerated mutable chunks, ready to consume with `for_each`.
pub struct EnumeratedParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<T: Send> EnumeratedParChunksMut<'_, T> {
    /// Run `f` on every `(chunk_index, chunk)` pair in parallel. Chunks
    /// are disjoint sub-slices, so each worker mutates its own region;
    /// completion of `for_each` makes all writes visible to the caller
    /// (the scoped-thread joins are the synchronization points).
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
        T: Sync,
    {
        let chunks: Vec<(usize, &mut [T])> =
            self.slice.chunks_mut(self.chunk_size).enumerate().collect();
        let nchunks = chunks.len();
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        if nchunks < 2 || threads < 2 {
            for chunk in chunks {
                f(chunk);
            }
            return;
        }
        let groups = threads.min(nchunks);
        let group_len = nchunks.div_ceil(groups);
        let mut remaining = chunks;
        std::thread::scope(|scope| {
            let f = &f;
            let mut handles = Vec::with_capacity(groups);
            while !remaining.is_empty() {
                let take = group_len.min(remaining.len());
                let group: Vec<(usize, &mut [T])> = remaining.drain(..take).collect();
                handles.push(scope.spawn(move || {
                    for chunk in group {
                        f(chunk);
                    }
                }));
            }
            for h in handles {
                h.join().expect("parallel mutable-chunk worker panicked");
            }
        });
    }
}

fn par_map_range<T, F>(range: Range<usize>, f: &F) -> Vec<T>
where
    F: Fn(usize) -> T + Sync,
    T: Send,
{
    let len = range.len();
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    if len < 2 || threads < 2 {
        return range.map(f).collect();
    }
    let chunks = threads.min(len);
    let chunk_len = len.div_ceil(chunks);
    let mut out: Vec<Vec<T>> = Vec::with_capacity(chunks);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(chunks);
        for c in 0..chunks {
            let lo = range.start + c * chunk_len;
            let hi = (lo + chunk_len).min(range.end);
            handles.push(scope.spawn(move || (lo..hi).map(f).collect::<Vec<T>>()));
        }
        for h in handles {
            out.push(h.join().expect("parallel map worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

fn par_reduce_range<T, F, ID, OP>(range: Range<usize>, f: &F, identity: &ID, op: &OP) -> T
where
    F: Fn(usize) -> T + Sync,
    T: Send,
    ID: Fn() -> T + Sync,
    OP: Fn(T, T) -> T + Sync,
{
    let len = range.len();
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    if len < 2 || threads < 2 {
        return range.map(f).fold(identity(), op);
    }
    let chunks = threads.min(len);
    let chunk_len = len.div_ceil(chunks);
    let mut partials: Vec<T> = Vec::with_capacity(chunks);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(chunks);
        for c in 0..chunks {
            let lo = range.start + c * chunk_len;
            let hi = (lo + chunk_len).min(range.end);
            handles.push(scope.spawn(move || (lo..hi).map(f).fold(identity(), op)));
        }
        for h in handles {
            partials.push(h.join().expect("parallel reduce worker panicked"));
        }
    });
    // Combine per-chunk partials in chunk order so order-sensitive (but
    // associative) operations like concatenation behave as a left fold.
    partials.into_iter().fold(identity(), op)
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_matches_serial_chunks() {
        let data: Vec<u64> = (0..1003).collect();
        for chunk in [1usize, 7, 64, 1003, 5000] {
            let par: Vec<u64> = data.par_chunks(chunk).map(|c| c.iter().sum::<u64>()).collect();
            let serial: Vec<u64> = data.chunks(chunk).map(|c| c.iter().sum::<u64>()).collect();
            assert_eq!(par, serial, "chunk size {chunk}");
        }
        let empty: Vec<usize> = [].par_chunks(4).map(<[i32]>::len).collect();
        assert!(empty.is_empty());
    }

    #[test]
    fn map_reduce_over_range_matches_serial_fold() {
        let sum: u64 = (0..100_000).into_par_iter().map(|i| i as u64).reduce(|| 0, |a, b| a + b);
        assert_eq!(sum, 100_000u64 * 99_999 / 2);
        // Order-sensitive associative op: concatenation keeps index order.
        let cat: Vec<usize> =
            (0..257).into_par_iter().map(|i| vec![i]).reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            });
        assert_eq!(cat, (0..257).collect::<Vec<_>>());
        // Degenerate ranges fall back to the identity.
        let none: u64 = (9..9).into_par_iter().map(|_| 1u64).reduce(|| 0, |a, b| a + b);
        assert_eq!(none, 0);
    }

    #[test]
    fn map_reduce_over_chunks_matches_serial_fold() {
        let data: Vec<u64> = (0..5_001).collect();
        for chunk in [1usize, 13, 512, 5_001, 9_000] {
            let max = data
                .par_chunks(chunk)
                .map(|c| c.iter().copied().max().unwrap_or(0))
                .reduce(|| 0, u64::max);
            assert_eq!(max, 5_000, "chunk size {chunk}");
            let sum: u64 =
                data.par_chunks(chunk).map(|c| c.iter().sum::<u64>()).reduce(|| 0, |a, b| a + b);
            assert_eq!(sum, data.iter().sum::<u64>(), "chunk size {chunk}");
        }
        let empty: u64 =
            [].par_chunks(4).map(|c: &[u64]| c.len() as u64).reduce(|| 0, |a, b| a + b);
        assert_eq!(empty, 0);
    }

    #[test]
    #[should_panic]
    fn par_chunks_rejects_zero_chunk_size() {
        let _ = [1u8, 2].par_chunks(0);
    }

    #[test]
    fn par_chunks_mut_fills_in_place_like_serial_chunks_mut() {
        for (len, chunk) in [(0usize, 4usize), (1, 4), (1003, 1), (1003, 7), (1003, 64), (50, 90)] {
            let mut par: Vec<u64> = vec![0; len];
            par.par_chunks_mut(chunk).for_each(|c| {
                for (i, v) in c.iter_mut().enumerate() {
                    *v = i as u64 + 1;
                }
            });
            let mut serial: Vec<u64> = vec![0; len];
            for c in serial.chunks_mut(chunk) {
                for (i, v) in c.iter_mut().enumerate() {
                    *v = i as u64 + 1;
                }
            }
            assert_eq!(par, serial, "len {len}, chunk size {chunk}");
        }
    }

    #[test]
    fn par_chunks_mut_enumerate_sees_every_chunk_index_once() {
        let mut data: Vec<u64> = vec![0; 1003];
        data.par_chunks_mut(10).enumerate().for_each(|(idx, c)| {
            for v in c.iter_mut() {
                *v = idx as u64;
            }
        });
        let expected: Vec<u64> = (0..1003).map(|i| (i / 10) as u64).collect();
        assert_eq!(data, expected);
    }

    #[test]
    #[should_panic]
    fn par_chunks_mut_rejects_zero_chunk_size() {
        let _ = [1u8, 2].par_chunks_mut(0);
    }

    #[test]
    fn empty_and_tiny_ranges_work() {
        let out: Vec<usize> = (5..5).into_par_iter().map(|i| i * 2).collect();
        assert!(out.is_empty());
        let out: Vec<usize> = (3..4).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(out, vec![4]);
    }
}
