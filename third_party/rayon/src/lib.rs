//! Offline stand-in for the parts of `rayon` this workspace uses.
//!
//! The kernels only use the pattern
//! `(0..n).into_par_iter().map(f).collect::<Vec<_>>()`, so this crate
//! provides exactly that: a parallel index-range map executed on scoped
//! OS threads, preserving output order. Work is split into contiguous
//! chunks, one per available core; small ranges run inline to avoid
//! spawn overhead.

use std::ops::Range;

pub mod prelude {
    //! Import-everything module mirroring `rayon::prelude`.

    pub use crate::{IntoParallelIterator, ParRangeMap, ParallelRange};
}

/// Conversion into a parallel iterator (mirrors rayon's entry point).
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type Iter;
    /// Convert `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParallelRange;
    fn into_par_iter(self) -> ParallelRange {
        ParallelRange { range: self }
    }
}

/// A parallel iterator over `Range<usize>`.
pub struct ParallelRange {
    range: Range<usize>,
}

impl ParallelRange {
    /// Map each index through `f` (executed in parallel on collect).
    pub fn map<T, F>(self, f: F) -> ParRangeMap<F>
    where
        F: Fn(usize) -> T + Sync,
        T: Send,
    {
        ParRangeMap { range: self.range, f }
    }
}

/// The mapped parallel range, ready to collect.
pub struct ParRangeMap<F> {
    range: Range<usize>,
    f: F,
}

impl<F> ParRangeMap<F> {
    /// Execute the map in parallel and collect results in index order.
    pub fn collect<C, T>(self) -> C
    where
        F: Fn(usize) -> T + Sync,
        T: Send,
        C: From<Vec<T>>,
    {
        C::from(par_map_range(self.range, &self.f))
    }
}

fn par_map_range<T, F>(range: Range<usize>, f: &F) -> Vec<T>
where
    F: Fn(usize) -> T + Sync,
    T: Send,
{
    let len = range.len();
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    if len < 2 || threads < 2 {
        return range.map(f).collect();
    }
    let chunks = threads.min(len);
    let chunk_len = len.div_ceil(chunks);
    let mut out: Vec<Vec<T>> = Vec::with_capacity(chunks);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(chunks);
        for c in 0..chunks {
            let lo = range.start + c * chunk_len;
            let hi = (lo + chunk_len).min(range.end);
            handles.push(scope.spawn(move || (lo..hi).map(f).collect::<Vec<T>>()));
        }
        for h in handles {
            out.push(h.join().expect("parallel map worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_tiny_ranges_work() {
        let out: Vec<usize> = (5..5).into_par_iter().map(|i| i * 2).collect();
        assert!(out.is_empty());
        let out: Vec<usize> = (3..4).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(out, vec![4]);
    }
}
