//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize` / `Deserialize` trait names and re-exports the
//! no-op derive macros from the sibling `serde_derive` stub, so
//! `#[derive(Serialize, Deserialize)]` annotations across the workspace
//! compile without network access to crates.io. No serialization is
//! performed anywhere yet; swapping in the real serde later requires no
//! source changes outside `third_party/`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
