//! Offline stand-in for `serde_derive`.
//!
//! The workspace builds in an environment without access to crates.io, so
//! the real serde machinery is unavailable. Nothing in the workspace
//! serializes values yet — types only *derive* the traits so their shape
//! is ready for a real serde once the dependency can be vendored — so the
//! derives here expand to nothing.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
