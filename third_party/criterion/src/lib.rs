//! Offline stand-in for the parts of `criterion` this workspace uses.
//!
//! Provides `Criterion`, benchmark groups, `BenchmarkId`, `Bencher` and
//! the `criterion_group!` / `criterion_main!` macros. Instead of
//! criterion's statistical sampling it runs each benchmark closure a
//! small, configurable number of times — timing every sample into a
//! `gas_obs::LatencyHistogram` (the same bucketing the serving stack
//! uses) — and prints the mean, p50 and p99 wall-clock times. Enough to
//! compare kernels locally and to keep `--all-targets` builds honest,
//! without the plotting/statistics dependency tree.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_samples: 10 }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), samples: self.default_samples, _parent: self }
    }
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId { id: format!("{name}/{param}") }
    }

    /// An id made of the parameter value alone.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId { id: param.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of benchmarks sharing a name and sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Run a benchmark identified by `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.samples);
        f(&mut bencher);
        bencher.report(&self.name, &id.to_string());
        self
    }

    /// Run a benchmark that receives an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.samples);
        f(&mut bencher, input);
        bencher.report(&self.name, &id.to_string());
        self
    }

    /// Finish the group (printing is per-benchmark; this is a no-op kept
    /// for API compatibility).
    pub fn finish(&mut self) {}
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u64,
    hist: gas_obs::LatencyHistogram,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher { samples, total: Duration::ZERO, iters: 0, hist: gas_obs::LatencyHistogram::new() }
    }

    /// Time `f`, running it once for warm-up and `sample_size` times
    /// measured. Each sample is timed individually so the report can
    /// quote tail latency, not just the mean.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            let elapsed = start.elapsed();
            self.total += elapsed;
            self.hist.record(elapsed);
        }
        self.iters += self.samples as u64;
    }

    fn report(&self, group: &str, id: &str) {
        if self.iters == 0 {
            println!("bench {group}/{id}: no iterations recorded");
            return;
        }
        let mean = self.total.as_secs_f64() / self.iters as f64;
        println!(
            "bench {group}/{id}: mean {:.6} s, p50 {:.6} s, p99 {:.6} s over {} iters",
            mean,
            self.hist.quantile_micros(0.50) as f64 / 1e6,
            self.hist.quantile_micros(0.99) as f64 / 1e6,
            self.iters
        );
    }
}

/// Bundle benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_closure_expected_number_of_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut count = 0u64;
        group.bench_function("counted", |b| b.iter(|| count += 1));
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(count, 4);
    }

    #[test]
    fn bencher_records_each_sample_in_the_histogram() {
        let mut b = Bencher::new(5);
        b.iter(|| std::thread::sleep(Duration::from_micros(50)));
        assert_eq!(b.hist.count(), 5);
        assert!(b.hist.quantile_micros(0.50) <= b.hist.quantile_micros(0.99));
        assert!(b.hist.quantile_micros(0.99) >= 50);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter(16).to_string(), "16");
    }
}
