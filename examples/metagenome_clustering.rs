//! Metagenome clustering: the full Figure-1 pipeline on synthetic genomes.
//!
//! A family of related genomes is simulated (an ancestor plus derivatives
//! at increasing mutation rates, in two clades), short reads are drawn
//! from each, rare k-mers are filtered out, SimilarityAtScale produces the
//! all-pairs distance matrix, and the downstream steps of the paper's
//! Figure 1 run on top: hierarchical clustering, a neighbor-joining guide
//! tree (Newick), and proximity-based outlier detection.
//!
//! Run with: `cargo run --release --example metagenome_clustering`

use genomeatscale::cluster::hierarchical::{hierarchical_cluster, Linkage};
use genomeatscale::cluster::nj::neighbor_joining;
use genomeatscale::cluster::outlier::knn_outlier_scores;
use genomeatscale::genomics::synth::{mutate, random_genome, simulate_reads};
use genomeatscale::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2020);
    let genome_len = 60_000;
    let k = 21;
    let extractor = KmerExtractor::new(k).expect("valid k");

    // Two clades descended from two ancestors, plus one unrelated outlier.
    let clade_a_root = random_genome(genome_len, &mut rng);
    let clade_b_root = random_genome(genome_len, &mut rng);
    let genomes: Vec<(String, Vec<u8>)> = vec![
        ("cladeA_0".to_string(), clade_a_root.clone()),
        ("cladeA_1".to_string(), mutate(&clade_a_root, 0.01, &mut rng)),
        ("cladeA_2".to_string(), mutate(&clade_a_root, 0.03, &mut rng)),
        ("cladeB_0".to_string(), clade_b_root.clone()),
        ("cladeB_1".to_string(), mutate(&clade_b_root, 0.02, &mut rng)),
        ("outlier".to_string(), random_genome(genome_len, &mut rng)),
    ];

    // Sequence each genome into error-prone short reads and build the
    // thresholded k-mer samples (the noise filter of Section V-A2).
    let samples: Vec<KmerSample> = genomes
        .iter()
        .map(|(name, g)| {
            let reads = simulate_reads(g, 150, 4.0, 0.002, &mut rng).expect("valid read spec");
            KmerSample::from_reads_with_threshold(
                name.clone(),
                reads.iter().map(|r| r.as_slice()),
                &extractor,
                2,
            )
        })
        .collect();
    for s in &samples {
        println!("{}: {} distinct {k}-mers after thresholding", s.name(), s.len());
    }

    // All-pairs Jaccard with SimilarityAtScale (4 batches to exercise the
    // batched path).
    let collection = SampleCollection::from_kmer_samples(&samples).expect("valid samples");
    let result =
        similarity_at_scale(&collection, &SimilarityConfig::with_batches(4)).expect("run succeeds");
    let distances = result.distance();

    println!("\nJaccard distance matrix:");
    for i in 0..collection.n() {
        for j in 0..collection.n() {
            print!("{:>8.3}", distances.get(i, j));
        }
        println!("   {}", collection.names()[i]);
    }

    // Downstream step 7: hierarchical clustering into three groups.
    let dendrogram =
        hierarchical_cluster(&distances, Linkage::Average).expect("valid distance matrix");
    let labels = dendrogram.cut(3).expect("3 clusters");
    println!("\nAverage-linkage clusters (k = 3):");
    for (name, label) in collection.names().iter().zip(&labels) {
        println!("  {name} -> cluster {label}");
    }
    assert_eq!(labels[0], labels[1]);
    assert_eq!(labels[3], labels[4]);
    assert_ne!(labels[0], labels[3]);

    // Downstream step 9: a neighbor-joining guide tree.
    let tree = neighbor_joining(&distances, collection.names()).expect("valid inputs");
    println!("\nNeighbor-joining guide tree (Newick):\n{}", tree.newick());

    // Anomaly detection: the unrelated genome has the largest kNN score.
    let scores = knn_outlier_scores(&distances, 2).expect("valid k");
    let (worst, score) =
        scores.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap();
    println!("\nMost anomalous sample: {} (kNN distance {:.3})", collection.names()[worst], score);
    assert_eq!(collection.names()[worst], "outlier");
}
