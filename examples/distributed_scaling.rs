//! Distributed execution on the simulated runtime: correctness and
//! scaling behaviour at a glance.
//!
//! A synthetic workload is processed by the simulated-distributed driver
//! at several rank counts; every run is checked bit-exactly against the
//! exact reference, and the per-rank communication volume, superstep
//! count and BSP-projected time on a Stampede2-like machine are printed.
//!
//! Run with: `cargo run --release --example distributed_scaling`

use genomeatscale::core::algorithm::similarity_at_scale_distributed;
use genomeatscale::genomics::datasets::DatasetSpec;
use genomeatscale::prelude::*;

fn main() {
    let spec = DatasetSpec::explicit(30_000, 40, 0.01, 11);
    let samples = spec.generate().expect("valid spec");
    let collection = SampleCollection::from_sorted_sets(samples).expect("sorted samples");
    println!(
        "Workload: n = {} samples, m = {} attributes, nnz = {}",
        collection.n(),
        collection.m(),
        collection.nnz()
    );

    let exact = jaccard_exact_pairwise(&collection);
    let machine = Machine::stampede2_knl();
    let cost_model = machine.cost_model().expect("valid machine");
    let config = SimilarityConfig::with_batches(4).with_replication(2);

    println!(
        "\n{:>6} {:>10} {:>14} {:>12} {:>14} {:>14}",
        "ranks", "batches", "bytes/rank", "supersteps", "measured", "BSP-projected"
    );
    for ranks in [1usize, 2, 4, 8, 16] {
        let summary = similarity_at_scale_distributed(&collection, &config, ranks, &machine)
            .expect("simulated run succeeds");
        // Bit-exact agreement with the reference regardless of rank count.
        assert_eq!(summary.result.intersections(), exact.intersections());
        let agg = &summary.aggregate;
        println!(
            "{ranks:>6} {:>10} {:>14} {:>12} {:>13.3}s {:>13.6}s",
            summary.batch_seconds.len(),
            agg.total_bytes_sent / ranks as u64,
            agg.max_supersteps,
            summary.measured_seconds,
            summary.projected_time(&cost_model)
        );
    }

    println!(
        "\nEvery rank count produced the identical exact similarity matrix. The counters make \
         the cost structure visible: on this deliberately tiny workload the replicated filter \
         vector dominates and is a constant per-rank overhead, while the 2.5D product traffic — \
         the term that dominates at the paper's scales — shrinks per rank as the grid grows \
         (see the comm_volume and cost_model_scaling experiments for that regime)."
    );
}
