//! Walkthrough of the segmented index lifecycle: build a base index with
//! an `IndexWriter`, add a batch of new samples incrementally, delete a
//! few, query before and after compaction, and inspect segment stats —
//! all against a crash-safe container-v3 file on disk.
//!
//! Run with: `cargo run --release --example incremental_index`

use genomeatscale::prelude::*;

/// A family-structured "genome": a shared core plus a private stretch.
fn sample(family: u64, member: u64) -> Vec<u64> {
    let mut s: Vec<u64> = (family * 1_000_000..family * 1_000_000 + 800).collect();
    let private = family * 1_000_000 + 500_000 + member * 60;
    s.extend(private..private + 60);
    s
}

fn print_stats(label: &str, reader: &IndexReader) {
    println!(
        "{label}: generation {}, {} segment(s), {} live / {} stored rows, {} tombstone(s)",
        reader.generation(),
        reader.segments().len(),
        reader.n_live(),
        reader.n_rows(),
        reader.tombstones().len()
    );
    for s in reader.segment_stats() {
        println!("    segment {:>3}: {:>3} rows, {:>3} live", s.segment_id, s.rows, s.live_rows);
    }
}

fn main() {
    let path =
        std::env::temp_dir().join(format!("incremental_index_example_{}.gidx", std::process::id()));

    // 1. BASE BUILD — three families of four members each, staged and
    // sealed in one commit. The writer fixes the signature scheme for
    // the life of the index; every later batch signs identically.
    let config = IndexConfig::default()
        .with_signature_len(128)
        .with_threshold(0.5)
        .with_signer(SignerKind::Oph);
    let mut writer =
        IndexOptions::from_config(config).create_writer_at(&path).expect("create index file");
    for family in 0..3u64 {
        for member in 0..4u64 {
            writer
                .add(format!("f{family}/m{member}"), sample(family, member))
                .expect("stage sample");
        }
    }
    let commit = writer.commit().expect("seal the base segment");
    println!(
        "base commit: sealed segment {:?} with {} rows (generation {})",
        commit.sealed_segment, commit.rows_added, commit.generation
    );
    print_stats("after base build", &writer.reader());

    // 2. INCREMENTAL ADD — a brand-new family arrives. Only the delta is
    // signed and bucketed; the base segment is untouched (immutable).
    for member in 0..4u64 {
        writer.add(format!("f3/m{member}"), sample(3, member)).expect("stage new sample");
    }
    writer.commit().expect("seal the delta segment");

    // 3. DELETE — two members of family 1 are retracted. Deletes are
    // tombstones: recorded in the manifest, honored by every query, and
    // physically dropped at the next compaction.
    writer.delete(4).expect("delete f1/m0");
    writer.delete(5).expect("delete f1/m1");
    writer.commit().expect("commit the tombstones");
    print_stats("after add + delete", &writer.reader());

    // 4. QUERY BEFORE COMPACTION — snapshots see all live segments and
    // skip tombstoned rows.
    let reader = writer.reader();
    let engine = QueryEngine::snapshot(reader.clone());
    let opts = QueryOptions { top_k: 4, ..Default::default() };
    let probe = sample(1, 2);
    let before = engine.query(&probe, &opts).expect("query before compaction");
    println!("\ntop-{} for a family-1 probe (before compaction):", opts.top_k);
    for n in &before {
        println!(
            "  {:>8}  agreement {:>3}/{}  score {:.3}",
            reader.name_of(n.id).unwrap_or("?"),
            n.agreement,
            reader.scheme().len(),
            n.score
        );
    }
    assert!(
        before.iter().all(|n| n.id != 4 && n.id != 5),
        "tombstoned samples must never be answers"
    );

    // 5. COMPACT — roll the small segments into one, dropping the two
    // tombstoned rows for good. Answers must not change.
    let summary = writer.compact_all().expect("compaction succeeds");
    println!(
        "\ncompaction: {} -> {} segment(s), {} tombstoned row(s) dropped, generation {}",
        summary.segments_before,
        summary.segments_after,
        summary.tombstones_purged,
        summary.generation
    );
    let report = writer.vacuum().expect("vacuum succeeds");
    println!("vacuum reclaimed {} bytes of compacted-away segment blocks", report.bytes_reclaimed);
    let idle = writer.vacuum().expect("idle vacuum succeeds");
    assert!(!idle.rewritten, "an idle vacuum is a no-op");
    print_stats("after compaction", &writer.reader());

    let after = QueryEngine::snapshot(writer.reader())
        .query(&probe, &opts)
        .expect("query after compaction");
    assert_eq!(after, before, "compaction must not change answers");
    println!("\nanswers before and after compaction are identical ✓");

    // 6. REOPEN — the file on disk holds the whole lifecycle; a fresh
    // reader (or writer) resumes at the newest manifest generation.
    let (reopened, report) = IndexReader::open_with_report(&path).expect("reopen the container");
    assert_eq!(reopened.generation(), writer.reader().generation());
    assert_eq!(
        QueryEngine::snapshot(reopened).query(&probe, &opts).expect("query reopened"),
        before
    );
    println!(
        "reopened from disk at generation {} (torn bytes: {}) with identical answers ✓",
        report.generation, report.torn_bytes
    );
    std::fs::remove_file(&path).ok();
}
