//! Quickstart: from FASTA text to a Jaccard similarity matrix.
//!
//! This is the smallest end-to-end use of GenomeAtScale: parse a few
//! FASTA records, turn each into a k-mer sample, run SimilarityAtScale on
//! shared memory and print the similarity and distance matrices.
//!
//! Run with: `cargo run --release --example quickstart`

use genomeatscale::prelude::*;

fn main() {
    // Three tiny "genomes": the second is a close variant of the first,
    // the third is unrelated.
    let fasta = "\
>sample_a reference strain
ACGTTGCAGGTCAAACGTTGCAGGTCAAATTTGCCGGTACCAGGTTTACGTAGCATGCAT
>sample_b variant of a
ACGTTGCAGGTCAAACGTTGCAGGTCAAATTTGCCGGTACCAGGTTTACGTAGCATGCAA
>sample_c unrelated
TTTTTTAAAACCCCGGGGATATATCGCGCGATCGATCGTAGCTAGCTAGGCCGGCCAATT
";
    let records = FastaReader::new(std::io::Cursor::new(fasta)).read_all().expect("FASTA parses");
    println!("Parsed {} FASTA records", records.len());

    // Represent each record as its canonical 11-mer set.
    let extractor = KmerExtractor::new(11).expect("valid k");
    let samples: Vec<KmerSample> = records
        .iter()
        .map(|r| KmerSample::from_sequence(r.id.clone(), &r.seq, &extractor))
        .collect();
    for s in &samples {
        println!("  {}: {} distinct {}-mers", s.name(), s.len(), extractor.k());
    }

    // Build the indicator-matrix view and run SimilarityAtScale.
    let collection = SampleCollection::from_kmer_samples(&samples).expect("samples are valid");
    let config = SimilarityConfig::with_batches(2);
    let result = similarity_at_scale(&collection, &config).expect("run succeeds");

    println!("\nJaccard similarity matrix:");
    let s = result.similarity();
    print!("{:>12}", "");
    for name in collection.names() {
        print!("{name:>12}");
    }
    println!();
    for (i, name) in collection.names().iter().enumerate() {
        print!("{name:>12}");
        for j in 0..collection.n() {
            print!("{:>12.4}", s.get(i, j));
        }
        println!();
    }

    println!("\nJaccard distance matrix (d = 1 - J):");
    let d = result.distance();
    for i in 0..collection.n() {
        for j in 0..collection.n() {
            print!("{:>12.4}", d.get(i, j));
        }
        println!();
    }

    // Sanity: the variant is much closer to the reference than the
    // unrelated sample.
    assert!(s.get(0, 1) > s.get(0, 2));
    println!(
        "\nsample_a vs sample_b similarity {:.3} > sample_a vs sample_c similarity {:.3} — as expected.",
        s.get(0, 1),
        s.get(0, 2)
    );
}
