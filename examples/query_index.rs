//! Walkthrough: build a sketch index, persist it, and serve top-k
//! similarity queries — single-rank and sharded over simulated ranks.
//!
//! Run with: `cargo run --release --example query_index`

use genomeatscale::prelude::*;

fn main() {
    // A small collection of "genomes": four families of near-duplicates,
    // represented directly as k-mer code sets.
    let mut samples = Vec::new();
    for family in 0..4u64 {
        let core: Vec<u64> = (family * 1_000_000..family * 1_000_000 + 800).collect();
        for member in 0..4u64 {
            let mut s = core.clone();
            let private = family * 1_000_000 + 500_000 + member * 60;
            s.extend(private..private + 60);
            samples.push(s);
        }
    }
    let collection = SampleCollection::from_sets(samples).expect("valid samples");
    println!("collection: {} samples over a {}-value universe", collection.n(), collection.m());

    // 1. BUILD — signatures + LSH buckets tuned for a Jaccard threshold.
    // The one-permutation-hashing signer hashes each k-mer once
    // (O(|set| + len) per sample) instead of once per signature position;
    // the container records the signer, so queries stay compatible.
    let config = IndexConfig::default()
        .with_signature_len(128)
        .with_threshold(0.5)
        .with_signer(SignerKind::Oph);
    let index = IndexOptions::from_config(config).build_index(&collection).expect("build succeeds");
    println!(
        "index: {} bands x {} rows, S-curve threshold {:.3}",
        index.params().bands(),
        index.params().rows(),
        index.params().threshold()
    );

    // 2. PERSIST — write the container, read it back, nothing lost.
    let path =
        std::env::temp_dir().join(format!("query_index_example_{}.gidx", std::process::id()));
    index.write_to(&path).expect("container writes");
    let loaded = SketchIndex::read_from(&path).expect("container reads");
    let size = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded, index, "round-trip must be lossless");
    println!("persisted and re-loaded the index ({size} bytes)");

    // 3. QUERY — a perturbed copy of sample 5 (family 1): drop every
    // fifth element (J ≈ 0.8 against the source), add noise, then ask
    // for its 4 nearest samples.
    let mut query: Vec<u64> = collection
        .sample(5)
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 5 != 0)
        .map(|(_, &v)| v)
        .collect();
    query.extend(77_000_000..77_000_040);
    query.sort_unstable();

    let engine = QueryEngine::with_collection(&loaded, &collection);
    let opts = QueryOptions { top_k: 4, rerank_exact: true, ..Default::default() };
    let hits = engine.query(&query, &opts).expect("query succeeds");
    println!("\ntop-{} neighbors (exact popcount re-rank):", opts.top_k);
    for n in &hits {
        println!(
            "  {:>10}  J = {:.4}  (signature agreement {}/{})",
            loaded.names()[n.id as usize],
            n.score,
            n.agreement,
            loaded.scheme().len()
        );
    }
    assert_eq!(hits.len(), opts.top_k, "the whole family should be retrieved");
    assert_eq!(hits[0].id, 5, "the source sample is the best match");
    assert!(hits.iter().all(|n| (4..8).contains(&(n.id as usize))), "family 1 members expected");

    // 4. DISTRIBUTE — shard the buckets *and* the signature matrix over
    // 4 simulated ranks; answers must match the single-rank engine
    // exactly, and each rank stores only ~n/4 signature rows.
    let queries = [query];
    let out = Runtime::new(4)
        .run(|ctx| {
            let q = if ctx.rank() == 0 { Some(&queries[..]) } else { None };
            ctx.expect_ok(
                "dist_query_batch_stats",
                dist_query_batch_stats(ctx.world(), &loaded, Some(&collection), q, &opts),
            )
        })
        .expect("distributed run succeeds");
    for (result, stats) in &out.results {
        assert_eq!(result[0], hits, "sharded answers must equal the single-rank answers");
        assert!(stats.shard_bytes * 2 < stats.replicated_bytes, "signatures must be sharded");
    }
    let (_, stats) = &out.results[0];
    println!(
        "\nsharded over 4 ranks: identical answers, {} bytes on the wire, \
         {} signature bytes per rank instead of {} replicated",
        out.aggregate().total_bytes_sent,
        stats.shard_bytes,
        stats.replicated_bytes
    );
}
