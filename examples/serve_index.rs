//! Serving-frontend smoke: drive a [`LocalIndexService`] end to end —
//! pipelined concurrent commits, background compaction under live
//! readers, paged queries with stable cursors, admission-control
//! shedding, and sharded distributed serving equality at p ∈ {1, 4} —
//! then write the `ServiceStats` report that CI uploads and gates via
//! `bench_trend --serve`, plus the observability artifacts — the
//! unified metrics registry as Prometheus text
//! (`results/serve_metrics.prom`), the full span trace as JSON rows
//! (`results/serve_trace.json`), a folded-stacks dump for flamegraphs,
//! and the predicted-vs-measured collectives report of the distributed
//! section.
//!
//! Run with: `cargo run --release --example serve_index`
//! (CI sets `GAS_SERVE_TINY=1` for a seconds-scale workload.)

use std::time::{Duration, Instant};

use gas_bench::report::{results_dir, Table};
use genomeatscale::prelude::*;

fn tiny() -> bool {
    std::env::var("GAS_SERVE_TINY").is_ok_and(|v| v == "1")
}

/// A family-structured "genome": a shared core plus a private stretch.
fn sample(family: u64, member: u64) -> Vec<u64> {
    let mut s: Vec<u64> = (family * 1_000_000..family * 1_000_000 + 600).collect();
    let private = family * 1_000_000 + 500_000 + member * 70;
    s.extend(private..private + 70);
    s
}

fn main() {
    let (families, waves, members) = if tiny() { (4u64, 6u64, 4u64) } else { (8u64, 12u64, 12u64) };
    let workload = if tiny() { "tiny" } else { "default" };
    let path =
        std::env::temp_dir().join(format!("serve_index_example_{}.gidx", std::process::id()));
    std::fs::remove_file(&path).ok();

    let config = IndexConfig::default()
        .with_signature_len(128)
        .with_threshold(0.5)
        .with_signer(SignerKind::Oph);
    let options = IndexOptions::from_config(config)
        .with_signer_threads(3)
        .with_compact_interval(Duration::from_millis(1))
        .with_tracing(true);
    let service = options.serve_at(&path).expect("open the serving frontend");

    // 1. PIPELINED COMMITS — every wave is staged and committed without
    // waiting for the previous wave to seal: signing of wave N+1 overlaps
    // sealing of wave N across the signer pool, and the sealer applies
    // manifests in strict submission order.
    let started = Instant::now();
    let mut tickets = Vec::new();
    for wave in 0..waves {
        let batch: Vec<(String, Vec<u64>)> = (0..members)
            .map(|m| {
                let family = (wave * members + m) % families;
                (format!("w{wave}/f{family}/m{m}"), sample(family, wave * members + m))
            })
            .collect();
        service.add_batch(batch).expect("stage a wave");
        tickets.push(service.commit().expect("enqueue a pipelined commit"));
    }
    let mut committed = 0u64;
    for ticket in tickets {
        let summary = ticket.wait().expect("pipelined commit seals");
        committed += 1;
        assert_eq!(summary.rows_added, members as usize);
    }
    println!(
        "pipelined {committed} commit(s) of {members} samples each in {:.1} ms \
         (generation {})",
        started.elapsed().as_secs_f64() * 1e3,
        service.snapshot().generation()
    );

    // 2. DELETES + BACKGROUND COMPACTION — tombstone a few rows, then let
    // the compactor thread (1 ms interval) merge the small segments and
    // physically drop the tombstones while this thread keeps serving.
    let pinned = service.snapshot();
    let deleted = (pinned.n_live() / 3 + 1) as u32;
    for id in 0..deleted {
        service.delete(id).expect("tombstone a sealed row");
    }
    service.commit_wait().expect("commit the tombstones");
    // Tombstone-heavy segments are rewritten on their own (the
    // `rewrite_dead_pct` trigger); a straggler tombstone in a mostly
    // live segment is legitimately retained, so wait for the majority.
    let deadline = Instant::now() + Duration::from_secs(30);
    while service.stats().compact.tombstones_purged < u64::from(deleted) / 2 {
        assert!(Instant::now() < deadline, "compactor never purged the tombstones");
        std::thread::sleep(Duration::from_millis(2));
    }
    let stats = service.stats();
    println!(
        "background compaction: {} pass(es), {} tombstone(s) purged, {} segment(s) live, \
         pinned pre-delete snapshot still at generation {}",
        stats.compact.passes,
        stats.compact.tombstones_purged,
        stats.segments,
        pinned.generation()
    );
    assert!(pinned.live_ids().contains(&0), "pinned snapshots never see later deletes");
    drop(pinned);

    // 3. PAGED QUERIES — cursors walk the full ranking in stable pages;
    // the concatenation must tile the one-shot answer exactly.
    let probes: Vec<Vec<u64>> = (0..families).map(|f| sample(f, 10_000 + f)).collect();
    let reader = service.snapshot();
    let engine = QueryEngine::snapshot(reader.clone());
    let mut pages_served = 0u64;
    for probe in &probes {
        let one_shot = service
            .query_paged(std::slice::from_ref(probe), &PageRequest::new(usize::MAX >> 1))
            .expect("one-shot page")
            .remove(0);
        let mut req = PageRequest::new(3);
        let mut tiled = Vec::new();
        loop {
            let page = service
                .query_paged(std::slice::from_ref(probe), &req)
                .expect("cursor page")
                .remove(0);
            pages_served += 1;
            tiled.extend(page.hits);
            match page.next_cursor {
                Some(next) => req = PageRequest::new(3).with_cursor(next),
                None => break,
            }
        }
        assert_eq!(tiled, one_shot.hits, "pages must tile the one-shot ranking");
    }
    println!("paged queries: {} probe(s) tiled across {pages_served} page(s)", probes.len());

    // 4. SHARDED SERVING — the sealed, compacted index answers
    // bit-identically through the distributed path at p ∈ {1, 4}, both
    // batch and paged forms, and the collectives budget is a constant of
    // the design (independent of the commit history).
    let opts = QueryOptions { top_k: 8, ..Default::default() };
    let reference = engine.query_batch(&probes, &opts).expect("single-rank reference");
    let page_req = PageRequest::new(5);
    let page_reference =
        engine.query_page_batch(&probes, &page_req).expect("single-rank page reference");
    let mut dist_identical = true;
    let mut collectives_p4 = 0usize;
    for ranks in [1usize, 4] {
        let out = Runtime::new(ranks)
            .run(|ctx| {
                let q = if ctx.rank() == 0 { Some(&probes[..]) } else { None };
                let (batch, stats) = ctx.expect_ok(
                    "dist batch",
                    dist_query_reader_batch_stats(ctx.world(), &reader, None, q, &opts),
                );
                let pages = ctx.expect_ok(
                    "dist pages",
                    dist_query_reader_page(ctx.world(), &reader, None, q, &page_req),
                );
                (batch, pages, stats.collective_calls)
            })
            .expect("distributed run");
        for (batch, pages, calls) in &out.results {
            dist_identical &= batch == &reference && pages == &page_reference;
            if ranks == 4 {
                collectives_p4 = collectives_p4.max(*calls);
            }
        }
        println!("p = {ranks}: sharded answers bit-identical = {dist_identical}");
    }
    assert!(dist_identical, "sharded serving must match single-rank serving exactly");

    // 5. ADMISSION CONTROL — a sibling service with a zero commit
    // deadline sheds every batch with a typed `Overloaded` error; the
    // staged rows are abandoned, never half-committed.
    let shedder = IndexOptions::from_config(config)
        .with_commit_deadline(Some(Duration::ZERO))
        .with_auto_compact(false)
        .serve()
        .expect("open the shedding demo service");
    shedder.add_batch(vec![("doomed".into(), sample(0, 0))]).expect("stage");
    let shed_err = shedder.commit().expect("enqueue").wait().expect_err("deadline must shed");
    println!("admission control: zero-deadline commit shed with `{shed_err}`");
    let sheds = shedder.stats().commit.shed;
    assert!(sheds >= 1, "the shed must be counted");
    assert_eq!(shedder.snapshot().n_live(), 0, "a shed batch is never half-committed");

    // 6. REPORT — one flat row of ServiceStats figures; CI uploads the
    // JSON and `bench_trend --serve` gates it against the committed
    // baseline (queue high-water within the admission bound, collectives
    // budget not exceeded, dist equality, shedding exercised).
    let stats = service.stats();
    let mut table = Table::new(
        "IndexService serving smoke (pipelined commits, background compaction, paged queries)",
        &[
            "workload",
            "commits",
            "generation",
            "segments",
            "live_samples",
            "compaction_passes",
            "tombstones_purged",
            "vacuums_run",
            "max_commit_queue_depth",
            "commit_p50_us",
            "query_p50_us",
            "pages_served",
            "sheds",
            "dist_identical",
            "collectives_p4",
        ],
    );
    table.push_row(vec![
        workload.to_string(),
        stats.commit.completed.to_string(),
        stats.generation.to_string(),
        stats.segments.to_string(),
        stats.live_samples.to_string(),
        stats.compact.passes.to_string(),
        stats.compact.tombstones_purged.to_string(),
        stats.compact.vacuums_run.to_string(),
        stats.commit.max_queue_depth.to_string(),
        stats.commit.latency.quantile_micros(0.5).to_string(),
        stats.query.latency.quantile_micros(0.5).to_string(),
        pages_served.to_string(),
        sheds.to_string(),
        u64::from(dist_identical).to_string(),
        collectives_p4.to_string(),
    ]);
    table.print();
    let dir = results_dir();
    table.write_csv(&dir, "serve_stats").expect("write CSV report");
    let json = table.write_json(&dir, "serve_stats").expect("write JSON report");
    println!("wrote {}", json.display());

    // 7. OBSERVABILITY — the whole workload above ran with tracing on:
    // export the unified telemetry (the metrics registry merged with
    // this service's stats) as Prometheus text, the span trace as JSON
    // rows and a folded-stacks flamegraph dump, and print the
    // predicted-vs-measured collectives report of the sharded section.
    let telemetry = service.telemetry();
    let prom_path = dir.join("serve_metrics.prom");
    std::fs::write(&prom_path, to_prometheus(&telemetry)).expect("write Prometheus export");
    let events = genomeatscale::obs::take_events();
    assert!(!events.is_empty(), "tracing was enabled: the workload must leave a trace");
    let trace_path = dir.join("serve_trace.json");
    std::fs::write(&trace_path, trace_to_json(&events)).expect("write trace export");
    std::fs::write(dir.join("serve_trace.folded"), folded_stacks(&events))
        .expect("write folded stacks");
    let costs = collective_cost_report(&events);
    assert!(!costs.is_empty(), "the sharded section must produce collective spans");
    print!("{}", render_collective_costs(&costs));
    println!(
        "wrote {} and {} ({} spans, {} collective phases)",
        prom_path.display(),
        trace_path.display(),
        events.len(),
        costs.len()
    );
    std::fs::remove_file(&path).ok();
}
