//! MinHash vs exact Jaccard: the accuracy trade-off that motivates the
//! paper.
//!
//! Pairs of genomes are generated at controlled divergences; for each pair
//! the exact Jaccard similarity (what SimilarityAtScale computes) is
//! compared with MinHash estimates at several sketch sizes, together with
//! the Mash-distance each would imply.
//!
//! Run with: `cargo run --release --example minhash_vs_exact`

use genomeatscale::core::minhash::MinHasher;
use genomeatscale::genomics::synth::{expected_jaccard, mutate, random_genome};
use genomeatscale::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let k = 21;
    let extractor = KmerExtractor::new(k).expect("valid k");
    let genome = random_genome(150_000, &mut rng);
    let sketch_sizes = [64usize, 512, 4096];

    println!(
        "{:>10} {:>14} {:>14} {:>12} {:>12} {:>12}",
        "divergence", "model J", "exact J", "s=64", "s=512", "s=4096"
    );
    for divergence in [0.001f64, 0.01, 0.05, 0.15, 0.30] {
        let variant = mutate(&genome, divergence, &mut rng);
        let a = KmerSample::from_sequence("a", &genome, &extractor);
        let b = KmerSample::from_sequence("b", &variant, &extractor);
        let exact = a.jaccard(&b);
        let model = expected_jaccard(k, divergence);
        let mut estimates = Vec::new();
        for &s in &sketch_sizes {
            let hasher = MinHasher::new(s).expect("valid sketch size");
            let est = hasher.sketch(a.kmers()).jaccard_estimate(&hasher.sketch(b.kmers()));
            estimates.push(est);
        }
        println!(
            "{divergence:>10.3} {model:>14.4} {exact:>14.4} {:>12.4} {:>12.4} {:>12.4}",
            estimates[0], estimates[1], estimates[2]
        );
    }

    println!(
        "\nReading the table: small sketches quantize coarsely — near-identical pairs often \
         read exactly 1.0 and distant pairs often read 0.0 — while the exact computation (and \
         larger sketches) resolve both regimes. This is the accuracy gap SimilarityAtScale closes \
         by making the exact computation scale to thousands of nodes."
    );
}
