# Local entry points that match what CI runs (.github/workflows/ci.yml).
#
# The root manifest is both the workspace and the `genomeatscale` facade
# package, so a bare `cargo test` at the repo root silently runs only the
# facade's integration suites. Always go through `make test` (or pass
# --workspace yourself) so local coverage matches CI.

.PHONY: build test lint fmt bench-smoke query-smoke serve-smoke obs-smoke chaos-smoke chaos-matrix dist-matrix index-lifecycle plan-smoke all

all: lint build test

build:
	cargo build --workspace --release --locked

test:
	cargo test --workspace --locked -q

lint:
	cargo fmt --check
	cargo clippy --workspace --all-targets --locked -- -D warnings

fmt:
	cargo fmt

# The CI bench-smoke step: comm_volume on a tiny input, JSON reports
# under results/.
bench-smoke:
	GAS_COMM_VOLUME_TINY=1 cargo run --release --locked -p gas-bench --bin comm_volume

# The CI query-smoke step: the sketch-index serving benchmark on a tiny
# synthetic workload, once per signer (signing time, qps, recall@10,
# per-rank signature bytes under sharding, sharded equivalence, the
# segment-count sweep pinning constant collectives per batch, and
# incremental 10%-add throughput vs a full rebuild), then the trend gate
# against the committed baseline (>2× qps/wire-byte regressions and any
# collectives-budget growth fail).
query-smoke:
	GAS_QUERY_TINY=1 cargo run --release --locked -p gas-bench --bin query_throughput
	cargo run --release --locked -p gas-bench --bin bench_trend

# The CI serve-smoke step: the IndexService serving frontend end to end
# (pipelined concurrent commits, background compaction under live
# readers, paged-query cursor tiling, typed overload shedding, and
# sharded bit-equality at p ∈ {1, 4}), then the serving trend gate
# against the committed baseline (queue high-water within the admission
# bound, collectives budget frozen, dist equality, shedding exercised).
serve-smoke:
	GAS_SERVE_TINY=1 cargo run --release --locked --example serve_index
	cargo run --release --locked -p gas-bench --bin bench_trend -- --serve

# The CI obs-smoke step: the serving frontend with tracing forced on
# (GAS_TRACE=1 plus the example's with_tracing), dumping the Prometheus
# metrics export, the span trace and the folded-stacks flamegraph input
# under results/, then the tracing-overhead gate (disabled-tracing qps
# within 5% of the committed baseline, enabled within 2× of disabled —
# needs the query-smoke step's results/obs_overhead.json).
obs-smoke:
	GAS_SERVE_TINY=1 GAS_TRACE=1 cargo run --release --locked --example serve_index
	GAS_QUERY_TINY=1 cargo run --release --locked -p gas-bench --bin query_throughput
	cargo run --release --locked -p gas-bench --bin bench_trend -- --obs

# The CI chaos-smoke step: the seeded fault-injection drill across all
# three layers (storage crash/recover/heal, service retry + typed
# exhaustion + degraded queries, distributed failover with exact lost
# accounting), the crash-recovery torture proptest, then the
# injection-overhead gate (injection-disabled qps within 5% of the
# committed baseline — needs the fresh results/chaos_overhead.json from
# query_throughput).
chaos-smoke:
	GAS_CHAOS_SEED=$(CHAOS_SEED) GAS_CHAOS_SCENARIO=all \
		cargo run --release --locked -p gas-bench --bin chaos_drill
	cargo test --locked -q --test chaos_recovery
	GAS_QUERY_TINY=1 cargo run --release --locked -p gas-bench --bin query_throughput
	cargo run --release --locked -p gas-bench --bin bench_trend -- --chaos

# One cell of the CI chaos-matrix job, e.g.:
#   make chaos-matrix CHAOS_SEED=2 CHAOS_SCENARIO=service
CHAOS_SEED ?= 1
CHAOS_SCENARIO ?= all
chaos-matrix:
	GAS_CHAOS_SEED=$(CHAOS_SEED) GAS_CHAOS_SCENARIO=$(CHAOS_SCENARIO) \
		cargo run --release --locked -p gas-bench --bin chaos_drill

# The segmented index lifecycle suites: writer/reader/compactor unit
# tests, the `incremental add + compact ≡ full rebuild` and crash-safe
# commit proptests, and the segmented sharded-serving grid equality.
index-lifecycle:
	cargo test -p gas-index --locked -q
	cargo test --locked -q --test index_lifecycle --test query_serving

# The CI plan-smoke step: the placement & autotuning sweep on the tiny
# skewed fixture (planned mixed placement must move at most as many wire
# bytes as all-shard AND all-replicate while answering bit-identically
# to the single-rank engine; tuned replication within 2× of the best
# measured divisor; tuned LSH within 0.5× of the best grid-searched
# throughput), then the plan trend gate against the committed baseline.
plan-smoke:
	GAS_PLAN_TINY=1 cargo run --release --locked -p gas-bench --bin placement_sweep
	cargo run --release --locked -p gas-bench --bin bench_trend -- --plan

# One cell of the CI dist-matrix job, e.g.:
#   make dist-matrix RANKS=8 REPLICATION=2 SEGMENTS=7
RANKS ?= 4,6,8,12
REPLICATION ?= 1,2
SEGMENTS ?= 1,7
dist-matrix:
	GAS_DIST_RANKS=$(RANKS) GAS_DIST_REPLICATION=$(REPLICATION) GAS_DIST_SEGMENTS=$(SEGMENTS) \
		cargo test --locked -q --test distributed_equivalence --test filter_properties \
		--test query_serving --test index_lifecycle
