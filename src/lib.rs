//! # GenomeAtScale (Rust reproduction)
//!
//! Facade crate re-exporting the full SimilarityAtScale / GenomeAtScale
//! stack described in Besta et al., *Communication-Efficient Jaccard
//! Similarity for High-Performance Distributed Genome Comparisons*
//! (IPDPS 2020).
//!
//! The workspace is organised as:
//!
//! * [`dstsim`] — a distributed-memory runtime simulator (ranks as threads,
//!   MPI-style collectives, BSP α–β–γ cost accounting, processor grids).
//! * [`sparse`] — sparse matrix formats, semirings, local and distributed
//!   sparse matrix–matrix multiplication (the Cyclops substitute).
//! * [`genomics`] — FASTA/FASTQ ingestion, k-mer extraction, synthetic
//!   dataset generators.
//! * [`core`] — the SimilarityAtScale algorithm itself (batching, zero-row
//!   filtering, bitmask compression, popcount-AND semiring products,
//!   Jaccard similarity/distance matrices), plus MinHash and allreduce
//!   baselines and the paper's analytic BSP cost model.
//! * [`cluster`] — downstream applications: hierarchical clustering,
//!   neighbor-joining guide trees, k-medoids, outlier detection.
//! * [`index`] — the persistent MinHash–LSH sketch index and its batched
//!   top-k query engine (build / persist / query / distribute), the
//!   query-serving counterpart of the all-pairs pipeline — now a full
//!   segmented lifecycle (`IndexWriter` → `IndexReader` → `Compactor`)
//!   with incremental adds, tombstoned deletes, snapshot reads and
//!   crash-safe multi-segment persistence.
//! * [`obs`] — structured tracing spans, the unified metrics registry and
//!   the Prometheus/JSON/folded-stacks exporters instrumenting the
//!   serve/commit/compact/dist hot paths (see README § Observability).
//! * [`plan`] — cost-model-driven decisions: the segment placement
//!   planner (replicate hot, shard fresh) and the knob autotuner (SUMMA
//!   grid, LSH split, signature length, compaction tier factor), both
//!   priced against measured or preset α–β–γ machine parameters (see
//!   README § Placement & autotuning).
//!
//! ## Quickstart
//!
//! ```
//! use genomeatscale::prelude::*;
//!
//! // Three tiny "genomes" as sets of k-mer codes.
//! let samples = vec![
//!     vec![1u64, 2, 3, 4, 5],
//!     vec![3u64, 4, 5, 6, 7],
//!     vec![100u64, 200, 300],
//! ];
//! let collection = SampleCollection::from_sorted_sets(samples).unwrap();
//! let config = SimilarityConfig::default();
//! let result = similarity_at_scale(&collection, &config).unwrap();
//! let s = result.similarity();
//! assert!((s.get(0, 1) - 3.0 / 7.0).abs() < 1e-12);
//! assert_eq!(s.get(0, 2), 0.0);
//! assert_eq!(s.get(2, 2), 1.0);
//! ```

pub use gas_chaos as chaos;
pub use gas_cluster as cluster;
pub use gas_core as core;
pub use gas_dstsim as dstsim;
pub use gas_genomics as genomics;
pub use gas_index as index;
pub use gas_obs as obs;
pub use gas_plan as plan;
pub use gas_sparse as sparse;

/// Commonly used types and entry points for the whole stack.
pub mod prelude {
    pub use gas_cluster::hierarchical::{hierarchical_cluster, Linkage};
    pub use gas_cluster::nj::neighbor_joining;
    pub use gas_core::algorithm::{similarity_at_scale, similarity_at_scale_distributed};
    pub use gas_core::config::SimilarityConfig;
    pub use gas_core::indicator::SampleCollection;
    pub use gas_core::jaccard::{jaccard_exact_pairwise, SimilarityResult};
    pub use gas_core::minhash::{MinHashSketch, MinHasher};
    pub use gas_dstsim::cost::CostModel;
    pub use gas_dstsim::machine::Machine;
    pub use gas_dstsim::runtime::Runtime;
    pub use gas_genomics::fasta::FastaReader;
    pub use gas_genomics::kmer::KmerExtractor;
    pub use gas_genomics::sample::KmerSample;
    pub use gas_index::{
        dist_query_batch, dist_query_batch_stats, dist_query_reader_batch,
        dist_query_reader_batch_planned, dist_query_reader_batch_replicated,
        dist_query_reader_batch_stats, dist_query_reader_batch_stats_per_segment,
        dist_query_reader_page, exact_top_k, install_placement, ChaosStorage, CommitSummary,
        CommitTicket, CompactionPolicy, CompactionStats, CompactionSummary, Compactor,
        DegradedBatch, DegradedCauses, DegradedReport, DistQueryStats, FaultKind, FaultPlan,
        IndexConfig, IndexOptions, IndexReader, IndexService, IndexWriter, LatencyHistogram,
        LocalIndexService, LshParams, Neighbor, PageCursor, PageRequest, PlacementInstallStats,
        PlannedShards, QueryEngine, QueryOptions, QueryPage, RequestClassStats, RetryPolicy,
        SegmentPlacement, SegmentStats, ServiceStats, SignerKind, SketchIndex, VacuumReport,
    };
    pub use gas_obs::{
        collective_cost_report, folded_stacks, render_collective_costs, to_prometheus,
        trace_to_json, MetricsSnapshot, TraceEvent,
    };
    pub use gas_plan::{
        Autotuner, MachineParams, PlacementPlan, PlacementPlanner, PlannerConfig,
        SegmentObservation, TunedConfig, WorkloadProfile,
    };
    pub use gas_sparse::dense::DenseMatrix;
}
