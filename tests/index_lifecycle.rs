//! Lifecycle properties of the segmented index: the incremental path is
//! *exact* (any split of the corpus into base + added batches, with
//! deletes, answers bit-identically to a fresh monolithic build over the
//! final corpus — before and after compaction), and the container-v3
//! commit protocol is crash-safe (truncating the file anywhere during a
//! commit leaves the previous manifest generation readable; flipping any
//! byte is rejected or falls back to an older generation).

use genomeatscale::index::lifecycle::{CompactionPolicy, Compactor};
use genomeatscale::index::IndexError;
use genomeatscale::prelude::*;
use proptest::prelude::*;

fn env_usize_list(name: &str, default: &[usize]) -> Vec<usize> {
    match std::env::var(name) {
        Ok(v) => v
            .split(',')
            .map(|s| s.trim().parse().unwrap_or_else(|_| panic!("{name} must be a usize list")))
            .collect(),
        Err(_) => default.to_vec(),
    }
}

fn unique_path(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("gas_lifecycle_it_{tag}_{}_{n}.gidx", std::process::id()))
}

/// Strategy: a small corpus of samples over a bounded universe,
/// including possibly-empty sets.
fn corpora() -> impl Strategy<Value = Vec<Vec<u64>>> {
    prop::collection::vec(
        prop::collection::btree_set(0u64..2_048, 0..60)
            .prop_map(|s| s.into_iter().collect::<Vec<u64>>()),
        3..12,
    )
}

/// Deterministic pseudo-random delete pick: roughly a quarter of the
/// ids, never all of them (a fresh build needs a non-empty corpus).
fn pick_deletes(n: usize, seed: u64) -> Vec<u32> {
    let mut deletes: Vec<u32> = (0..n as u32)
        .filter(|&id| genomeatscale::core::minhash::splitmix64(id as u64 ^ seed) % 4 == 0)
        .collect();
    if deletes.len() == n {
        deletes.pop();
    }
    deletes
}

/// Translate a fresh build's dense answer ids back to global ids via the
/// sorted live-id list (the remap is strictly monotone, so ordering and
/// tie-breaking survive unchanged — that is what makes the comparison a
/// *bit-identical* one rather than a set comparison).
fn remap_dense_to_global(live: &[u32], answers: &[Neighbor]) -> Vec<Neighbor> {
    answers.iter().map(|n| Neighbor { id: live[n.id as usize], ..*n }).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// `incremental adds (+ deletes) + compaction ≡ full rebuild`, for
    /// every batch split the strategy generates, under both signers,
    /// estimate-only and exactly re-ranked.
    #[test]
    fn incremental_adds_and_deletes_equal_full_rebuild(
        samples in corpora(),
        batch_size in 1usize..5,
        delete_seed in 0u64..1_000,
        signature_len in 8usize..49,
    ) {
        let n = samples.len();
        let deletes = pick_deletes(n, delete_seed);
        for signer in [SignerKind::KMins, SignerKind::Oph] {
            let config = IndexConfig::default()
                .with_signature_len(signature_len)
                .with_threshold(0.5)
                .with_signer(signer);

            // Incremental path: commit in batches, deleting as soon as a
            // doomed sample is committed.
            let mut writer = IndexOptions::from_config(config).open_writer().unwrap();
            let mut pending: Vec<u32> = deletes.clone();
            for batch in samples.chunks(batch_size) {
                for s in batch {
                    writer.add(format!("s{}", writer.id_bound()), s.clone()).unwrap();
                }
                writer.commit().unwrap();
                pending.retain(|&id| {
                    if id < writer.id_bound() {
                        writer.delete(id).unwrap();
                        false
                    } else {
                        true
                    }
                });
                writer.commit().unwrap();
            }
            prop_assert!(pending.is_empty());
            let reader = writer.reader();
            let live = reader.live_ids();
            prop_assert_eq!(live.len(), n - deletes.len());

            // Fresh monolithic build over the final (live) corpus.
            let final_sets: Vec<Vec<u64>> =
                live.iter().map(|&id| samples[id as usize].clone()).collect();
            let final_collection = SampleCollection::from_sorted_sets(final_sets).unwrap();
            let fresh = IndexOptions::from_config(config).build_index(&final_collection).unwrap();

            // Queries: every sample of the *full* corpus (deleted samples
            // still make valid queries), a perturbation, and empty.
            let mut queries: Vec<Vec<u64>> = samples.clone();
            queries.push(samples[0].iter().copied().step_by(2).collect());
            queries.push(Vec::new());

            // The engines' rerank collections: the reader's is indexed by
            // global id (the writer's corpus), the fresh one by dense id.
            let full_collection = SampleCollection::from_sorted_sets(samples.clone()).unwrap();

            for rerank in [false, true] {
                let opts = QueryOptions { top_k: 5, rerank_exact: rerank, ..Default::default() };
                let incr_engine =
                    QueryEngine::snapshot_with_collection(reader.clone(), &full_collection);
                let fresh_engine = QueryEngine::with_collection(&fresh, &final_collection);
                for q in &queries {
                    let got = incr_engine.query(q, &opts).unwrap();
                    let want = remap_dense_to_global(&live, &fresh_engine.query(q, &opts).unwrap());
                    prop_assert_eq!(got, want, "signer={}, rerank={}", signer, rerank);
                }
            }

            // Compaction (size-tiered pass, then a full roll-up) must not
            // change a single answer.
            let opts = QueryOptions { top_k: 5, ..Default::default() };
            let before: Vec<_> = queries
                .iter()
                .map(|q| QueryEngine::snapshot(reader.clone()).query(q, &opts).unwrap())
                .collect();
            let compactor =
                Compactor::new(CompactionPolicy { min_merge: 2, tier_factor: 4, ..Default::default() }).unwrap();
            compactor.compact(&mut writer).unwrap();
            writer.compact_all().unwrap();
            let compacted = writer.reader();
            prop_assert!(compacted.segments().len() <= 1);
            prop_assert!(compacted.tombstones().is_empty(), "compact_all purges tombstones");
            prop_assert_eq!(compacted.live_ids(), live.clone());
            for (q, want) in queries.iter().zip(&before) {
                let got = QueryEngine::snapshot(compacted.clone()).query(q, &opts).unwrap();
                prop_assert_eq!(&got, want, "answers changed across compaction ({signer})");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Truncating the file anywhere inside a commit's appended bytes
    /// leaves the previous generation readable with its exact answers.
    #[test]
    fn truncation_during_commit_falls_back_to_previous_generation(
        samples in corpora(),
        cut in 0usize..100_000,
    ) {
        let config = IndexConfig::default().with_signature_len(16).with_threshold(0.5);
        let path = unique_path("crash");
        let mut writer = IndexOptions::from_config(config).create_writer_at(&path).unwrap();
        let split = samples.len() / 2;
        for s in &samples[..split] {
            writer.add(format!("s{}", writer.id_bound()), s.clone()).unwrap();
        }
        writer.commit().unwrap();
        let base_bytes = std::fs::read(&path).unwrap();
        let base_generation = writer.generation();
        let base_reader = writer.reader();
        let opts = QueryOptions { top_k: 4, ..Default::default() };
        let base_answers: Vec<_> = samples
            .iter()
            .map(|q| QueryEngine::snapshot(base_reader.clone()).query(q, &opts).unwrap())
            .collect();

        // The second commit: adds and (when possible) one delete.
        for s in &samples[split..] {
            writer.add(format!("s{}", writer.id_bound()), s.clone()).unwrap();
        }
        if split > 0 {
            writer.delete(0).unwrap();
        }
        writer.commit().unwrap();
        let full_bytes = std::fs::read(&path).unwrap();
        prop_assert!(full_bytes.len() > base_bytes.len());
        prop_assert_eq!(&full_bytes[..base_bytes.len()], &base_bytes[..], "commits append");

        // Truncate anywhere inside the appended suffix (including cutting
        // it off entirely) and reopen: the base generation must survive,
        // with identical answers.
        let pos = base_bytes.len() + cut % (full_bytes.len() - base_bytes.len());
        std::fs::write(&path, &full_bytes[..pos]).unwrap();
        let (reader, report) = IndexReader::open_with_report(&path).unwrap();
        prop_assert_eq!(reader.generation(), base_generation);
        prop_assert_eq!(reader.n_live(), split);
        prop_assert_eq!(report.torn_bytes, pos - base_bytes.len());
        for (q, want) in samples.iter().zip(&base_answers) {
            let got = QueryEngine::snapshot(reader.clone()).query(q, &opts).unwrap();
            prop_assert_eq!(&got, want);
        }

        // A writer reopening over the torn tail heals it: the next
        // commit truncates the garbage and appends cleanly.
        let mut healed = IndexWriter::open(&path).unwrap();
        prop_assert_eq!(healed.generation(), base_generation);
        healed.add("replay", samples[split.min(samples.len() - 1)].clone()).unwrap();
        healed.commit().unwrap();
        let reopened = IndexReader::open_with_report(&path).unwrap();
        prop_assert_eq!(reopened.0.generation(), base_generation + 1);
        prop_assert_eq!(reopened.1.torn_bytes, 0);
        std::fs::remove_file(&path).ok();
    }

    /// Flipping any single byte of a multi-generation file is either
    /// rejected with a typed error or falls back to a strictly older
    /// generation — never served as the newest generation, never a
    /// panic.
    #[test]
    fn single_byte_flips_are_rejected_or_fall_back(
        byte in 0usize..200_000,
    ) {
        let config = IndexConfig::default().with_signature_len(16).with_threshold(0.5);
        let path = unique_path("flip");
        let mut writer = IndexOptions::from_config(config).create_writer_at(&path).unwrap();
        writer.add("a", (0..40u64).collect()).unwrap();
        writer.add("b", (20..60u64).collect()).unwrap();
        writer.commit().unwrap();
        writer.add("c", (100..140u64).collect()).unwrap();
        writer.delete(0).unwrap();
        writer.commit().unwrap();
        let final_generation = writer.generation();
        let mut bytes = std::fs::read(&path).unwrap();
        let pos = byte % bytes.len();
        bytes[pos] ^= 0x5A;
        std::fs::write(&path, &bytes).unwrap();
        match IndexReader::open_with_report(&path) {
            Err(
                IndexError::BadMagic
                | IndexError::UnsupportedVersion(_)
                | IndexError::ChecksumMismatch { .. }
                | IndexError::Truncated { .. }
                | IndexError::Corrupt { .. }
                | IndexError::NoLiveGeneration(_),
            ) => {}
            Err(other) => panic!("flip at {pos} produced an unexpected error: {other:?}"),
            Ok((reader, _)) => prop_assert!(
                reader.generation() < final_generation,
                "flip at {} still served the newest generation",
                pos
            ),
        }
        std::fs::remove_file(&path).ok();
    }
}

/// Uncompacted multi-segment snapshots serve bit-identically sharded:
/// for every `GAS_DIST_SEGMENTS` commit count (the dist-matrix threads
/// one per CI job) and every `GAS_DIST_RANKS` grid size, the keyed
/// distributed path over a freshly grown, *never compacted* reader must
/// answer exactly like the single-rank engine on that reader — the
/// lifecycle counterpart of the query-serving grid, which compaction
/// must not be needed to pass.
#[test]
fn uncompacted_readers_serve_sharded_across_the_segment_grid() {
    let config = IndexConfig::default()
        .with_signature_len(64)
        .with_threshold(0.4)
        .with_signer(SignerKind::Oph);
    let samples: Vec<Vec<u64>> = (0..28u64)
        .map(|i| {
            let family = i / 7;
            let mut s: Vec<u64> = (family * 10_000..family * 10_000 + 120).collect();
            s.extend(family * 10_000 + 5_000 + i * 11..family * 10_000 + 5_000 + i * 11 + 30);
            s
        })
        .collect();
    let collection = SampleCollection::from_sorted_sets(samples.clone()).unwrap();
    let n = samples.len();
    let deletes = pick_deletes(n, 7);
    let mut queries: Vec<Vec<u64>> = samples.iter().step_by(5).cloned().collect();
    queries.push(Vec::new());
    let opts = QueryOptions { top_k: 4, rerank_exact: true, ..Default::default() };

    for segments in env_usize_list("GAS_DIST_SEGMENTS", &[1, 7]) {
        // `segments` near-equal commits, tombstoning doomed ids as soon
        // as they are committed; never compacted.
        let mut writer = IndexOptions::from_config(config).open_writer().unwrap();
        let mut start = 0usize;
        for s in 0..segments {
            let end = start + (n - start) / (segments - s);
            for (i, sample) in samples.iter().enumerate().take(end).skip(start) {
                writer.add(format!("s{i}"), sample.clone()).unwrap();
            }
            writer.commit().unwrap();
            for &id in &deletes {
                if id < writer.id_bound() && !writer.reader().is_deleted(id) {
                    writer.delete(id).unwrap();
                }
            }
            writer.commit().unwrap();
            start = end;
        }
        let reader = writer.reader();
        assert_eq!(reader.segments().len(), segments, "snapshot must stay uncompacted");
        let reference = QueryEngine::snapshot_with_collection(reader.clone(), &collection)
            .query_batch(&queries, &opts)
            .unwrap();
        for ranks in env_usize_list("GAS_DIST_RANKS", &[1, 4, 6]) {
            let out = Runtime::new(ranks)
                .run(|ctx| {
                    let q = if ctx.rank() == 0 { Some(&queries[..]) } else { None };
                    ctx.expect_ok(
                        "dist over uncompacted reader",
                        dist_query_reader_batch_stats(
                            ctx.world(),
                            &reader,
                            Some(&collection),
                            q,
                            &opts,
                        ),
                    )
                })
                .unwrap();
            for (rank, (answers, stats)) in out.results.iter().enumerate() {
                assert_eq!(
                    answers, &reference,
                    "rank {rank}/{ranks}, {segments} segments: uncompacted sharded \
                     answers diverge"
                );
                // One keyed round regardless of segment count.
                assert_eq!(stats.collective_calls, 6, "{segments} segments");
                assert_eq!(stats.per_segment.len(), segments);
            }
        }
    }
}

/// The v3 container round-trips the whole lifecycle state losslessly:
/// every segment (id, rows, signatures, names, buckets), the tombstone
/// set, the generation and the id high-water mark.
#[test]
fn container_v3_round_trips_the_full_state() {
    let config = IndexConfig::default()
        .with_signature_len(32)
        .with_threshold(0.4)
        .with_signer(SignerKind::Oph);
    let path = unique_path("lossless");
    let mut writer = IndexOptions::from_config(config).create_writer_at(&path).unwrap();
    for i in 0..7u64 {
        writer.add(format!("naïve-{i}-✓"), (i * 30..i * 30 + 50).collect()).unwrap();
        writer.commit().unwrap();
    }
    // Roll the seven single-row segments up (leaves unreferenced garbage
    // blocks in the file), then add one more segment and two tombstones
    // on top, so the reloaded state must carry merged + fresh segments
    // *and* live tombstones.
    Compactor::new(CompactionPolicy { min_merge: 2, tier_factor: 2, ..Default::default() })
        .unwrap()
        .compact(&mut writer)
        .unwrap();
    writer.add("late", (500..560u64).collect()).unwrap();
    writer.commit().unwrap();
    writer.delete(2).unwrap();
    writer.delete(5).unwrap();
    writer.commit().unwrap();
    let in_memory = writer.reader();
    assert!(in_memory.segments().len() >= 2);
    assert_eq!(in_memory.tombstones(), &[2, 5]);

    let (reloaded, report) = IndexReader::open_with_report(&path).unwrap();
    assert_eq!(report.torn_bytes, 0);
    assert_eq!(reloaded.generation(), in_memory.generation());
    assert_eq!(reloaded.id_bound(), in_memory.id_bound());
    assert_eq!(reloaded.tombstones(), in_memory.tombstones());
    assert_eq!(reloaded.segments().len(), in_memory.segments().len());
    for (a, b) in reloaded.segments().iter().zip(in_memory.segments()) {
        assert_eq!(a, b, "segment {} does not round-trip", b.id());
    }
    assert_eq!(reloaded.name_of(3), Some("naïve-3-✓"));
    assert_eq!(reloaded.name_of(2), None, "tombstoned names are not served");

    // And the reloaded snapshot answers identically.
    let opts = QueryOptions { top_k: 4, ..Default::default() };
    let probe: Vec<u64> = (30..80).collect();
    assert_eq!(
        QueryEngine::snapshot(reloaded).query(&probe, &opts).unwrap(),
        QueryEngine::snapshot(in_memory).query(&probe, &opts).unwrap()
    );
    std::fs::remove_file(&path).ok();
}

// Pagination tiles exactly for *any* page size: the concatenated pages
// of a cursor walk equal the one-shot full ranking, every page but the
// last is exactly `page_size` hits, `total_candidates` is constant
// across the walk, and a `min_score` floor filters before paging (so
// pages still tile the filtered ranking).
proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn paged_scans_tile_for_any_page_size(
        samples in corpora(),
        page_size in 1usize..8,
        rerank in any::<bool>(),
        min_score_pct in 0usize..60,
    ) {
        let config = IndexConfig::default().with_signature_len(24).with_threshold(0.4);
        let mut writer = IndexOptions::from_config(config).open_writer().unwrap();
        let split = samples.len() / 2;
        for (i, s) in samples.iter().enumerate() {
            writer.add(format!("s{i}"), s.clone()).unwrap();
            if i + 1 == split {
                writer.commit().unwrap();
            }
        }
        writer.commit().unwrap();
        let collection = SampleCollection::from_sorted_sets(samples.clone()).unwrap();
        let engine = QueryEngine::snapshot_with_collection(writer.reader(), &collection);
        let min_score = min_score_pct as f64 / 100.0;
        let probe = &samples[0];

        let one_shot = engine
            .query_page(
                probe,
                &PageRequest::new(usize::MAX >> 1).with_min_score(min_score).with_rerank(rerank),
            )
            .unwrap();
        prop_assert!(one_shot.next_cursor.is_none());

        let mut req = PageRequest::new(page_size).with_min_score(min_score).with_rerank(rerank);
        let mut tiled = Vec::new();
        loop {
            let page = engine.query_page(probe, &req).unwrap();
            prop_assert_eq!(page.total_candidates, one_shot.total_candidates);
            match page.next_cursor {
                Some(next) => {
                    prop_assert_eq!(page.hits.len(), page_size, "only the last page may be short");
                    tiled.extend(page.hits);
                    req = PageRequest::new(page_size)
                        .with_min_score(min_score)
                        .with_rerank(rerank)
                        .with_cursor(next);
                }
                None => {
                    prop_assert!(page.hits.len() <= page_size);
                    tiled.extend(page.hits);
                    break;
                }
            }
        }
        prop_assert_eq!(tiled, one_shot.hits, "pages must tile the one-shot ranking exactly");
    }
}

/// Concurrency stress over the serving frontend: one thread drives
/// pipelined commits and deletes through a [`LocalIndexService`] while
/// the background compactor merges segments underneath and query
/// threads page through pinned snapshots. Every sampled snapshot must
/// answer bit-identically to a *serial* monolithic rebuild of exactly
/// that snapshot's live corpus, pages must tile its one-shot ranking,
/// and at the end the sealed index must serve bit-identically through
/// the sharded distributed path (both batch and paged forms).
#[test]
fn service_stress_commits_compactions_and_paged_queries_stay_serializable() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Mutex};

    let config = IndexConfig::default()
        .with_signature_len(64)
        .with_threshold(0.4)
        .with_signer(SignerKind::Oph);
    let service = Arc::new(
        IndexOptions::from_config(config)
            .with_compact_interval(std::time::Duration::from_millis(1))
            .with_signer_threads(3)
            .serve()
            .unwrap(),
    );
    let corpus: Arc<Mutex<Vec<Vec<u64>>>> = Arc::new(Mutex::new(Vec::new()));
    let probes: Vec<Vec<u64>> =
        (0..4u64).map(|f| (f * 10_000..f * 10_000 + 140).collect()).collect();
    let opts = QueryOptions { top_k: 6, ..Default::default() };

    let stop = Arc::new(AtomicBool::new(false));
    let sampled: Arc<Mutex<Vec<IndexReader>>> = Arc::new(Mutex::new(Vec::new()));
    let query_threads: Vec<_> = (0..3)
        .map(|t| {
            let service = Arc::clone(&service);
            let stop = Arc::clone(&stop);
            let sampled = Arc::clone(&sampled);
            let probes = probes.clone();
            std::thread::spawn(move || {
                let mut iter = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    // Pin a snapshot; everything below must be answered
                    // from exactly this generation, no matter what the
                    // writer and compactor do meanwhile.
                    let reader = service.snapshot();
                    let engine = QueryEngine::snapshot(reader.clone());
                    let probe = &probes[iter % probes.len()];
                    let one_shot =
                        engine.query_page(probe, &PageRequest::new(usize::MAX >> 1)).unwrap();
                    let page_size = 1 + (t + iter) % 3;
                    let mut req = PageRequest::new(page_size);
                    let mut tiled = Vec::new();
                    loop {
                        let page = engine.query_page(probe, &req).unwrap();
                        assert_eq!(page.total_candidates, one_shot.total_candidates);
                        tiled.extend(page.hits);
                        match page.next_cursor {
                            Some(next) => req = PageRequest::new(page_size).with_cursor(next),
                            None => break,
                        }
                    }
                    assert_eq!(
                        tiled, one_shot.hits,
                        "pages must tile their pinned snapshot's ranking under concurrency"
                    );
                    if iter % 5 == 0 {
                        sampled.lock().unwrap().push(reader);
                    }
                    iter += 1;
                }
            })
        })
        .collect();

    // The writer side: waves of pipelined commits; tickets are waited
    // in groups of three so signing overlaps sealing; deletes target
    // only ids whose commits have provably sealed.
    let mut tickets = Vec::new();
    let mut deleted = std::collections::BTreeSet::new();
    for wave in 0..15u64 {
        let family = wave % 4;
        let batch: Vec<(String, Vec<u64>)> = (0..4u64)
            .map(|i| {
                let mut s: Vec<u64> = (family * 10_000..family * 10_000 + 140).collect();
                s.extend(
                    family * 10_000 + 5_000 + wave * 61 + i * 17
                        ..family * 10_000 + 5_000 + wave * 61 + i * 17 + 40,
                );
                (format!("w{wave}_{i}"), s)
            })
            .collect();
        {
            let mut corpus = corpus.lock().unwrap();
            let range = service.add_batch(batch.clone()).unwrap();
            assert_eq!(range.len(), batch.len());
            corpus.extend(batch.into_iter().map(|(_, s)| s));
        }
        tickets.push(service.commit().unwrap());
        if tickets.len() == 3 {
            for ticket in tickets.drain(..) {
                ticket.wait().unwrap();
            }
            let sealed_bound = service.snapshot().id_bound();
            // Tombstone one sealed id per drained group.
            let victim = (wave as u32 * 7) % sealed_bound;
            if deleted.insert(victim) {
                service.delete(victim).unwrap();
                tickets.push(service.commit().unwrap());
            }
        }
    }
    for ticket in tickets {
        ticket.wait().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for t in query_threads {
        t.join().unwrap();
    }

    // Post-hoc serializability: each sampled snapshot answers exactly
    // like a fresh monolithic build over its own live corpus.
    let corpus = corpus.lock().unwrap();
    let mut sampled = sampled.lock().unwrap();
    sampled.push(service.snapshot());
    let mut checked = std::collections::BTreeSet::new();
    for reader in sampled.iter() {
        if !checked.insert(reader.generation()) {
            continue;
        }
        let live = reader.live_ids();
        if live.is_empty() {
            continue;
        }
        let final_sets: Vec<Vec<u64>> =
            live.iter().map(|&id| corpus[id as usize].clone()).collect();
        let fresh = IndexOptions::from_config(config)
            .build_index(&SampleCollection::from_sorted_sets(final_sets).unwrap())
            .unwrap();
        let fresh_engine = QueryEngine::new(&fresh);
        let engine = QueryEngine::snapshot(reader.clone());
        for probe in &probes {
            let got = engine.query(probe, &opts).unwrap();
            let want = remap_dense_to_global(&live, &fresh_engine.query(probe, &opts).unwrap());
            assert_eq!(
                got,
                want,
                "generation {} diverged from its serial rebuild",
                reader.generation()
            );
        }
    }

    // The sealed index serves bit-identically sharded, batch and paged.
    let reader = service.snapshot();
    let reference = QueryEngine::snapshot(reader.clone()).query_batch(&probes, &opts).unwrap();
    let page_req = PageRequest::new(3);
    let page_reference =
        QueryEngine::snapshot(reader.clone()).query_page_batch(&probes, &page_req).unwrap();
    for ranks in env_usize_list("GAS_DIST_RANKS", &[1, 4]) {
        let out = Runtime::new(ranks)
            .run(|ctx| {
                let q = if ctx.rank() == 0 { Some(&probes[..]) } else { None };
                let batch = ctx.expect_ok(
                    "service reader dist batch",
                    dist_query_reader_batch(ctx.world(), &reader, None, q, &opts),
                );
                let pages = ctx.expect_ok(
                    "service reader dist page",
                    dist_query_reader_page(ctx.world(), &reader, None, q, &page_req),
                );
                (batch, pages)
            })
            .unwrap();
        for (rank, (batch, pages)) in out.results.iter().enumerate() {
            assert_eq!(batch, &reference, "rank {rank}/{ranks}: dist batch diverged");
            assert_eq!(pages, &page_reference, "rank {rank}/{ranks}: dist pages diverged");
        }
    }
}
