//! Property-based tests of the core invariants:
//!
//! * the similarity matrix is independent of batching, filtering and
//!   masking choices (Eqs. 3–7 are exact transformations);
//! * similarity matrices are symmetric, have unit diagonal and values in
//!   `[0, 1]`;
//! * the Jaccard distance satisfies the triangle inequality (it is a
//!   metric);
//! * the algebraic formulation agrees with the direct set computation;
//! * MinHash estimates stay within `[0, 1]` and are exact for identical
//!   sets.

use genomeatscale::core::algorithm::similarity_at_scale;
use genomeatscale::core::config::SimilarityConfig;
use genomeatscale::prelude::*;
use proptest::prelude::*;

/// Strategy: a small collection of samples over a bounded attribute
/// universe (values < 512), possibly with empty and duplicate-free sets.
fn collections() -> impl Strategy<Value = Vec<Vec<u64>>> {
    prop::collection::vec(
        prop::collection::btree_set(0u64..512, 0..60)
            .prop_map(|s| s.into_iter().collect::<Vec<u64>>()),
        2..8,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn batching_filtering_and_masking_do_not_change_results(
        samples in collections(),
        batches in 1usize..6,
        use_filter in any::<bool>(),
        use_mask in any::<bool>(),
    ) {
        let collection = SampleCollection::from_sorted_sets(samples).unwrap();
        let reference = jaccard_exact_pairwise(&collection);
        let config = SimilarityConfig {
            use_zero_row_filter: use_filter,
            use_bitmask: use_mask,
            ..SimilarityConfig::with_batches(batches)
        };
        let result = similarity_at_scale(&collection, &config).unwrap();
        prop_assert_eq!(result.intersections(), reference.intersections());
        prop_assert_eq!(result.cardinalities(), reference.cardinalities());
    }

    #[test]
    fn similarity_matrices_are_well_formed(samples in collections()) {
        let collection = SampleCollection::from_sorted_sets(samples).unwrap();
        let result = similarity_at_scale(&collection, &SimilarityConfig::default()).unwrap();
        let s = result.similarity();
        let n = collection.n();
        for i in 0..n {
            prop_assert!((s.get(i, i) - 1.0).abs() < 1e-12, "diagonal must be 1");
            for j in 0..n {
                prop_assert!(s.get(i, j) >= 0.0 && s.get(i, j) <= 1.0);
                prop_assert!((s.get(i, j) - s.get(j, i)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn jaccard_distance_satisfies_the_triangle_inequality(samples in collections()) {
        let collection = SampleCollection::from_sorted_sets(samples).unwrap();
        let d = similarity_at_scale(&collection, &SimilarityConfig::default())
            .unwrap()
            .distance();
        let n = collection.n();
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    prop_assert!(
                        d.get(i, j) <= d.get(i, k) + d.get(k, j) + 1e-9,
                        "triangle inequality violated at ({}, {}, {})", i, j, k
                    );
                }
            }
        }
    }

    #[test]
    fn algebraic_formulation_matches_direct_set_computation(samples in collections()) {
        let collection = SampleCollection::from_sorted_sets(samples.clone()).unwrap();
        let result = similarity_at_scale(&collection, &SimilarityConfig::with_batches(2)).unwrap();
        for i in 0..samples.len() {
            for j in 0..samples.len() {
                let inter = samples[i].iter().filter(|v| samples[j].contains(v)).count();
                let union = samples[i].len() + samples[j].len() - inter;
                let expected = if union == 0 { 1.0 } else { inter as f64 / union as f64 };
                prop_assert!((result.similarity().get(i, j) - expected).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn minhash_estimates_are_bounded_and_exact_on_identity(
        set in prop::collection::btree_set(0u64..100_000, 1..400),
        sketch_size in 8usize..256,
    ) {
        let values: Vec<u64> = set.into_iter().collect();
        let hasher = MinHasher::new(sketch_size).unwrap();
        let sketch = hasher.sketch(&values);
        prop_assert_eq!(sketch.jaccard_estimate(&sketch), 1.0);
        let other = hasher.sketch(&values.iter().map(|v| v + 1_000_000).collect::<Vec<_>>());
        let est = sketch.jaccard_estimate(&other);
        prop_assert!((0.0..=1.0).contains(&est));
    }

    #[test]
    fn sample_collection_statistics_are_consistent(samples in collections()) {
        let collection = SampleCollection::from_sorted_sets(samples.clone()).unwrap();
        let nnz: u64 = samples.iter().map(|s| s.len() as u64).sum();
        prop_assert_eq!(collection.nnz(), nnz);
        prop_assert_eq!(collection.n(), samples.len());
        let card = collection.cardinalities();
        for (i, s) in samples.iter().enumerate() {
            prop_assert_eq!(card[i], s.len() as u64);
        }
        // Batches tile the nonzeros exactly.
        let m = collection.m();
        let third = (m / 3).max(1);
        let total = collection.batch_nnz(0, third)
            + collection.batch_nnz(third, 2 * third)
            + collection.batch_nnz(2 * third, m);
        prop_assert_eq!(total, nnz);
    }
}
