//! End-to-end integration test: FASTA text → k-mer samples →
//! SimilarityAtScale → downstream clustering, validated against the
//! brute-force per-pair reference at every step.

use genomeatscale::cluster::hierarchical::{hierarchical_cluster, Linkage};
use genomeatscale::cluster::nj::neighbor_joining;
use genomeatscale::genomics::synth::{mutate, random_genome};
use genomeatscale::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn build_family() -> Vec<KmerSample> {
    let mut rng = StdRng::seed_from_u64(42);
    let extractor = KmerExtractor::new(15).unwrap();
    let root_a = random_genome(20_000, &mut rng);
    let root_b = random_genome(20_000, &mut rng);
    let genomes = vec![
        ("a0".to_string(), root_a.clone()),
        ("a1".to_string(), mutate(&root_a, 0.01, &mut rng)),
        ("a2".to_string(), mutate(&root_a, 0.05, &mut rng)),
        ("b0".to_string(), root_b.clone()),
        ("b1".to_string(), mutate(&root_b, 0.02, &mut rng)),
    ];
    genomes.into_iter().map(|(name, g)| KmerSample::from_sequence(name, &g, &extractor)).collect()
}

#[test]
fn fasta_roundtrip_preserves_samples() {
    use genomeatscale::genomics::fasta::{FastaRecord, FastaWriter};
    let mut rng = StdRng::seed_from_u64(3);
    let extractor = KmerExtractor::new(13).unwrap();
    let genome = random_genome(5_000, &mut rng);
    let record = FastaRecord::new("g1", genome.clone());
    let mut writer = FastaWriter::new(Vec::new());
    writer.write_record(&record).unwrap();
    let text = writer.into_inner().unwrap();
    let parsed = FastaReader::new(std::io::Cursor::new(text)).read_all().unwrap();
    assert_eq!(parsed.len(), 1);
    assert_eq!(parsed[0].seq, genome);
    let direct = KmerSample::from_sequence("g1", &genome, &extractor);
    let via_fasta = KmerSample::from_sequence("g1", &parsed[0].seq, &extractor);
    assert_eq!(direct, via_fasta);
}

#[test]
fn pipeline_matches_per_pair_reference_and_expected_structure() {
    let samples = build_family();
    let collection = SampleCollection::from_kmer_samples(&samples).unwrap();
    let result = similarity_at_scale(&collection, &SimilarityConfig::with_batches(3)).unwrap();
    let s = result.similarity();

    // Matrix values equal the pairwise set computation.
    for i in 0..samples.len() {
        for j in 0..samples.len() {
            let expected = samples[i].jaccard(&samples[j]);
            assert!(
                (s.get(i, j) - expected).abs() < 1e-12,
                "mismatch at ({i}, {j}): {} vs {expected}",
                s.get(i, j)
            );
        }
    }
    // Structure: within-clade similarity above cross-clade similarity.
    assert!(s.get(0, 1) > s.get(0, 3));
    assert!(s.get(3, 4) > s.get(3, 2));
    // Less diverged genomes are more similar.
    assert!(s.get(0, 1) > s.get(0, 2));
}

#[test]
fn downstream_clustering_recovers_the_clades() {
    let samples = build_family();
    let collection = SampleCollection::from_kmer_samples(&samples).unwrap();
    let result = similarity_at_scale(&collection, &SimilarityConfig::default()).unwrap();
    let distances = result.distance();

    let dendrogram = hierarchical_cluster(&distances, Linkage::Average).unwrap();
    let labels = dendrogram.cut(2).unwrap();
    assert_eq!(labels[0], labels[1]);
    assert_eq!(labels[0], labels[2]);
    assert_eq!(labels[3], labels[4]);
    assert_ne!(labels[0], labels[3]);

    let tree = neighbor_joining(&distances, collection.names()).unwrap();
    assert_eq!(tree.leaf_count(), 5);
    let newick = tree.newick();
    for name in collection.names() {
        assert!(newick.contains(name.as_str()));
    }
}

#[test]
fn minhash_estimates_track_the_exact_matrix() {
    let samples = build_family();
    let collection = SampleCollection::from_kmer_samples(&samples).unwrap();
    let exact = jaccard_exact_pairwise(&collection);
    let approx = MinHasher::new(2048).unwrap().approximate_similarity(&collection);
    let err = exact.similarity().max_abs_diff(&approx).unwrap();
    assert!(err < 0.08, "MinHash with a large sketch should track the exact values, err = {err}");
}
