//! Persistence tests of the `gas-index` container: property-based
//! round-trips (build → write → read → identical index and identical
//! top-k answers) and rejection of corrupted or truncated files.

use genomeatscale::index::container::{Container, ContainerWriter, MAGIC, SECTION_META};
use genomeatscale::index::IndexError;
use genomeatscale::prelude::*;
use proptest::prelude::*;

fn unique_path(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("gas_idx_{tag}_{}_{n}.gidx", std::process::id()))
}

/// Strategy: a small collection of samples over a bounded universe,
/// including possibly-empty sets.
fn collections() -> impl Strategy<Value = Vec<Vec<u64>>> {
    prop::collection::vec(
        prop::collection::btree_set(0u64..2_048, 0..80)
            .prop_map(|s| s.into_iter().collect::<Vec<u64>>()),
        2..10,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn container_round_trip_preserves_index_and_answers(
        samples in collections(),
        signature_len in 8usize..65,
    ) {
        let collection = SampleCollection::from_sorted_sets(samples).unwrap();
        let config = IndexConfig::default()
            .with_signature_len(signature_len)
            .with_threshold(0.5);
        let index = IndexOptions::from_config(config).build_index(&collection).unwrap();

        let path = unique_path("roundtrip");
        index.write_to(&path).unwrap();
        let loaded = SketchIndex::read_from(&path).unwrap();
        std::fs::remove_file(&path).ok();

        // The loaded index is structurally identical ...
        prop_assert_eq!(&loaded, &index);

        // ... and answers every query identically (every sample plus a
        // few perturbations, with and without exact re-ranking).
        let mut queries: Vec<Vec<u64>> =
            (0..collection.n()).map(|i| collection.sample(i).to_vec()).collect();
        queries.push(Vec::new());
        queries.push(collection.sample(0).iter().copied().step_by(2).collect());
        for rerank in [false, true] {
            let opts = QueryOptions { top_k: 5, rerank_exact: rerank, ..Default::default() };
            let before = QueryEngine::with_collection(&index, &collection)
                .query_batch(&queries, &opts)
                .unwrap();
            let after = QueryEngine::with_collection(&loaded, &collection)
                .query_batch(&queries, &opts)
                .unwrap();
            prop_assert_eq!(before, after, "rerank={}", rerank);
        }
    }

    #[test]
    fn flipping_any_single_payload_byte_is_detected(
        byte in 0usize..10_000,
    ) {
        // A canonical small index; flip one byte somewhere in the file
        // (position taken modulo the length) and the reader must either
        // reject it or — never — misparse silently into a *different*
        // valid index. Flips that keep the file identical (impossible for
        // XOR) or land in ignored padding do not exist in this format:
        // every byte is covered by a checksum.
        let collection = SampleCollection::from_sorted_sets(vec![
            (0..40u64).collect(),
            (20..60u64).collect(),
        ])
        .unwrap();
        let index =
            IndexOptions::from_config(IndexConfig::default().with_signature_len(16)).build_index(&collection)
                .unwrap();
        let mut bytes = index.to_container_bytes();
        let pos = byte % bytes.len();
        bytes[pos] ^= 0x5A;
        prop_assert!(
            SketchIndex::from_container_bytes(bytes).is_err(),
            "flip at byte {} went undetected",
            pos
        );
    }
}

#[test]
fn corrupted_header_is_rejected() {
    let collection =
        SampleCollection::from_sorted_sets(vec![(0..50u64).collect(), (25..75u64).collect()])
            .unwrap();
    let index = IndexOptions::from_config(IndexConfig::default().with_signature_len(32))
        .build_index(&collection)
        .unwrap();
    let bytes = index.to_container_bytes();

    // Wrong magic.
    let mut bad = bytes.clone();
    bad[..8].copy_from_slice(b"NOTGASIX");
    assert!(matches!(SketchIndex::from_container_bytes(bad), Err(IndexError::BadMagic)));

    // Unsupported version.
    let mut bad = bytes.clone();
    bad[8..12].copy_from_slice(&7u32.to_le_bytes());
    assert!(matches!(
        SketchIndex::from_container_bytes(bad),
        Err(IndexError::UnsupportedVersion(7))
    ));

    // Corrupted section-table checksum region.
    let mut bad = bytes.clone();
    bad[26] ^= 0xFF; // inside the section table
    assert!(matches!(
        SketchIndex::from_container_bytes(bad),
        Err(IndexError::ChecksumMismatch { .. }) | Err(IndexError::Truncated { .. })
    ));
}

#[test]
fn truncated_files_are_rejected_at_every_length() {
    let collection =
        SampleCollection::from_sorted_sets(vec![(0..30u64).collect(), (10..40u64).collect()])
            .unwrap();
    let index = IndexOptions::from_config(IndexConfig::default().with_signature_len(8))
        .build_index(&collection)
        .unwrap();
    let bytes = index.to_container_bytes();
    // Every proper prefix must fail loudly (drop a tail of 1 byte up to
    // several sections' worth) — a truncated copy is the classic failure
    // of interrupted uploads.
    for keep in [0usize, 7, 8, 23, 24, bytes.len() / 2, bytes.len() - 1] {
        let truncated = bytes[..keep].to_vec();
        assert!(
            SketchIndex::from_container_bytes(truncated).is_err(),
            "prefix of {keep} bytes accepted"
        );
    }
}

#[test]
fn missing_sections_are_rejected() {
    // A syntactically valid container that lacks the signature section.
    let mut writer = ContainerWriter::new();
    writer.add_section(SECTION_META, vec![0u8; 4]);
    let bytes = writer.to_bytes();
    let container = Container::parse(bytes.clone()).unwrap();
    assert_eq!(container.tags(), vec!["META".to_string()]);
    match SketchIndex::from_container_bytes(bytes) {
        // META is truncated (4 bytes cannot hold the fixed fields), or a
        // later section is missing — either way a typed error, no panic.
        Err(
            IndexError::Truncated { .. }
            | IndexError::MissingSection(_)
            | IndexError::Corrupt { .. },
        ) => {}
        other => panic!("unexpected result: {other:?}"),
    }
}

#[test]
fn file_level_round_trip_with_magic_constant() {
    let collection =
        SampleCollection::from_sorted_sets(vec![(0..100u64).collect(), (50..150u64).collect()])
            .unwrap();
    let index = IndexOptions::from_config(IndexConfig::default().with_signature_len(64))
        .build_index(&collection)
        .unwrap();
    let path = unique_path("file");
    index.write_to(&path).unwrap();
    let raw = std::fs::read(&path).unwrap();
    assert_eq!(&raw[..8], &MAGIC, "files start with the container magic");
    let loaded = SketchIndex::read_from(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded, index);
}
