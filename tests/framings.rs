//! Integration tests of the non-genomic framings of Table III: the same
//! SimilarityAtScale pipeline computes vertex similarities from graph
//! neighborhoods and document similarities from word sets.

use genomeatscale::cluster::documents::{document_similarity, document_word_set};
use genomeatscale::cluster::graph::AdjacencyGraph;
use genomeatscale::prelude::*;

#[test]
fn graph_vertex_similarity_via_the_pipeline_matches_direct_computation() {
    // A small social-network-like graph.
    let graph = AdjacencyGraph::from_edges(
        8,
        &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (3, 4), (4, 5), (4, 6), (5, 6), (5, 7), (6, 7)],
    )
    .unwrap();
    let collection = SampleCollection::from_sorted_sets(graph.neighborhood_sets()).unwrap();
    let result = similarity_at_scale(&collection, &SimilarityConfig::with_batches(2)).unwrap();
    let s = result.similarity();
    for u in 0..graph.n() {
        for v in 0..graph.n() {
            let direct = graph.vertex_similarity(u, v);
            assert!(
                (s.get(u, v) - direct).abs() < 1e-12,
                "vertex pair ({u}, {v}): pipeline {} vs direct {direct}",
                s.get(u, v)
            );
        }
    }
    // Vertices in the same triangle are more similar than across the
    // bridge.
    assert!(s.get(0, 1) > s.get(0, 5));
}

#[test]
fn document_similarity_via_the_pipeline_matches_direct_computation() {
    let docs = [
        "the quick brown fox jumps over the lazy dog",
        "the quick brown fox leaps over a lazy dog",
        "sparse matrices enable communication efficient jaccard similarity",
        "communication efficient sparse matrix multiplication at scale",
        "completely unrelated text about cooking pasta with tomatoes",
    ];
    let sets: Vec<Vec<u64>> = docs.iter().map(|d| document_word_set(d)).collect();
    let collection = SampleCollection::from_sorted_sets(sets).unwrap();
    let result = similarity_at_scale(&collection, &SimilarityConfig::default()).unwrap();
    let s = result.similarity();
    for i in 0..docs.len() {
        for j in 0..docs.len() {
            let direct = document_similarity(docs[i], docs[j]);
            assert!(
                (s.get(i, j) - direct).abs() < 1e-12,
                "documents ({i}, {j}): pipeline {} vs direct {direct}",
                s.get(i, j)
            );
        }
    }
    // The two fox sentences are the most similar off-diagonal pair.
    let mut best = (0, 0, 0.0);
    for i in 0..docs.len() {
        for j in 0..docs.len() {
            if i != j && s.get(i, j) > best.2 {
                best = (i, j, s.get(i, j));
            }
        }
    }
    assert!((best.0, best.1) == (0, 1) || (best.0, best.1) == (1, 0));
    // The technical documents are closer to each other than to cooking.
    assert!(s.get(2, 3) > s.get(2, 4));
}

#[test]
fn clustering_of_graph_vertices_follows_communities() {
    use genomeatscale::cluster::hierarchical::{hierarchical_cluster, Linkage};
    // Two 4-cliques joined by one edge.
    let mut edges = Vec::new();
    for a in 0..4usize {
        for b in (a + 1)..4 {
            edges.push((a, b));
            edges.push((a + 4, b + 4));
        }
    }
    edges.push((3, 4));
    let graph = AdjacencyGraph::from_edges(8, &edges).unwrap();
    let collection = SampleCollection::from_sorted_sets(graph.neighborhood_sets()).unwrap();
    let distances =
        similarity_at_scale(&collection, &SimilarityConfig::default()).unwrap().distance();
    let labels = hierarchical_cluster(&distances, Linkage::Average).unwrap().cut(2).unwrap();
    assert_eq!(labels[0], labels[1]);
    assert_eq!(labels[0], labels[2]);
    assert_eq!(labels[5], labels[6]);
    assert_eq!(labels[5], labels[7]);
    assert_ne!(labels[0], labels[5]);
}
