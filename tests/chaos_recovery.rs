//! Crash-recovery torture drill: random seeded fault plans over random
//! `add / commit / delete / compact / vacuum` sequences, under both
//! signers. The contract being tortured is the container's generation
//! protocol extended through the chaos storage layer:
//!
//! * any injected storage fault (transient error, short or torn write,
//!   lost fsync) surfaces as a typed `IndexError::Io` — never a panic —
//!   and the backing file **always reopens**, serving some previously
//!   committed generation bit-identically;
//! * the next successful commit after a fault heals the file: a fresh
//!   reopen sees no torn bytes and the writer's full state.
//!
//! Fault plans are deterministic (seeded, per-operation counter), so a
//! failing case shrinks and replays exactly.

use genomeatscale::index::IndexError;
use genomeatscale::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// The process-global chaos switch is one flag for the whole test
/// binary: serialize the torture cases so a parallel non-chaos test
/// never observes injection mid-flight.
static CHAOS_GATE: Mutex<()> = Mutex::new(());

fn chaos_on() -> MutexGuard<'static, ()> {
    let guard = CHAOS_GATE.lock().unwrap_or_else(|e| e.into_inner());
    genomeatscale::chaos::set_enabled(true);
    guard
}

fn unique_path(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("gas_chaos_it_{tag}_{}_{n}.gidx", std::process::id()))
}

/// One logical step of the torture schedule.
#[derive(Debug, Clone, Copy)]
enum Op {
    AddCommit,
    Delete,
    Compact,
    Vacuum,
    /// Drop the writer mid-run without an error (a process crash) and
    /// reopen from disk.
    Crash,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        (0u32..8).prop_map(|c| match c {
            0..=2 => Op::AddCommit,
            3 => Op::Delete,
            4 => Op::Compact,
            5 => Op::Vacuum,
            _ => Op::Crash,
        }),
        4..14,
    )
}

fn probe(salt: u64) -> Vec<u64> {
    (salt * 37..salt * 37 + 40).collect()
}

fn sample(tag: u64) -> Vec<u64> {
    // Overlapping families so queries have real neighbors to rank.
    let base = (tag % 3) * 1_000;
    (base..base + 120).chain(tag * 7_000..tag * 7_000 + 12).collect()
}

/// The full answer surface we require to be bit-identical across a
/// recovery: one ranking per probe family.
fn answers(reader: &IndexReader) -> Vec<Vec<Neighbor>> {
    let engine = QueryEngine::snapshot(reader.clone());
    (0..3u64)
        .map(|salt| {
            engine
                .query(&probe(salt), &QueryOptions { top_k: 6, ..Default::default() })
                .expect("query on a served snapshot")
        })
        .collect()
}

/// Reopen `path` with the real filesystem. Must always succeed, and the
/// served generation must be one the run previously committed, with
/// bit-identical answers. Returns the reopened writer and the surviving
/// generation.
fn reopen_and_check(
    path: &std::path::Path,
    recorded: &BTreeMap<u64, Vec<Vec<Neighbor>>>,
) -> (IndexWriter, u64) {
    let writer = IndexWriter::open(path)
        .unwrap_or_else(|e| panic!("file must reopen after any injected fault: {e}"));
    let generation = writer.generation();
    let want = recorded
        .get(&generation)
        .unwrap_or_else(|| panic!("reopened generation {generation} was never committed"));
    assert_eq!(
        &answers(&writer.reader()),
        want,
        "reopened generation {generation} must answer bit-identically"
    );
    (writer, generation)
}

fn run_case(signer: SignerKind, ops: &[Op], fault_seed: u64, per_mille: u16) {
    let _gate = chaos_on();
    let path = unique_path("torture");
    let config =
        IndexConfig::default().with_signature_len(32).with_threshold(0.5).with_signer(signer);
    let mut writer = IndexOptions::from_config(config).create_writer_at(&path).unwrap();

    // Committed generations → their full answer surface, from the
    // writer's in-memory state (which a lying fsync lets run ahead of
    // disk — exactly what the reopen check is for).
    let mut recorded: BTreeMap<u64, Vec<Vec<Neighbor>>> = BTreeMap::new();
    recorded.insert(writer.generation(), answers(&writer.reader()));

    let chaos = Arc::new(ChaosStorage::over_fs(FaultPlan::seeded(fault_seed, per_mille)));
    writer.set_storage(chaos.clone());

    let mut next_tag = 0u64;
    let mut add = |w: &mut IndexWriter| {
        for _ in 0..2 {
            w.add(format!("s{next_tag}"), sample(next_tag)).unwrap();
            next_tag += 1;
        }
    };

    for (step, op) in ops.iter().enumerate() {
        let result: Result<(), IndexError> = match op {
            Op::AddCommit => {
                add(&mut writer);
                writer.commit().map(|_| ())
            }
            Op::Delete => {
                let bound = writer.id_bound();
                if bound == 0 {
                    continue;
                }
                let id = (genomeatscale::core::minhash::splitmix64(fault_seed ^ step as u64)
                    % bound as u64) as u32;
                match writer.delete(id) {
                    // Already tombstoned / never committed: not a fault.
                    Err(IndexError::UnknownSample { .. }) => continue,
                    other => other.and_then(|_| writer.commit().map(|_| ())),
                }
            }
            Op::Compact => writer.compact_all().map(|_| ()),
            Op::Vacuum => writer.vacuum().map(|_| ()),
            Op::Crash => Err(IndexError::InvalidConfig("forced crash".into())),
        };
        match result {
            Ok(()) => {
                recorded.insert(writer.generation(), answers(&writer.reader()));
            }
            Err(IndexError::Io(_)) | Err(IndexError::InvalidConfig(_)) => {
                // Injected fault (or forced crash): drop the writer and
                // recover from whatever the disk holds.
                drop(writer);
                let (reopened, generation) = reopen_and_check(&path, &recorded);
                writer = reopened;
                // Generations after the surviving one are lost history:
                // the healed timeline will reuse their numbers with
                // different content.
                recorded.split_off(&(generation + 1));

                // Heal: one fresh commit must leave the file clean and
                // fully caught up, chaos out of the way.
                add(&mut writer);
                writer.commit().expect("healing commit under RealFs");
                let (healed, report) = IndexReader::open_with_report(&path).unwrap();
                assert_eq!(report.torn_bytes, 0, "the healing commit truncates torn tails");
                assert_eq!(healed.generation(), writer.generation());
                assert_eq!(
                    answers(&healed),
                    answers(&writer.reader()),
                    "after healing, disk and memory must agree"
                );
                recorded.insert(writer.generation(), answers(&writer.reader()));
                // Re-arm injection for the rest of the schedule.
                writer.set_storage(chaos.clone());
            }
            Err(other) => panic!("unexpected error class from {op:?}: {other}"),
        }
    }

    // Epilogue: whatever the schedule left behind, the file recovers
    // and heals one last time.
    drop(writer);
    let (mut writer, _) = reopen_and_check(&path, &recorded);
    add(&mut writer);
    writer.commit().unwrap();
    let (final_reader, report) = IndexReader::open_with_report(&path).unwrap();
    assert_eq!(report.torn_bytes, 0);
    assert_eq!(answers(&final_reader), answers(&writer.reader()));
    std::fs::remove_file(&path).ok();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// The torture drill proper: every schedule, fault seed and fault
    /// rate must uphold reopen-and-heal, under both signers.
    #[test]
    fn any_fault_schedule_leaves_a_servable_generation_and_heals(
        ops in ops(),
        fault_seed in 0u64..10_000,
        per_mille in 100u32..700,
    ) {
        for signer in [SignerKind::KMins, SignerKind::Oph] {
            run_case(signer, &ops, fault_seed, per_mille as u16);
        }
    }
}

/// A pinned, non-random instance of the worst single fault — a lying
/// fsync on a commit — so the drill's core claim has a deterministic
/// regression test too.
#[test]
fn lying_fsync_is_caught_at_reopen_and_healed() {
    let _gate = chaos_on();
    let path = unique_path("fsync");
    let config = IndexConfig::default().with_signature_len(32).with_threshold(0.5);
    let mut w = IndexOptions::from_config(config).create_writer_at(&path).unwrap();
    w.add("a", sample(1)).unwrap();
    w.commit().unwrap();
    let survivor = answers(&w.reader());

    w.set_storage(Arc::new(ChaosStorage::over_fs(
        FaultPlan::seeded(1, 0).script(0, FaultKind::FsyncLoss),
    )));
    w.add("b", sample(2)).unwrap();
    w.commit().expect("the lying fsync reports success");
    drop(w);

    let (reader, report) = IndexReader::open_with_report(&path).unwrap();
    assert_eq!(reader.generation(), 1, "the silent loss falls back to the durable generation");
    assert!(report.torn_bytes > 0);
    assert_eq!(answers(&reader), survivor);

    let mut w = IndexWriter::open(&path).unwrap();
    w.add("b2", sample(2)).unwrap();
    w.commit().unwrap();
    let (healed, report) = IndexReader::open_with_report(&path).unwrap();
    assert_eq!(report.torn_bytes, 0);
    assert_eq!(healed.generation(), 2);
    std::fs::remove_file(&path).ok();
}
