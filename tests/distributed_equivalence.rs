//! Integration tests of the simulated-distributed driver: for every rank
//! count, batch count and replication factor, the distributed result must
//! equal the shared-memory result and the brute-force reference bit for
//! bit, and the communication counters must behave as the paper's
//! analysis predicts.

use genomeatscale::core::algorithm::{similarity_at_scale, similarity_at_scale_distributed};
use genomeatscale::core::baselines::allreduce_jaccard_distributed;
use genomeatscale::genomics::datasets::DatasetSpec;
use genomeatscale::prelude::*;
use genomeatscale::sparse::dist::DistAta;

fn workload(seed: u64, n: usize) -> SampleCollection {
    let samples = DatasetSpec::explicit(6_000, n, 0.015, seed).generate().unwrap();
    SampleCollection::from_sorted_sets(samples).unwrap()
}

/// Comma-separated usize list from the environment, falling back to
/// `default`. The CI `dist-matrix` job sets `GAS_DIST_RANKS` /
/// `GAS_DIST_REPLICATION` to pin one grid configuration per matrix entry;
/// local runs cover the full default matrix.
fn env_usize_list(name: &str, default: &[usize]) -> Vec<usize> {
    match std::env::var(name) {
        Ok(v) => v
            .split(',')
            .map(|s| s.trim().parse().unwrap_or_else(|_| panic!("{name} must be a usize list")))
            .collect(),
        Err(_) => default.to_vec(),
    }
}

#[test]
fn distributed_equals_shared_memory_across_configurations() {
    let collection = workload(1, 14);
    let reference = jaccard_exact_pairwise(&collection);
    for ranks in env_usize_list("GAS_DIST_RANKS", &[1, 2, 5, 8, 12]) {
        for batches in [1usize, 4] {
            for replication in env_usize_list("GAS_DIST_REPLICATION", &[1, 2]) {
                let config = SimilarityConfig::with_batches(batches).with_replication(replication);
                let shared = similarity_at_scale(&collection, &config).unwrap();
                let distributed = similarity_at_scale_distributed(
                    &collection,
                    &config,
                    ranks,
                    &Machine::laptop(),
                )
                .unwrap();
                assert_eq!(
                    shared.intersections(),
                    reference.intersections(),
                    "shared-memory mismatch (batches={batches})"
                );
                assert_eq!(
                    distributed.result.intersections(),
                    reference.intersections(),
                    "distributed mismatch (ranks={ranks}, batches={batches}, c={replication})"
                );
                assert_eq!(distributed.result.cardinalities(), reference.cardinalities());
                assert_eq!(
                    distributed.active_ranks, ranks,
                    "rectangular grids must use every rank (ranks={ranks}, c={replication})"
                );
            }
        }
    }
}

#[test]
fn every_rank_owns_output_and_summa_chunks() {
    // Non-square rank counts used to idle p − s²·c ranks; the rectangular
    // grid must hand every rank an output block and owned SUMMA chunks.
    for p in env_usize_list("GAS_DIST_RANKS", &[4, 6, 8, 12]) {
        for replication in env_usize_list("GAS_DIST_REPLICATION", &[1, 2]) {
            let out = Runtime::new(p)
                .run(|ctx| {
                    let ata = ctx.expect_ok(
                        "DistAta grid setup",
                        DistAta::new(ctx.world(), 48, replication),
                    );
                    let grid = ata.grid().clone();
                    let coords = ctx.expect_ok("grid coordinates", grid.coords_of(ctx.rank()));
                    let owned_right =
                        (0..ata.steps_per_layer()).filter(|t| t % grid.rows() == coords[0]).count();
                    let owned_left =
                        (0..ata.steps_per_layer()).filter(|t| t % grid.cols() == coords[1]).count();
                    (
                        ata.active_ranks(),
                        ata.my_col_range().len(),
                        ata.my_row_range().len(),
                        owned_right,
                        owned_left,
                    )
                })
                .unwrap();
            for (rank, (active, ncols, nrows, owned_r, owned_l)) in out.results.iter().enumerate() {
                let ctx = format!("p={p}, c={replication}, rank={rank}");
                assert_eq!(*active, p, "{ctx}");
                assert!(*ncols > 0, "{ctx}: no output columns");
                assert!(*nrows > 0, "{ctx}: no output rows");
                assert!(*owned_r > 0, "{ctx}: no right SUMMA chunks");
                assert!(*owned_l > 0, "{ctx}: no left SUMMA chunks");
            }
        }
    }
}

#[test]
fn skewed_bigsi_like_data_is_handled_exactly() {
    let spec = DatasetSpec::bigsi_like(0.0002).with_seed(9);
    let samples = spec.generate().unwrap();
    let collection = SampleCollection::from_sorted_sets(samples).unwrap();
    let reference = jaccard_exact_pairwise(&collection);
    let distributed = similarity_at_scale_distributed(
        &collection,
        &SimilarityConfig::with_batches(3),
        6,
        &Machine::laptop(),
    )
    .unwrap();
    assert_eq!(distributed.result.intersections(), reference.intersections());
    assert!(distributed.result.similarity().is_symmetric(1e-12));
}

#[test]
fn communication_per_rank_decreases_with_more_ranks() {
    // The replicated filter vector is a constant per-rank overhead (the
    // paper's implementation collects `f` on all processors), so this
    // check isolates the matrix-product communication by disabling the
    // filter: the SUMMA broadcast volume per rank must shrink as the grid
    // grows.
    let collection = workload(2, 64);
    let config =
        SimilarityConfig { use_zero_row_filter: false, ..SimilarityConfig::with_batches(2) };
    let mut per_rank = Vec::new();
    for ranks in [4usize, 16] {
        let summary =
            similarity_at_scale_distributed(&collection, &config, ranks, &Machine::laptop())
                .unwrap();
        per_rank.push(summary.aggregate.total_bytes_sent / ranks as u64);
    }
    assert!(
        per_rank[1] < per_rank[0],
        "per-rank product communication should shrink with more ranks: {per_rank:?}"
    );
}

#[test]
fn allreduce_baseline_matches_results_but_not_communication() {
    let collection = workload(3, 100);
    let config = SimilarityConfig::with_batches(3);
    let ranks = 4;
    let ours =
        similarity_at_scale_distributed(&collection, &config, ranks, &Machine::laptop()).unwrap();
    let baseline =
        allreduce_jaccard_distributed(&collection, &config, ranks, &Machine::laptop()).unwrap();
    assert_eq!(ours.result.intersections(), baseline.result.intersections());
    assert!(
        baseline.aggregate.total_bytes_sent > ours.aggregate.total_bytes_sent,
        "the allreduce pattern must move more data ({} vs {})",
        baseline.aggregate.total_bytes_sent,
        ours.aggregate.total_bytes_sent
    );
}

#[test]
fn cost_projection_is_positive_and_scales_with_problem_size() {
    let small = workload(4, 8);
    let large = workload(4, 32);
    let machine = Machine::stampede2_knl();
    let model = machine.cost_model().unwrap();
    let config = SimilarityConfig::default();
    let t_small = similarity_at_scale_distributed(&small, &config, 4, &machine)
        .unwrap()
        .projected_time(&model);
    let t_large = similarity_at_scale_distributed(&large, &config, 4, &machine)
        .unwrap()
        .projected_time(&model);
    assert!(t_small > 0.0);
    assert!(t_large > t_small, "larger problems must project to longer times");
}
