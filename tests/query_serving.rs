//! Distributed query-serving equivalence: the band-sharded engine must
//! answer bit-identically to the single-rank engine for every rank count
//! of the CI dist-matrix grid (`GAS_DIST_RANKS` pins one configuration
//! per CI job, `GAS_DIST_SEGMENTS` one uncompacted segment count; local
//! runs cover the full default matrix), the keyed cross-segment
//! exchange must ship exactly the rows the retained per-segment
//! reference ships, and the cost-model-planned mixed placement
//! (replicated and sharded segments in one exchange) must answer
//! bit-identically to both.

use genomeatscale::index::dist::{band_shard, sample_shard, SignatureShard};
use genomeatscale::prelude::*;
use proptest::prelude::*;

fn env_usize_list(name: &str, default: &[usize]) -> Vec<usize> {
    match std::env::var(name) {
        Ok(v) => v
            .split(',')
            .map(|s| s.trim().parse().unwrap_or_else(|_| panic!("{name} must be a usize list")))
            .collect(),
        Err(_) => default.to_vec(),
    }
}

fn family_workload() -> SampleCollection {
    let mut samples = Vec::new();
    for f in 0..5u64 {
        let core: Vec<u64> = (f * 40_000..f * 40_000 + 400).collect();
        for m in 0..6u64 {
            let mut s = core.clone();
            s.extend(f * 40_000 + 20_000 + m * 30..f * 40_000 + 20_000 + m * 30 + 30);
            samples.push(s);
        }
    }
    SampleCollection::from_sets(samples).unwrap()
}

#[test]
fn sharded_answers_equal_single_rank_answers_across_grid() {
    let collection = family_workload();
    let config = IndexConfig::default().with_signature_len(128).with_threshold(0.4);
    let index = IndexOptions::from_config(config).build_index(&collection).unwrap();
    // Queries: every fifth sample verbatim, one perturbation, one empty.
    let mut queries: Vec<Vec<u64>> =
        (0..collection.n()).step_by(5).map(|i| collection.sample(i).to_vec()).collect();
    queries.push(collection.sample(3).iter().copied().step_by(3).collect());
    queries.push(Vec::new());

    for rerank in [false, true] {
        let opts = QueryOptions { top_k: 6, rerank_exact: rerank, ..Default::default() };
        let engine = QueryEngine::with_collection(&index, &collection);
        let reference = engine.query_batch(&queries, &opts).unwrap();

        for ranks in env_usize_list("GAS_DIST_RANKS", &[1, 2, 4, 6, 8]) {
            let out = Runtime::new(ranks)
                .run(|ctx| {
                    let q = if ctx.rank() == 0 { Some(&queries[..]) } else { None };
                    ctx.expect_ok(
                        "dist_query_batch",
                        dist_query_batch(ctx.world(), &index, Some(&collection), q, &opts),
                    )
                })
                .unwrap();
            for (rank, answers) in out.results.iter().enumerate() {
                assert_eq!(
                    answers, &reference,
                    "rank {rank}/{ranks} (rerank={rerank}): sharded answers diverge"
                );
            }
        }
    }
}

#[test]
fn every_rank_owns_bands_of_real_indexes_on_ci_grids() {
    // Sharded serving only balances if each rank owns part of the bucket
    // space of an *actual built index* (not a hypothetical band count)
    // for every grid of the dist-matrix.
    let collection = family_workload();
    for threshold in [0.3, 0.4, 0.5] {
        let config = IndexConfig::default().with_signature_len(128).with_threshold(threshold);
        let index = IndexOptions::from_config(config).build_index(&collection).unwrap();
        let bands = index.params().bands();
        for ranks in env_usize_list("GAS_DIST_RANKS", &[4, 6, 8, 12]) {
            assert!(
                bands >= ranks,
                "default-sized indexes must have at least one band per rank \
                 (threshold={threshold}: {bands} bands < {ranks} ranks)"
            );
            let mut owned = vec![0usize; ranks];
            for band in 0..bands {
                owned[band_shard(band, ranks)] += 1;
            }
            assert!(
                owned.iter().all(|&c| c > 0),
                "ranks without bands on p={ranks}, threshold={threshold}: {owned:?}"
            );
        }
    }
}

#[test]
fn signature_sharding_splits_storage_across_the_grid_for_both_signers() {
    // Each rank of the dist-matrix grid must store ~n/p signature rows
    // (never the replicated matrix) while answering bit-identically to
    // the single-rank engine, under both signers.
    let collection = family_workload();
    let queries: Vec<Vec<u64>> =
        (0..collection.n()).step_by(7).map(|i| collection.sample(i).to_vec()).collect();
    for signer in [SignerKind::KMins, SignerKind::Oph] {
        let config =
            IndexConfig::default().with_signature_len(128).with_threshold(0.4).with_signer(signer);
        let index = IndexOptions::from_config(config).build_index(&collection).unwrap();
        let opts = QueryOptions { top_k: 6, rerank_exact: true, ..Default::default() };
        let reference =
            QueryEngine::with_collection(&index, &collection).query_batch(&queries, &opts).unwrap();
        for ranks in env_usize_list("GAS_DIST_RANKS", &[4, 6, 8]) {
            let out = Runtime::new(ranks)
                .run(|ctx| {
                    let q = if ctx.rank() == 0 { Some(&queries[..]) } else { None };
                    ctx.expect_ok(
                        "dist_query_batch_stats",
                        dist_query_batch_stats(ctx.world(), &index, Some(&collection), q, &opts),
                    )
                })
                .unwrap();
            let mut total_rows = 0usize;
            for (rank, (answers, stats)) in out.results.iter().enumerate() {
                assert_eq!(
                    answers, &reference,
                    "rank {rank}/{ranks} ({signer}): sharded answers diverge"
                );
                // ~n/p rows per rank, never the whole matrix.
                assert!(
                    stats.shard_rows <= index.n().div_ceil(ranks),
                    "rank {rank}/{ranks}: {} rows exceed the ⌈n/p⌉ shard",
                    stats.shard_rows
                );
                assert_eq!(stats.shard_bytes, stats.shard_rows * 128 * 8);
                assert_eq!(stats.replicated_bytes, index.n() * 128 * 8);
                if ranks > 1 {
                    assert!(
                        stats.shard_bytes * 2 < stats.replicated_bytes,
                        "rank {rank}/{ranks}: shard is not a real split"
                    );
                }
                total_rows += stats.shard_rows;
            }
            // The shards partition the matrix: rows sum to n exactly.
            assert_eq!(total_rows, index.n(), "p={ranks} ({signer})");
        }
    }
}

#[test]
fn signature_shards_cover_every_sample_exactly_once_on_ci_grids() {
    let collection = family_workload();
    let index = IndexOptions::from_config(IndexConfig::default().with_signature_len(64))
        .build_index(&collection)
        .unwrap();
    for ranks in env_usize_list("GAS_DIST_RANKS", &[4, 6, 8, 12]) {
        let shards: Vec<SignatureShard> =
            (0..ranks).map(|r| SignatureShard::build(&index, r, ranks)).collect();
        for id in 0..index.n() {
            let owner = sample_shard(id, ranks);
            assert_eq!(shards.iter().filter(|s| s.owns(id as u32)).count(), 1);
            assert_eq!(shards[owner].row(id as u32), index.signature(id).values());
        }
    }
}

/// Grow `collection` through the writer lifecycle as `segments`
/// near-equal commits, tombstoning each of `deletes` as soon as it is
/// committed — the uncompacted multi-segment snapshot the dist-matrix
/// serves.
fn grow_segmented(
    collection: &SampleCollection,
    config: &IndexConfig,
    segments: usize,
    deletes: &[u32],
) -> IndexWriter {
    let n = collection.n();
    let mut writer = IndexOptions::from_config(*config).open_writer().unwrap();
    let mut start = 0usize;
    for s in 0..segments {
        let end = start + (n - start) / (segments - s);
        for i in start..end {
            writer.add(collection.names()[i].clone(), collection.sample(i).to_vec()).unwrap();
        }
        writer.commit().unwrap();
        for &id in deletes {
            if id < writer.id_bound() && !writer.reader().is_deleted(id) {
                writer.delete(id).unwrap();
            }
        }
        writer.commit().unwrap();
        start = end;
    }
    writer
}

#[test]
fn segmented_reader_serves_bit_identically_across_the_grid() {
    // The lifecycle acceptance property, on the CI dist-matrix grid: an
    // incrementally grown index (`GAS_DIST_SEGMENTS` commits, two
    // deletes) must answer (1) bit-identically between the single-rank
    // multi-segment reader and the keyed sharded distributed path on
    // every rank count, and (2) bit-identically to a fresh monolithic
    // rebuild over the final live corpus (dense ids remapped through the
    // sorted live-id list, a strictly monotone bijection) — before and
    // after compaction, under both signers.
    let collection = family_workload();
    let n = collection.n();
    let deletes: Vec<u32> = vec![3, 17];
    let mut queries: Vec<Vec<u64>> =
        (0..n).step_by(6).map(|i| collection.sample(i).to_vec()).collect();
    queries.push(collection.sample(2).iter().copied().step_by(3).collect());
    queries.push(Vec::new());

    for signer in [SignerKind::KMins, SignerKind::Oph] {
        let config =
            IndexConfig::default().with_signature_len(128).with_threshold(0.4).with_signer(signer);
        for segments in env_usize_list("GAS_DIST_SEGMENTS", &[1, 3, 7]) {
            let mut writer = grow_segmented(&collection, &config, segments, &deletes);

            // The fresh-rebuild reference over the live corpus.
            let reader = writer.reader();
            let live = reader.live_ids();
            let final_collection = SampleCollection::from_sorted_sets(
                live.iter().map(|&id| collection.sample(id as usize).to_vec()).collect(),
            )
            .unwrap();
            let fresh = IndexOptions::from_config(config).build_index(&final_collection).unwrap();

            for compacted in [false, true] {
                if compacted {
                    writer.compact_all().unwrap();
                }
                let reader = writer.reader();
                assert_eq!(
                    reader.segments().len(),
                    if compacted { 1 } else { segments },
                    "{signer}"
                );
                for rerank in [false, true] {
                    let opts =
                        QueryOptions { top_k: 6, rerank_exact: rerank, ..Default::default() };
                    let reference =
                        QueryEngine::snapshot_with_collection(reader.clone(), &collection)
                            .query_batch(&queries, &opts)
                            .unwrap();
                    // (2): single-rank reader ≡ remapped fresh rebuild.
                    let fresh_answers = QueryEngine::with_collection(&fresh, &final_collection)
                        .query_batch(&queries, &opts)
                        .unwrap();
                    for (got, dense) in reference.iter().zip(&fresh_answers) {
                        let want: Vec<Neighbor> = dense
                            .iter()
                            .map(|m| Neighbor { id: live[m.id as usize], ..*m })
                            .collect();
                        assert_eq!(
                            got, &want,
                            "incremental reader diverges from rebuild \
                             (signer={signer}, segments={segments}, rerank={rerank}, \
                             compacted={compacted})"
                        );
                    }
                    // (1): every rank of every grid ≡ the single-rank reader.
                    for ranks in env_usize_list("GAS_DIST_RANKS", &[1, 4, 6, 8, 12]) {
                        let out = Runtime::new(ranks)
                            .run(|ctx| {
                                let q = if ctx.rank() == 0 { Some(&queries[..]) } else { None };
                                ctx.expect_ok(
                                    "dist_query_reader_batch",
                                    dist_query_reader_batch(
                                        ctx.world(),
                                        &reader,
                                        Some(&collection),
                                        q,
                                        &opts,
                                    ),
                                )
                            })
                            .unwrap();
                        for (rank, answers) in out.results.iter().enumerate() {
                            assert_eq!(
                                answers, &reference,
                                "rank {rank}/{ranks} (signer={signer}, segments={segments}, \
                                 rerank={rerank}, compacted={compacted}): segmented sharded \
                                 answers diverge"
                            );
                        }
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// The keyed single-exchange ships exactly what the per-segment
    /// exchange ships: identical top-k answers on every rank *and*
    /// identical total shipped row content (count, bytes and an
    /// order-insensitive content fingerprint — the wire framing is the
    /// only thing allowed to differ), across random segment layouts,
    /// random tombstones and both signers.
    #[test]
    fn keyed_exchange_equals_per_segment_exchange_on_random_layouts(
        splits in prop::collection::btree_set(1usize..30, 0..5),
        doomed in prop::collection::btree_set(0u32..30, 0..6),
        kmins in any::<bool>(),
        rerank in any::<bool>(),
    ) {
        let collection = family_workload();
        let n = collection.n();
        let signer = if kmins { SignerKind::KMins } else { SignerKind::Oph };
        let config =
            IndexConfig::default().with_signature_len(64).with_threshold(0.4).with_signer(signer);

        // Commit along the random split points, tombstoning doomed ids as
        // soon as they are committed (mid-stream, like a live writer).
        let deletes: Vec<u32> = doomed.into_iter().collect();
        let mut writer = IndexOptions::from_config(config).open_writer().unwrap();
        let mut start = 0usize;
        for end in splits.into_iter().chain(std::iter::once(n)) {
            for i in start..end {
                writer.add(collection.names()[i].clone(), collection.sample(i).to_vec()).unwrap();
            }
            writer.commit().unwrap();
            for &id in &deletes {
                if id < writer.id_bound() && !writer.reader().is_deleted(id) {
                    writer.delete(id).unwrap();
                }
            }
            writer.commit().unwrap();
            start = end;
        }
        let reader = writer.reader();

        let mut queries: Vec<Vec<u64>> =
            (0..n).step_by(9).map(|i| collection.sample(i).to_vec()).collect();
        queries.push(collection.sample(1).iter().copied().step_by(3).collect());
        queries.push(Vec::new());
        let opts = QueryOptions { top_k: 5, rerank_exact: rerank, ..Default::default() };
        let reference = QueryEngine::snapshot_with_collection(reader.clone(), &collection)
            .query_batch(&queries, &opts)
            .unwrap();

        for ranks in env_usize_list("GAS_DIST_RANKS", &[1, 4]) {
            let keyed = Runtime::new(ranks)
                .run(|ctx| {
                    let q = if ctx.rank() == 0 { Some(&queries[..]) } else { None };
                    ctx.expect_ok(
                        "keyed exchange",
                        dist_query_reader_batch_stats(
                            ctx.world(),
                            &reader,
                            Some(&collection),
                            q,
                            &opts,
                        ),
                    )
                })
                .unwrap();
            let legacy = Runtime::new(ranks)
                .run(|ctx| {
                    let q = if ctx.rank() == 0 { Some(&queries[..]) } else { None };
                    ctx.expect_ok(
                        "per-segment exchange",
                        dist_query_reader_batch_stats_per_segment(
                            ctx.world(),
                            &reader,
                            Some(&collection),
                            q,
                            &opts,
                        ),
                    )
                })
                .unwrap();
            let segments = reader.segments().len();
            for (rank, ((ka, ks), (la, ls))) in
                keyed.results.iter().zip(&legacy.results).enumerate()
            {
                prop_assert_eq!(
                    ka, &reference,
                    "keyed diverges (p={}, rank={}, segments={})", ranks, rank, segments
                );
                prop_assert_eq!(
                    la, &reference,
                    "legacy diverges (p={}, rank={}, segments={})", ranks, rank, segments
                );
                prop_assert_eq!(ks.fetched_rows, ls.fetched_rows);
                prop_assert_eq!(ks.fetched_bytes, ls.fetched_bytes);
                prop_assert_eq!(ks.fetched_fingerprint, ls.fetched_fingerprint);
                prop_assert_eq!(&ks.per_segment, &ls.per_segment);
                // The budget: constant for keyed, linear for per-segment.
                let base = if rerank { 4 } else { 3 };
                prop_assert_eq!(ks.collective_calls, base + 2);
                prop_assert_eq!(ls.collective_calls, base + 2 * segments);
            }
        }
    }

    /// The planned mixed-placement path answers bit-identically to both
    /// the single-rank engine and the pure band-sharded keyed path,
    /// across random commit layouts × random placements × both signers ×
    /// both rerank modes — and replicated segments never fetch a row
    /// over the wire.
    #[test]
    fn planned_mixed_placement_equals_single_rank_and_pure_sharding(
        splits in prop::collection::btree_set(1usize..30, 0..5),
        placement_bits in prop::collection::vec(any::<bool>(), 1..12),
        kmins in any::<bool>(),
        rerank in any::<bool>(),
    ) {
        let collection = family_workload();
        let n = collection.n();
        let signer = if kmins { SignerKind::KMins } else { SignerKind::Oph };
        let config =
            IndexConfig::default().with_signature_len(64).with_threshold(0.4).with_signer(signer);

        let mut writer = IndexOptions::from_config(config).open_writer().unwrap();
        let mut start = 0usize;
        for end in splits.into_iter().chain(std::iter::once(n)) {
            for i in start..end {
                writer.add(collection.names()[i].clone(), collection.sample(i).to_vec()).unwrap();
            }
            writer.commit().unwrap();
            start = end;
        }
        let reader = writer.reader();
        let segments = reader.segments().len();
        let placements: Vec<SegmentPlacement> = (0..segments)
            .map(|i| {
                if placement_bits[i % placement_bits.len()] {
                    SegmentPlacement::Replicated
                } else {
                    SegmentPlacement::Sharded
                }
            })
            .collect();

        let mut queries: Vec<Vec<u64>> =
            (0..n).step_by(9).map(|i| collection.sample(i).to_vec()).collect();
        queries.push(collection.sample(1).iter().copied().step_by(3).collect());
        queries.push(Vec::new());
        let opts = QueryOptions { top_k: 5, rerank_exact: rerank, ..Default::default() };
        let reference = QueryEngine::snapshot_with_collection(reader.clone(), &collection)
            .query_batch(&queries, &opts)
            .unwrap();

        for ranks in env_usize_list("GAS_DIST_RANKS", &[1, 4]) {
            let planned_out = Runtime::new(ranks)
                .run(|ctx| {
                    let (planned, install) = ctx.expect_ok(
                        "install placement",
                        install_placement(ctx.world(), &reader, &placements, None),
                    );
                    let q = if ctx.rank() == 0 { Some(&queries[..]) } else { None };
                    let (answers, stats) = ctx.expect_ok(
                        "planned batch",
                        dist_query_reader_batch_planned(
                            ctx.world(),
                            &reader,
                            Some(&collection),
                            q,
                            &opts,
                            &planned,
                        ),
                    );
                    (answers, stats, install)
                })
                .unwrap();
            let sharded_out = Runtime::new(ranks)
                .run(|ctx| {
                    let q = if ctx.rank() == 0 { Some(&queries[..]) } else { None };
                    ctx.expect_ok(
                        "pure band-sharded batch",
                        dist_query_reader_batch_stats(
                            ctx.world(),
                            &reader,
                            Some(&collection),
                            q,
                            &opts,
                        ),
                    )
                })
                .unwrap();
            for (rank, ((pa, ps, install), (sa, _))) in
                planned_out.results.iter().zip(&sharded_out.results).enumerate()
            {
                prop_assert_eq!(
                    pa, &reference,
                    "planned diverges from single-rank (p={}, rank={}, segments={}, \
                     placements={:?})", ranks, rank, segments, &placements
                );
                prop_assert_eq!(
                    sa, pa,
                    "pure sharding diverges from planned (p={}, rank={})", ranks, rank
                );
                prop_assert_eq!(install.collective_calls, 1);
                prop_assert_eq!(ps.collective_calls, if rerank { 6 } else { 5 });
                for (seg_idx, seg) in ps.per_segment.iter().enumerate() {
                    prop_assert_eq!(seg.owned_rows + seg.fetched_rows, seg.candidate_rows);
                    if placements[seg_idx] == SegmentPlacement::Replicated {
                        prop_assert_eq!(
                            seg.fetched_rows, 0,
                            "replicated segment {} fetched rows over the wire", seg_idx
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn persisted_index_serves_identically_to_the_built_one() {
    // The full serving loop of the README: build → persist → load →
    // serve, sharded. Answers from the loaded index must match answers
    // from the freshly built one.
    let collection = family_workload();
    let index = IndexOptions::from_config(IndexConfig::default().with_signature_len(64))
        .build_index(&collection)
        .unwrap();
    let loaded = SketchIndex::from_container_bytes(index.to_container_bytes()).unwrap();
    let queries: Vec<Vec<u64>> = (0..4).map(|i| collection.sample(i * 7).to_vec()).collect();
    let opts = QueryOptions { top_k: 5, rerank_exact: true, ..Default::default() };

    let built_answers =
        QueryEngine::with_collection(&index, &collection).query_batch(&queries, &opts).unwrap();
    let ranks = *env_usize_list("GAS_DIST_RANKS", &[4]).first().unwrap_or(&4);
    let out = Runtime::new(ranks)
        .run(|ctx| {
            let q = if ctx.rank() == 0 { Some(&queries[..]) } else { None };
            ctx.expect_ok(
                "dist_query_batch over loaded index",
                dist_query_batch(ctx.world(), &loaded, Some(&collection), q, &opts),
            )
        })
        .unwrap();
    for answers in &out.results {
        assert_eq!(answers, &built_answers);
    }
}
