//! Property tests of the zero-row filter: the bitmap formulation must be
//! indistinguishable from the index-based one — identical kept-row sets
//! and identical compacted remaps — for arbitrary sparsity patterns, both
//! locally and through the distributed collectives.

use genomeatscale::dstsim::runtime::Runtime;
use genomeatscale::sparse::bitmat::{bitmap_rows, pack_row_bitmap};
use genomeatscale::sparse::dist::filter::{dist_row_filter, dist_row_filter_indexed, RowFilter};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn bitmap_and_index_filters_agree_locally(
        batch_rows in 1usize..3000,
        raw in prop::collection::vec(0usize..4000, 0..400),
    ) {
        // Indices may exceed batch_rows: both constructions must clip.
        let indexed = RowFilter::from_local(batch_rows, raw.clone());
        let bitmap_words = pack_row_bitmap(batch_rows, &raw);
        let bitmap = RowFilter::from_bitmap(batch_rows, &bitmap_words);
        prop_assert_eq!(&bitmap, &indexed);
        prop_assert_eq!(bitmap_rows(&bitmap_words), indexed.nonzero_rows().to_vec());
        // The remap agrees entry for entry across the whole batch.
        for row in 0..batch_rows {
            prop_assert_eq!(bitmap.compacted_index(row), indexed.compacted_index(row));
        }
        prop_assert_eq!(bitmap.fingerprint(), indexed.fingerprint());
    }

    #[test]
    fn bitmap_and_index_filters_agree_distributed(
        batch_rows in 1usize..1200,
        seed in 0u64..1_000_000,
        nranks in 1usize..7,
    ) {
        // Deterministic per-rank row sets with overlapping coverage.
        let local = |rank: usize| -> Vec<usize> {
            (0..64)
                .map(|i| ((seed as usize).wrapping_add(i * 31 + rank * 17) * 7919) % (batch_rows * 2))
                .collect()
        };
        let bitmap = Runtime::new(nranks)
            .run(|ctx| dist_row_filter(ctx.world(), batch_rows, &local(ctx.rank())).unwrap())
            .unwrap();
        let indexed = Runtime::new(nranks)
            .run(|ctx| dist_row_filter_indexed(ctx.world(), batch_rows, &local(ctx.rank())).unwrap())
            .unwrap();
        prop_assert_eq!(&bitmap.results, &indexed.results);
        // Every rank holds the identical filter.
        for f in &bitmap.results {
            prop_assert_eq!(f, &bitmap.results[0]);
        }
    }
}
