//! Observability integration: the instrumented serving stack must leave
//! a well-formed trace — phase spans for one paged query batch nest
//! inside the request span and their durations sum within it — and the
//! exporters must round-trip: Prometheus text re-parses to the exact
//! snapshot, the JSON exports parse with the same strict
//! `gas_bench::report::read_json_rows` reader the trend gate uses, and
//! the distributed path's trace carries the simulator's predicted cost
//! next to measured wall-clock for every collective phase.

use std::sync::{Mutex, MutexGuard};

use gas_bench::report::read_json_rows;
use genomeatscale::obs;
use genomeatscale::prelude::*;

/// Tests toggle the process-global tracer, so they must not interleave:
/// each takes this gate, then starts from an empty trace.
static GATE: Mutex<()> = Mutex::new(());

fn tracing_session() -> MutexGuard<'static, ()> {
    let guard = GATE.lock().unwrap_or_else(|e| e.into_inner());
    obs::set_enabled(true);
    obs::clear();
    guard
}

/// A small family-structured corpus: clear nearest neighbors, non-trivial
/// in-family ranking.
fn family_collection() -> SampleCollection {
    let mut samples = Vec::new();
    for f in 0..4u64 {
        let core: Vec<u64> = (f * 50_000..f * 50_000 + 300).collect();
        for m in 0..6u64 {
            let mut s = core.clone();
            s.extend(f * 50_000 + 25_000 + m * 40..f * 50_000 + 25_000 + m * 40 + 40);
            samples.push(s);
        }
    }
    SampleCollection::from_sets(samples).expect("synthetic corpus is valid")
}

fn config() -> IndexConfig {
    IndexConfig::default().with_signature_len(128).with_threshold(0.4).with_signer(SignerKind::Oph)
}

#[test]
fn paged_query_spans_nest_and_sum_within_the_request() {
    let _gate = tracing_session();
    let collection = family_collection();
    let index = IndexOptions::from_config(config()).build_index(&collection).expect("build");
    let engine = QueryEngine::with_collection(&index, &collection);
    let probes: Vec<Vec<u64>> = (0..3).map(|i| collection.sample(i * 7).to_vec()).collect();
    let pages = engine
        .query_page_batch(&probes, &PageRequest::new(5).with_rerank(true))
        .expect("paged query batch");
    assert_eq!(pages.len(), probes.len());
    obs::set_enabled(false);
    let events = obs::take_events();

    let roots: Vec<_> = events.iter().filter(|e| e.depth == 0 && e.name == "query_page").collect();
    assert_eq!(roots.len(), probes.len(), "one request span per probe");
    for root in &roots {
        let root_end = root.start_ns + root.dur_ns;
        let children: Vec<_> = events
            .iter()
            .filter(|e| {
                e.thread == root.thread
                    && e.depth == 1
                    && e.stack.starts_with("query_page;")
                    && e.start_ns >= root.start_ns
                    && e.start_ns + e.dur_ns <= root_end
            })
            .collect();
        for phase in ["probe", "score", "rerank", "merge"] {
            assert!(
                children.iter().any(|e| e.name == phase),
                "request span must contain a {phase} span"
            );
        }
        let child_total: u64 = children.iter().map(|e| e.dur_ns).sum();
        assert!(
            child_total <= root.dur_ns,
            "phase spans ({child_total} ns) must sum within the request span ({} ns)",
            root.dur_ns
        );
    }
}

#[test]
fn exports_round_trip_through_prometheus_and_the_report_reader() {
    let _gate = tracing_session();
    obs::reset_metrics();
    let collection = family_collection();
    let service =
        IndexOptions::from_config(config()).with_auto_compact(false).serve().expect("serve");
    service
        .add_batch(
            (0..collection.n()).map(|i| (format!("s{i}"), collection.sample(i).to_vec())).collect(),
        )
        .expect("stage");
    service.commit_wait().expect("seal");
    let probe = collection.sample(0).to_vec();
    service.query_paged(std::slice::from_ref(&probe), &PageRequest::new(4)).expect("page");
    let telemetry = service.telemetry();
    obs::set_enabled(false);
    let events = obs::take_events();
    assert!(!events.is_empty(), "the served workload must leave a trace");

    // Prometheus text is a strict round-trip of the snapshot.
    let reparsed = obs::parse_prometheus(&obs::to_prometheus(&telemetry)).expect("prom parses");
    assert_eq!(reparsed, telemetry);
    assert!(telemetry.counter("gas_serve_commit_completed_total").unwrap_or(0) >= 1);

    // Both JSON exports parse with the same strict reader the trend gate
    // uses on bench reports.
    let dir = std::env::temp_dir();
    let trace_path = dir.join(format!("obs_trace_{}.json", std::process::id()));
    std::fs::write(&trace_path, trace_to_json(&events)).expect("write trace json");
    let rows = read_json_rows(&trace_path).expect("trace json parses");
    assert_eq!(rows.len(), events.len());
    for row in &rows {
        for col in ["thread", "phase", "name", "stack", "depth", "start_ns", "dur_ns"] {
            assert!(row.iter().any(|(h, _)| h == col), "trace rows carry a {col} column");
        }
    }
    std::fs::remove_file(&trace_path).ok();

    let metrics_path = dir.join(format!("obs_metrics_{}.json", std::process::id()));
    std::fs::write(&metrics_path, obs::metrics_to_json(&telemetry)).expect("write metrics json");
    let rows = read_json_rows(&metrics_path).expect("metrics json parses");
    assert_eq!(
        rows.len(),
        telemetry.counters.len() + telemetry.gauges.len() + telemetry.histograms.len()
    );
    std::fs::remove_file(&metrics_path).ok();
}

#[test]
fn dist_trace_carries_predicted_next_to_measured_cost() {
    let _gate = tracing_session();
    let collection = family_collection();
    let index = IndexOptions::from_config(config()).build_index(&collection).expect("build");
    let probes: Vec<Vec<u64>> = (0..2).map(|i| collection.sample(i * 5).to_vec()).collect();
    let opts = QueryOptions { top_k: 5, rerank_exact: true, ..Default::default() };
    Runtime::new(2)
        .run(|ctx| {
            let q = if ctx.rank() == 0 { Some(&probes[..]) } else { None };
            ctx.expect_ok(
                "dist batch",
                dist_query_batch_stats(ctx.world(), &index, Some(&collection), q, &opts),
            )
        })
        .expect("distributed run");
    obs::set_enabled(false);
    let events = obs::take_events();

    // The dist driver wraps its phases in spans on every rank...
    for phase in ["bcast", "exchange", "merge"] {
        assert!(
            events.iter().any(|e| e.phase == "dist" && e.name == phase),
            "dist trace must contain a {phase} phase span"
        );
    }
    // ...and every collective span underneath carries the simulator's
    // predicted cost, so the per-phase report compares both columns.
    let report = collective_cost_report(&events);
    assert!(!report.is_empty(), "collective spans must be present");
    for cost in &report {
        assert!(cost.calls > 0);
        assert!(cost.measured_us > 0.0, "{}: measured time must be positive", cost.name);
        assert!(cost.predicted_us > 0.0, "{}: predicted time must be positive", cost.name);
    }
    let rendered = render_collective_costs(&report);
    assert!(rendered.contains("predicted_us") && rendered.contains("measured_us"));
}
