//! Property tests of the one-permutation-hashing signer: its Jaccard
//! estimator must agree with exact Jaccard within the same tolerance as
//! the classical k-mins signer, densification must handle degenerate
//! (empty / singleton) sets, and a persisted index must reject queries
//! signed under a different signer with a typed error.

use genomeatscale::core::minhash::{SignatureScheme, SignerKind, EMPTY_SET_SENTINEL};
use genomeatscale::index::IndexError;
use genomeatscale::prelude::*;
use proptest::prelude::*;

/// Exact Jaccard of two sorted, deduplicated slices.
fn exact_jaccard(a: &[u64], b: &[u64]) -> f64 {
    let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - inter;
    if union == 0 {
        return 1.0;
    }
    inter as f64 / union as f64
}

fn sets(min: usize, max: usize) -> impl Strategy<Value = Vec<u64>> {
    prop::collection::btree_set(0u64..4_096, min..max)
        .prop_map(|s| s.into_iter().collect::<Vec<u64>>())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn oph_estimate_matches_exact_within_the_kmins_tolerance(
        a in sets(150, 400),
        b in sets(150, 400),
        seed in 0u64..1_000,
    ) {
        // Sets larger than the bin count, so OPH fills nearly every bin
        // with a genuine minimum and its estimator variance matches the
        // k-mins binomial variance. One shared tolerance — ~5.7 binomial
        // standard deviations at len = 128 — gates both signers.
        const LEN: usize = 128;
        const TOL: f64 = 0.25;
        let truth = exact_jaccard(&a, &b);
        for kind in [SignerKind::KMins, SignerKind::Oph] {
            let scheme = SignatureScheme::new(LEN).unwrap().with_seed(seed).with_kind(kind);
            let est = scheme.sign(&a).jaccard_estimate(&scheme.sign(&b));
            prop_assert!(
                (est - truth).abs() < TOL,
                "{kind}: estimate {est:.4} vs exact {truth:.4} (seed {seed})"
            );
        }
    }

    #[test]
    fn oph_densification_handles_degenerate_sets(
        values in sets(0, 6),
        len in 8usize..100,
        seed in 0u64..1_000,
    ) {
        // Sets far smaller than the bin count leave most bins empty —
        // the regime densification exists for.
        let scheme = SignatureScheme::new(len).unwrap().with_seed(seed).with_kind(SignerKind::Oph);
        let sig = scheme.sign(&values);
        prop_assert_eq!(sig.len(), len);
        if values.is_empty() {
            // Empty set: the sentinel everywhere, J(∅, ∅) = 1.
            prop_assert!(sig.values().iter().all(|&v| v == EMPTY_SET_SENTINEL));
            prop_assert_eq!(sig.jaccard_estimate(&sig), 1.0);
        } else {
            // Non-empty set: densification leaves no empty bin behind,
            // and every position holds the min-hash of some element.
            prop_assert!(sig.values().iter().all(|&v| v != EMPTY_SET_SENTINEL));
            prop_assert_eq!(sig.jaccard_estimate(&sig), 1.0);
            // An empty set never aliases a non-empty one.
            let empty = scheme.sign(&[]);
            prop_assert_eq!(sig.agreement(&empty), 0);
        }
        if values.len() == 1 {
            // Singleton: one filled bin rotated into every position.
            prop_assert!(sig.values().iter().all(|&v| v == sig.values()[0]));
            // Identical singleton signs identically; a disjoint one (a
            // value outside the strategy's universe) collides nowhere.
            prop_assert_eq!(sig.jaccard_estimate(&scheme.sign(&values)), 1.0);
            prop_assert_eq!(sig.jaccard_estimate(&scheme.sign(&[1 << 40])), 0.0);
        }
    }

    #[test]
    fn persisted_indexes_reject_mismatched_query_signers(
        samples in prop::collection::vec(sets(10, 80), 2..8),
        oph_first in any::<bool>(),
        signature_len in 8usize..65,
    ) {
        let (index_kind, query_kind) = if oph_first {
            (SignerKind::Oph, SignerKind::KMins)
        } else {
            (SignerKind::KMins, SignerKind::Oph)
        };
        let collection = SampleCollection::from_sorted_sets(samples).unwrap();
        let config = IndexConfig::default()
            .with_signature_len(signature_len)
            .with_signer(index_kind);
        let index = IndexOptions::from_config(config).build_index(&collection).unwrap();

        // Round-trip through the container: the signer record survives.
        let loaded = SketchIndex::from_container_bytes(index.to_container_bytes()).unwrap();
        prop_assert_eq!(&loaded, &index);
        prop_assert_eq!(loaded.scheme().kind(), index_kind);

        let engine = QueryEngine::new(&loaded);
        let opts = QueryOptions { top_k: 3, ..Default::default() };
        let values = collection.sample(0);

        // A query signed under the index's own scheme is served and
        // answers exactly like inline signing ...
        let good_sig = loaded.scheme().sign(values);
        let served = engine.query_presigned(loaded.scheme(), &good_sig, &opts).unwrap();
        prop_assert_eq!(&served, &engine.query(values, &opts).unwrap());

        // ... while the other signer (same length, same seed) is turned
        // away with the typed mismatch error, not garbage answers.
        let wrong_scheme = loaded.scheme().with_kind(query_kind);
        let wrong_sig = wrong_scheme.sign(values);
        prop_assert!(matches!(
            engine.query_presigned(&wrong_scheme, &wrong_sig, &opts),
            Err(IndexError::SignerMismatch { .. })
        ));
    }
}

#[test]
fn signer_choice_changes_signatures_but_not_serving_quality() {
    // The two signers are different hash families (different signature
    // bytes) over the same statistic: on a family-structured workload
    // both must put a sample's own family at the top.
    let mut samples = Vec::new();
    for f in 0..3u64 {
        let core: Vec<u64> = (f * 10_000..f * 10_000 + 300).collect();
        for m in 0..4u64 {
            let mut s = core.clone();
            s.extend(f * 10_000 + 5_000 + m * 20..f * 10_000 + 5_000 + m * 20 + 20);
            samples.push(s);
        }
    }
    let collection = SampleCollection::from_sets(samples).unwrap();
    let mut per_signer_answers = Vec::new();
    for kind in [SignerKind::KMins, SignerKind::Oph] {
        let config =
            IndexConfig::default().with_signature_len(128).with_threshold(0.4).with_signer(kind);
        let index = IndexOptions::from_config(config).build_index(&collection).unwrap();
        let engine = QueryEngine::with_collection(&index, &collection);
        let opts = QueryOptions { top_k: 4, rerank_exact: true, ..Default::default() };
        for id in 0..collection.n() {
            let got = engine.query(collection.sample(id), &opts).unwrap();
            assert_eq!(got[0].id, id as u32, "{kind}: sample {id} not its own best match");
            let family = (id / 4) * 4;
            for n in &got {
                assert!(
                    (family..family + 4).contains(&(n.id as usize)),
                    "{kind}: sample {id} matched outside its family: {got:?}"
                );
            }
        }
        per_signer_answers.push(index.signature(0).values().to_vec());
    }
    assert_ne!(
        per_signer_answers[0], per_signer_answers[1],
        "k-mins and OPH must be distinct hash families"
    );
}
