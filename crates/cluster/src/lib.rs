//! # gas-cluster — downstream consumers of Jaccard distance matrices
//!
//! The paper motivates exact all-pairs Jaccard matrices by what is built
//! on top of them (Sections II-B through II-G and Fig. 1, steps 7–9):
//! clustering samples, constructing phylogenetic/guide trees, detecting
//! anomalous samples, and re-using the same machinery for graph-vertex and
//! document similarity. This crate implements those downstream
//! applications so the examples and experiments can run the full pipeline
//! end-to-end:
//!
//! * [`hierarchical`] — agglomerative clustering (single / complete /
//!   average-UPGMA linkage) over a distance matrix;
//! * [`nj`] — neighbor-joining tree construction with Newick output (the
//!   guide trees used for multiple sequence alignment);
//! * [`kmedoids`] — k-medoids partitioning (the k-means-style use of the
//!   Jaccard distance on categorical data);
//! * [`outlier`] — proximity-based anomaly detection;
//! * [`graph`] — the vertex-neighborhood framing of Table III;
//! * [`documents`] — the word-set framing of Table III.

pub mod documents;
pub mod error;
pub mod graph;
pub mod hierarchical;
pub mod kmedoids;
pub mod nj;
pub mod outlier;

pub use error::{ClusterError, ClusterResult};
pub use hierarchical::{hierarchical_cluster, Dendrogram, Linkage};
pub use kmedoids::k_medoids;
pub use nj::{neighbor_joining, PhyloTree};
pub use outlier::knn_outlier_scores;
