//! Agglomerative hierarchical clustering over a distance matrix.
//!
//! The Jaccard distance is a metric, so it plugs directly into standard
//! hierarchical clustering (Section II-C). Average linkage over a Jaccard
//! distance matrix is the classic way to group sequencing samples before
//! joint analysis (Fig. 1, step 7).

use gas_sparse::dense::DenseMatrix;
use serde::{Deserialize, Serialize};

use crate::error::{validate_distance_matrix, ClusterError, ClusterResult};

/// Linkage criterion for merging clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Linkage {
    /// Minimum pairwise distance between members.
    Single,
    /// Maximum pairwise distance between members.
    Complete,
    /// Unweighted average pairwise distance (UPGMA).
    Average,
}

/// One merge step of the dendrogram: clusters `a` and `b` (indices into
/// the node numbering where leaves are `0..n` and the i-th merge creates
/// node `n + i`) joined at the given linkage distance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Merge {
    /// First merged node id.
    pub a: usize,
    /// Second merged node id.
    pub b: usize,
    /// Linkage distance at which the merge happened.
    pub distance: f64,
    /// Number of leaves under the new node.
    pub size: usize,
}

/// The result of hierarchical clustering: a sequence of `n − 1` merges.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dendrogram {
    n_leaves: usize,
    merges: Vec<Merge>,
}

impl Dendrogram {
    /// Number of observations (leaves).
    pub fn n_leaves(&self) -> usize {
        self.n_leaves
    }

    /// The merge steps in the order they happened.
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// Cut the dendrogram into `k` clusters and return a cluster label per
    /// leaf (labels are `0..k` in order of first appearance).
    pub fn cut(&self, k: usize) -> ClusterResult<Vec<usize>> {
        let n = self.n_leaves;
        if k == 0 || k > n {
            return Err(ClusterError::InvalidParameter(format!(
                "cannot cut {n} leaves into {k} clusters"
            )));
        }
        // Apply the first n - k merges with a union-find structure.
        let mut parent: Vec<usize> = (0..2 * n - 1).map(|_| usize::MAX).collect();
        fn find(parent: &[usize], mut x: usize) -> usize {
            while parent[x] != usize::MAX {
                x = parent[x];
            }
            x
        }
        for (i, m) in self.merges.iter().take(n - k).enumerate() {
            let new_node = n + i;
            let root_a = find(&parent, m.a);
            parent[root_a] = new_node;
            let root_b = find(&parent, m.b);
            parent[root_b] = new_node;
        }
        let mut labels = vec![usize::MAX; n];
        let mut next = 0usize;
        let mut root_label: std::collections::HashMap<usize, usize> = Default::default();
        for (leaf, slot) in labels.iter_mut().enumerate() {
            let root = find(&parent, leaf);
            let label = *root_label.entry(root).or_insert_with(|| {
                let l = next;
                next += 1;
                l
            });
            *slot = label;
        }
        Ok(labels)
    }

    /// The distance at which the last merge happened (the tree height).
    pub fn height(&self) -> f64 {
        self.merges.last().map(|m| m.distance).unwrap_or(0.0)
    }
}

/// Cluster the observations described by the symmetric distance matrix
/// `dist` with the given linkage. Runs in `O(n³)` time which is ample for
/// the sample counts a distance matrix can hold in memory.
pub fn hierarchical_cluster(
    dist: &DenseMatrix<f64>,
    linkage: Linkage,
) -> ClusterResult<Dendrogram> {
    validate_distance_matrix(dist)?;
    let n = dist.nrows();
    // Active cluster state: node id, member leaves, and a working
    // distance row to all other active clusters.
    let mut active: Vec<usize> = (0..n).collect(); // node ids
    let mut members: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    let mut d: Vec<Vec<f64>> = (0..n).map(|i| dist.row(i).to_vec()).collect();
    let mut merges = Vec::with_capacity(n.saturating_sub(1));
    let mut next_node = n;

    while active.len() > 1 {
        // Find the closest pair of active clusters.
        let (mut bi, mut bj, mut best) = (0usize, 1usize, f64::INFINITY);
        #[allow(clippy::needless_range_loop)] // triangular sweep over a symmetric matrix
        for i in 0..active.len() {
            for j in (i + 1)..active.len() {
                if d[i][j] < best {
                    best = d[i][j];
                    bi = i;
                    bj = j;
                }
            }
        }
        let (lo, hi) = (bi.min(bj), bi.max(bj));
        let new_members: Vec<usize> =
            members[lo].iter().chain(members[hi].iter()).copied().collect();
        merges.push(Merge {
            a: active[lo],
            b: active[hi],
            distance: best,
            size: new_members.len(),
        });
        // Compute distances of the merged cluster to the remaining ones.
        let size_lo = members[lo].len() as f64;
        let size_hi = members[hi].len() as f64;
        let mut new_row = Vec::with_capacity(active.len() - 1);
        #[allow(clippy::needless_range_loop)] // k indexes both rows and columns of d
        for k in 0..active.len() {
            if k == lo || k == hi {
                continue;
            }
            let v = match linkage {
                Linkage::Single => d[lo][k].min(d[hi][k]),
                Linkage::Complete => d[lo][k].max(d[hi][k]),
                Linkage::Average => (size_lo * d[lo][k] + size_hi * d[hi][k]) / (size_lo + size_hi),
            };
            new_row.push(v);
        }
        // Remove hi then lo (hi > lo) from all state, then append the new
        // cluster.
        for row in d.iter_mut() {
            row.remove(hi);
            row.remove(lo);
        }
        d.remove(hi);
        d.remove(lo);
        active.remove(hi);
        active.remove(lo);
        members.remove(hi);
        members.remove(lo);
        for (row, &v) in d.iter_mut().zip(new_row.iter()) {
            row.push(v);
        }
        let mut full_new_row = new_row;
        full_new_row.push(0.0);
        d.push(full_new_row);
        active.push(next_node);
        members.push(new_members);
        next_node += 1;
    }
    Ok(Dendrogram { n_leaves: n, merges })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two tight groups {0,1} and {2,3}, far apart.
    fn two_groups() -> DenseMatrix<f64> {
        DenseMatrix::from_vec(
            4,
            4,
            vec![
                0.0, 0.1, 0.9, 0.8, //
                0.1, 0.0, 0.85, 0.9, //
                0.9, 0.85, 0.0, 0.05, //
                0.8, 0.9, 0.05, 0.0,
            ],
        )
        .unwrap()
    }

    #[test]
    fn merges_have_monotone_sizes_and_count() {
        let dend = hierarchical_cluster(&two_groups(), Linkage::Average).unwrap();
        assert_eq!(dend.n_leaves(), 4);
        assert_eq!(dend.merges().len(), 3);
        assert_eq!(dend.merges().last().unwrap().size, 4);
        assert!(dend.height() > 0.0);
    }

    #[test]
    fn cut_recovers_the_two_groups() {
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let dend = hierarchical_cluster(&two_groups(), linkage).unwrap();
            let labels = dend.cut(2).unwrap();
            assert_eq!(labels[0], labels[1], "{linkage:?}");
            assert_eq!(labels[2], labels[3], "{linkage:?}");
            assert_ne!(labels[0], labels[2], "{linkage:?}");
        }
    }

    #[test]
    fn cut_extremes() {
        let dend = hierarchical_cluster(&two_groups(), Linkage::Average).unwrap();
        let all_separate = dend.cut(4).unwrap();
        assert_eq!(all_separate, vec![0, 1, 2, 3]);
        let all_together = dend.cut(1).unwrap();
        assert!(all_together.iter().all(|&l| l == 0));
        assert!(dend.cut(0).is_err());
        assert!(dend.cut(5).is_err());
    }

    #[test]
    fn single_observation() {
        let d = DenseMatrix::from_vec(1, 1, vec![0.0]).unwrap();
        let dend = hierarchical_cluster(&d, Linkage::Single).unwrap();
        assert_eq!(dend.merges().len(), 0);
        assert_eq!(dend.cut(1).unwrap(), vec![0]);
        assert_eq!(dend.height(), 0.0);
    }

    #[test]
    fn linkages_differ_on_chained_data() {
        // A chain 0 - 1 - 2 - 3 where single linkage merges everything at
        // 0.3 but complete linkage sees larger inter-cluster distances.
        let d = DenseMatrix::from_vec(
            4,
            4,
            vec![
                0.0, 0.3, 0.6, 0.9, //
                0.3, 0.0, 0.3, 0.6, //
                0.6, 0.3, 0.0, 0.3, //
                0.9, 0.6, 0.3, 0.0,
            ],
        )
        .unwrap();
        let single = hierarchical_cluster(&d, Linkage::Single).unwrap();
        let complete = hierarchical_cluster(&d, Linkage::Complete).unwrap();
        assert!(single.height() < complete.height());
        assert!((single.height() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn invalid_matrices_are_rejected() {
        let bad = DenseMatrix::<f64>::zeros(2, 3);
        assert!(hierarchical_cluster(&bad, Linkage::Average).is_err());
    }
}
