//! Graph-analytics framing of the Jaccard machinery (Sections II-F,
//! III-D, Table III).
//!
//! Vertex similarity `|N(v) ∩ N(u)| / |N(v) ∪ N(u)|` is the Jaccard
//! similarity of neighborhood sets, so the SimilarityAtScale pipeline
//! applies unchanged: each vertex's neighbor list becomes one "sample"
//! (one column of the indicator matrix, whose rows are vertex ids). This
//! module provides the conversion plus small reference utilities (direct
//! vertex similarity, Jarvis–Patrick style shared-neighbor clustering,
//! and missing-link scoring) used by the graph example and tests.

use crate::error::{ClusterError, ClusterResult};

/// An undirected graph given as adjacency lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdjacencyGraph {
    adj: Vec<Vec<usize>>,
}

impl AdjacencyGraph {
    /// Build from adjacency lists (deduplicated and sorted; self-loops
    /// removed; symmetry enforced by adding the reverse of every edge).
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> ClusterResult<Self> {
        let mut adj = vec![Vec::new(); n];
        for &(u, v) in edges {
            if u >= n || v >= n {
                return Err(ClusterError::InvalidParameter(format!(
                    "edge ({u}, {v}) outside a graph of {n} vertices"
                )));
            }
            if u == v {
                continue;
            }
            adj[u].push(v);
            adj[v].push(u);
        }
        for list in adj.iter_mut() {
            list.sort_unstable();
            list.dedup();
        }
        Ok(AdjacencyGraph { adj })
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.adj.len()
    }

    /// Neighbors of vertex `v` (sorted).
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adj[v]
    }

    /// Convert the neighborhoods into "samples" for the SimilarityAtScale
    /// pipeline: one sorted `u64` set per vertex (Table III's framing:
    /// one row of `A` per vertex id, one column per vertex neighborhood).
    pub fn neighborhood_sets(&self) -> Vec<Vec<u64>> {
        self.adj.iter().map(|ns| ns.iter().map(|&v| v as u64).collect()).collect()
    }

    /// Direct (reference) Jaccard similarity of two vertices'
    /// neighborhoods.
    pub fn vertex_similarity(&self, u: usize, v: usize) -> f64 {
        let a = &self.adj[u];
        let b = &self.adj[v];
        let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    inter += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        let union = a.len() + b.len() - inter;
        if union == 0 {
            1.0
        } else {
            inter as f64 / union as f64
        }
    }

    /// Jarvis–Patrick style grouping: two vertices belong to the same
    /// cluster when their neighborhood similarity is at least
    /// `threshold` (transitively closed). Returns a cluster label per
    /// vertex.
    pub fn jarvis_patrick(&self, threshold: f64) -> Vec<usize> {
        let n = self.n();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        for u in 0..n {
            for v in (u + 1)..n {
                if self.vertex_similarity(u, v) >= threshold {
                    let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
                    if ru != rv {
                        parent[ru] = rv;
                    }
                }
            }
        }
        // Relabel roots densely.
        let mut labels = vec![usize::MAX; n];
        let mut next = 0;
        for v in 0..n {
            let r = find(&mut parent, v);
            if labels[r] == usize::MAX {
                labels[r] = next;
                next += 1;
            }
            labels[v] = labels[r];
        }
        labels
    }

    /// Score all non-edges by neighborhood similarity — the
    /// missing-link-discovery use case. Returns `(u, v, score)` sorted by
    /// descending score.
    pub fn missing_link_scores(&self) -> Vec<(usize, usize, f64)> {
        let n = self.n();
        let mut scores = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                if self.adj[u].binary_search(&v).is_err() {
                    let s = self.vertex_similarity(u, v);
                    if s > 0.0 {
                        scores.push((u, v, s));
                    }
                }
            }
        }
        scores.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("finite scores"));
        scores
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two triangles {0,1,2} and {3,4,5} joined by the edge (2,3).
    fn two_triangles() -> AdjacencyGraph {
        AdjacencyGraph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
            .unwrap()
    }

    #[test]
    fn construction_dedups_and_symmetrizes() {
        let g = AdjacencyGraph::from_edges(3, &[(0, 1), (1, 0), (0, 0), (1, 2)]).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert!(AdjacencyGraph::from_edges(2, &[(0, 5)]).is_err());
    }

    #[test]
    fn vertex_similarity_matches_definition() {
        let g = two_triangles();
        // N(0) = {1,2}, N(1) = {0,2}: intersection {2}, union {0,1,2}.
        assert!((g.vertex_similarity(0, 1) - 1.0 / 3.0).abs() < 1e-12);
        // Vertices in different triangles share no neighbors.
        assert_eq!(g.vertex_similarity(0, 4), 0.0);
        // A vertex compared with itself has similarity 1.
        assert_eq!(g.vertex_similarity(0, 0), 1.0);
    }

    #[test]
    fn neighborhood_sets_feed_the_indicator_framing() {
        let g = two_triangles();
        let sets = g.neighborhood_sets();
        assert_eq!(sets.len(), 6);
        assert_eq!(sets[0], vec![1, 2]);
        assert_eq!(sets[2], vec![0, 1, 3]);
        // Sorted as required by SampleCollection::from_sorted_sets.
        for s in &sets {
            assert!(s.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn jarvis_patrick_separates_the_triangles() {
        let g = two_triangles();
        // At threshold 0.3 the pairs sharing a full third of their
        // neighborhoods group together (0-1 within the first triangle,
        // 4-5 within the second); the bridge vertices 2 and 3 have
        // inflated neighborhoods and stay apart, and the two triangles
        // never merge.
        let labels = g.jarvis_patrick(0.3);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[4], labels[5]);
        assert_ne!(labels[0], labels[4]);
        // Threshold above every similarity puts every vertex alone.
        let singletons = g.jarvis_patrick(1.1);
        let mut distinct = singletons.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), 6);
    }

    #[test]
    fn missing_links_prefer_same_triangle_pairs() {
        let g = two_triangles();
        let scores = g.missing_link_scores();
        assert!(!scores.is_empty());
        // Every reported pair is a non-edge with positive similarity, and
        // the list is sorted by score.
        for w in scores.windows(2) {
            assert!(w[0].2 >= w[1].2);
        }
        for &(u, v, s) in &scores {
            assert!(s > 0.0);
            assert!(!g.neighbors(u).contains(&v));
        }
    }
}
