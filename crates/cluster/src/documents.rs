//! Document-similarity framing (Sections II-G, III-D, Table III).
//!
//! In information retrieval the Jaccard similarity compares the word (or
//! word-shingle) sets of documents. This module turns text into the
//! sorted `u64` sets the SimilarityAtScale pipeline consumes: each
//! distinct token (or w-token shingle) is hashed to an attribute id.

use crate::error::{ClusterError, ClusterResult};

/// 64-bit FNV-1a hash of a byte string (stable across runs — attribute
/// ids must be identical for identical tokens).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Tokenize text into lower-case alphanumeric words.
pub fn tokenize(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_lowercase())
        .collect()
}

/// Convert a document into the sorted set of hashed word ids.
pub fn document_word_set(text: &str) -> Vec<u64> {
    let mut ids: Vec<u64> = tokenize(text).iter().map(|t| fnv1a(t.as_bytes())).collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

/// Convert a document into the sorted set of hashed `w`-word shingles
/// (contiguous windows of `w` tokens), the standard near-duplicate /
/// plagiarism-detection representation.
pub fn document_shingle_set(text: &str, w: usize) -> ClusterResult<Vec<u64>> {
    if w == 0 {
        return Err(ClusterError::InvalidParameter("shingle width must be positive".to_string()));
    }
    let tokens = tokenize(text);
    if tokens.len() < w {
        return Ok(Vec::new());
    }
    let mut ids: Vec<u64> = tokens.windows(w).map(|win| fnv1a(win.join(" ").as_bytes())).collect();
    ids.sort_unstable();
    ids.dedup();
    Ok(ids)
}

/// Direct Jaccard similarity of two documents' word sets (reference
/// helper for tests and small examples).
pub fn document_similarity(a: &str, b: &str) -> f64 {
    let sa = document_word_set(a);
    let sb = document_word_set(b);
    let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
    while i < sa.len() && j < sb.len() {
        match sa[i].cmp(&sb[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = sa.len() + sb.len() - inter;
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_normalizes_case_and_punctuation() {
        assert_eq!(tokenize("Hello, WORLD! hello?"), vec!["hello", "world", "hello"]);
        assert!(tokenize("...!!!").is_empty());
        assert_eq!(tokenize("a1 b2"), vec!["a1", "b2"]);
    }

    #[test]
    fn fnv_is_stable_and_distinguishes_strings() {
        assert_eq!(fnv1a(b"abc"), fnv1a(b"abc"));
        assert_ne!(fnv1a(b"abc"), fnv1a(b"abd"));
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn word_sets_dedup_and_sort() {
        let s = document_word_set("the cat and the dog and the cat");
        assert_eq!(s.len(), 4);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn identical_documents_have_similarity_one() {
        assert_eq!(document_similarity("a b c", "c b a"), 1.0);
        assert_eq!(document_similarity("", ""), 1.0);
        assert_eq!(document_similarity("a b", "c d"), 0.0);
    }

    #[test]
    fn related_documents_score_between_zero_and_one() {
        let s = document_similarity("the quick brown fox", "the quick red fox");
        assert!((s - 3.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn shingles_capture_word_order() {
        let a = document_shingle_set("to be or not to be", 2).unwrap();
        let b = document_shingle_set("be to not or be to", 2).unwrap();
        // Same word sets, different order: shingle sets differ.
        assert_ne!(a, b);
        assert!(document_shingle_set("one two", 3).unwrap().is_empty());
        assert!(document_shingle_set("x", 0).is_err());
        // Width-1 shingles equal the word set.
        assert_eq!(
            document_shingle_set("cat dog cat", 1).unwrap().len(),
            document_word_set("cat dog cat").len()
        );
    }
}
