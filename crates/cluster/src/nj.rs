//! Neighbor-joining tree construction (Saitou & Nei).
//!
//! The paper lists "the clustering of samples for the construction of
//! phylogenetic trees" and "guide trees for large-scale multiple sequence
//! alignment" as primary consumers of the Jaccard distance matrix
//! (Section II-B, Fig. 1 step 9). Neighbor-joining is the standard
//! distance-based tree builder for both.

use gas_sparse::dense::DenseMatrix;
use serde::{Deserialize, Serialize};

use crate::error::{validate_distance_matrix, ClusterError, ClusterResult};

/// A node of an (unrooted, stored as rooted-at-last-join) phylogenetic
/// tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TreeNode {
    /// A leaf holding the index and name of an input sample.
    Leaf {
        /// Index of the sample in the distance matrix.
        index: usize,
        /// Display name.
        name: String,
    },
    /// An internal node joining two subtrees with branch lengths.
    Internal {
        /// Left child and its branch length.
        left: (Box<TreeNode>, f64),
        /// Right child and its branch length.
        right: (Box<TreeNode>, f64),
    },
}

impl TreeNode {
    /// Number of leaves below (and including) this node.
    pub fn leaf_count(&self) -> usize {
        match self {
            TreeNode::Leaf { .. } => 1,
            TreeNode::Internal { left, right } => left.0.leaf_count() + right.0.leaf_count(),
        }
    }

    /// Leaf indices below this node, left to right.
    pub fn leaf_indices(&self) -> Vec<usize> {
        match self {
            TreeNode::Leaf { index, .. } => vec![*index],
            TreeNode::Internal { left, right } => {
                let mut v = left.0.leaf_indices();
                v.extend(right.0.leaf_indices());
                v
            }
        }
    }

    fn newick_into(&self, out: &mut String) {
        match self {
            TreeNode::Leaf { name, .. } => {
                out.push_str(&name.replace([' ', '(', ')', ',', ':'], "_"))
            }
            TreeNode::Internal { left, right } => {
                out.push('(');
                left.0.newick_into(out);
                out.push_str(&format!(":{:.6},", left.1.max(0.0)));
                right.0.newick_into(out);
                out.push_str(&format!(":{:.6}", right.1.max(0.0)));
                out.push(')');
            }
        }
    }
}

/// A phylogenetic / guide tree produced by neighbor joining.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhyloTree {
    root: TreeNode,
}

impl PhyloTree {
    /// The root node.
    pub fn root(&self) -> &TreeNode {
        &self.root
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.root.leaf_count()
    }

    /// Serialize to a Newick string (terminated by `;`).
    pub fn newick(&self) -> String {
        let mut s = String::new();
        self.root.newick_into(&mut s);
        s.push(';');
        s
    }

    /// The set partition induced by removing the root: indices of the
    /// leaves on each side. Useful for checking that closely related
    /// samples end up together.
    pub fn root_bipartition(&self) -> (Vec<usize>, Vec<usize>) {
        match &self.root {
            TreeNode::Leaf { index, .. } => (vec![*index], vec![]),
            TreeNode::Internal { left, right } => (left.0.leaf_indices(), right.0.leaf_indices()),
        }
    }
}

/// Build a neighbor-joining tree from a symmetric distance matrix and
/// per-sample names.
pub fn neighbor_joining(dist: &DenseMatrix<f64>, names: &[String]) -> ClusterResult<PhyloTree> {
    validate_distance_matrix(dist)?;
    let n = dist.nrows();
    if names.len() != n {
        return Err(ClusterError::InvalidParameter(format!(
            "{} names for {} samples",
            names.len(),
            n
        )));
    }
    if n == 1 {
        return Ok(PhyloTree { root: TreeNode::Leaf { index: 0, name: names[0].clone() } });
    }
    // Active node list and working distance matrix.
    let mut nodes: Vec<TreeNode> =
        (0..n).map(|i| TreeNode::Leaf { index: i, name: names[i].clone() }).collect();
    let mut d: Vec<Vec<f64>> = (0..n).map(|i| dist.row(i).to_vec()).collect();

    while nodes.len() > 2 {
        let r = nodes.len();
        let row_sums: Vec<f64> = d.iter().map(|row| row.iter().sum()).collect();
        // Minimize the Q criterion.
        let (mut bi, mut bj, mut best) = (0usize, 1usize, f64::INFINITY);
        for i in 0..r {
            for j in (i + 1)..r {
                let q = (r as f64 - 2.0) * d[i][j] - row_sums[i] - row_sums[j];
                if q < best {
                    best = q;
                    bi = i;
                    bj = j;
                }
            }
        }
        // Branch lengths from the joined pair to the new node.
        let dij = d[bi][bj];
        let delta = if r > 2 { (row_sums[bi] - row_sums[bj]) / (r as f64 - 2.0) } else { 0.0 };
        let li = 0.5 * dij + 0.5 * delta;
        let lj = dij - li;
        // Distances from the new node to the remaining nodes.
        let mut new_dists = Vec::with_capacity(r - 2);
        #[allow(clippy::needless_range_loop)] // k indexes two rows of d simultaneously
        for k in 0..r {
            if k == bi || k == bj {
                continue;
            }
            new_dists.push(0.5 * (d[bi][k] + d[bj][k] - dij));
        }
        let (lo, hi) = (bi.min(bj), bi.max(bj));
        let node_hi = nodes.remove(hi);
        let node_lo = nodes.remove(lo);
        let (len_lo, len_hi) = if lo == bi { (li, lj) } else { (lj, li) };
        let joined = TreeNode::Internal {
            left: (Box::new(node_lo), len_lo.max(0.0)),
            right: (Box::new(node_hi), len_hi.max(0.0)),
        };
        for row in d.iter_mut() {
            row.remove(hi);
            row.remove(lo);
        }
        d.remove(hi);
        d.remove(lo);
        for (row, &v) in d.iter_mut().zip(new_dists.iter()) {
            row.push(v.max(0.0));
        }
        let mut last_row: Vec<f64> = new_dists.iter().map(|&v| v.max(0.0)).collect();
        last_row.push(0.0);
        d.push(last_row);
        nodes.push(joined);
    }
    // Join the final two nodes.
    let d01 = d[0][1];
    let right = nodes.pop().expect("two nodes remain");
    let left = nodes.pop().expect("two nodes remain");
    Ok(PhyloTree {
        root: TreeNode::Internal {
            left: (Box::new(left), (d01 / 2.0).max(0.0)),
            right: (Box::new(right), (d01 / 2.0).max(0.0)),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("s{i}")).collect()
    }

    /// Classic additive 4-taxon example.
    fn additive_matrix() -> DenseMatrix<f64> {
        DenseMatrix::from_vec(
            4,
            4,
            vec![
                0.0, 0.3, 0.8, 0.9, //
                0.3, 0.0, 0.7, 0.8, //
                0.8, 0.7, 0.0, 0.3, //
                0.9, 0.8, 0.3, 0.0,
            ],
        )
        .unwrap()
    }

    #[test]
    fn builds_tree_with_all_leaves() {
        let t = neighbor_joining(&additive_matrix(), &names(4)).unwrap();
        assert_eq!(t.leaf_count(), 4);
        let mut leaves = t.root().leaf_indices();
        leaves.sort_unstable();
        assert_eq!(leaves, vec![0, 1, 2, 3]);
    }

    #[test]
    fn related_taxa_are_grouped() {
        // {0,1} and {2,3} are the close pairs; at least one of them must
        // form a cherry (an internal node whose children are both leaves)
        // in the reconstructed tree.
        let t = neighbor_joining(&additive_matrix(), &names(4)).unwrap();
        fn cherries(node: &TreeNode, out: &mut Vec<Vec<usize>>) {
            if let TreeNode::Internal { left, right } = node {
                if let (TreeNode::Leaf { index: a, .. }, TreeNode::Leaf { index: b, .. }) =
                    (left.0.as_ref(), right.0.as_ref())
                {
                    let mut pair = vec![*a, *b];
                    pair.sort_unstable();
                    out.push(pair);
                }
                cherries(&left.0, out);
                cherries(&right.0, out);
            }
        }
        let mut found = Vec::new();
        cherries(t.root(), &mut found);
        assert!(
            found.contains(&vec![0, 1]) || found.contains(&vec![2, 3]),
            "cherries found: {found:?}"
        );
    }

    #[test]
    fn newick_is_well_formed() {
        let t = neighbor_joining(&additive_matrix(), &names(4)).unwrap();
        let nwk = t.newick();
        assert!(nwk.ends_with(';'));
        assert_eq!(nwk.matches('(').count(), nwk.matches(')').count());
        for name in names(4) {
            assert!(nwk.contains(&name), "{nwk}");
        }
        // Branch lengths present.
        assert!(nwk.contains(':'));
    }

    #[test]
    fn newick_escapes_problematic_names() {
        let d = DenseMatrix::from_vec(2, 2, vec![0.0, 0.4, 0.4, 0.0]).unwrap();
        let t = neighbor_joining(&d, &["sample (one)".to_string(), "b:c".to_string()]).unwrap();
        let nwk = t.newick();
        assert!(nwk.contains("sample__one_"));
        assert!(nwk.contains("b_c"));
    }

    #[test]
    fn small_inputs() {
        let d1 = DenseMatrix::from_vec(1, 1, vec![0.0]).unwrap();
        let t1 = neighbor_joining(&d1, &names(1)).unwrap();
        assert_eq!(t1.leaf_count(), 1);
        assert!(t1.newick().contains("s0"));
        let d2 = DenseMatrix::from_vec(2, 2, vec![0.0, 0.6, 0.6, 0.0]).unwrap();
        let t2 = neighbor_joining(&d2, &names(2)).unwrap();
        assert_eq!(t2.leaf_count(), 2);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(neighbor_joining(&additive_matrix(), &names(3)).is_err());
        let bad = DenseMatrix::<f64>::zeros(2, 3);
        assert!(neighbor_joining(&bad, &names(2)).is_err());
    }

    #[test]
    fn branch_lengths_recover_additive_distances_approximately() {
        // For an additive matrix, NJ recovers the tree; check the closest
        // pair's path length roughly equals their distance.
        let t = neighbor_joining(&additive_matrix(), &names(4)).unwrap();
        // total tree length should be positive and finite.
        fn total_len(node: &TreeNode) -> f64 {
            match node {
                TreeNode::Leaf { .. } => 0.0,
                TreeNode::Internal { left, right } => {
                    left.1 + right.1 + total_len(&left.0) + total_len(&right.0)
                }
            }
        }
        let len = total_len(t.root());
        assert!(len > 0.0 && len.is_finite());
        // The additive tree for this matrix has external branches
        // 0.2 + 0.1 + 0.1 + 0.2 and an internal branch of 0.5.
        assert!((len - 1.1).abs() < 1e-6, "total length {len}");
    }
}
