//! k-medoids clustering over a precomputed distance matrix.
//!
//! Section II-C notes that the Jaccard distance can drive centroid-style
//! clustering of categorical data. With sets there is no meaningful
//! centroid, so the standard choice is k-medoids (PAM): cluster centers
//! are actual samples and only the distance matrix is needed.

use gas_sparse::dense::DenseMatrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::error::{validate_distance_matrix, ClusterError, ClusterResult};

/// Result of a k-medoids run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KMedoidsResult {
    /// Indices of the chosen medoid samples (length `k`).
    pub medoids: Vec<usize>,
    /// Cluster assignment of each sample (values in `0..k`).
    pub assignments: Vec<usize>,
    /// Total within-cluster distance (the PAM objective).
    pub total_cost: f64,
    /// Number of improvement sweeps performed.
    pub iterations: usize,
}

/// Run k-medoids (a PAM-style alternating refinement) on the symmetric
/// distance matrix `dist`.
pub fn k_medoids(
    dist: &DenseMatrix<f64>,
    k: usize,
    max_iterations: usize,
    seed: u64,
) -> ClusterResult<KMedoidsResult> {
    validate_distance_matrix(dist)?;
    let n = dist.nrows();
    if k == 0 || k > n {
        return Err(ClusterError::InvalidParameter(format!("k = {k} is invalid for {n} samples")));
    }
    // Farthest-point initialization: a random first medoid, then greedily
    // add the sample farthest from the already-chosen medoids. This seeds
    // one medoid per well-separated group, which random seeding does not
    // guarantee.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut rng);
    let mut medoids: Vec<usize> = vec![order[0]];
    while medoids.len() < k {
        let next = (0..n)
            .filter(|i| !medoids.contains(i))
            .max_by(|&a, &b| {
                let da = medoids.iter().map(|&m| dist.get(a, m)).fold(f64::INFINITY, f64::min);
                let db = medoids.iter().map(|&m| dist.get(b, m)).fold(f64::INFINITY, f64::min);
                da.partial_cmp(&db).expect("distances are finite")
            })
            .expect("fewer medoids than samples");
        medoids.push(next);
    }

    let assign = |medoids: &[usize]| -> (Vec<usize>, f64) {
        let mut assignments = vec![0usize; n];
        let mut cost = 0.0;
        for (i, slot) in assignments.iter_mut().enumerate() {
            let (best_c, best_d) = medoids
                .iter()
                .enumerate()
                .map(|(c, &m)| (c, dist.get(i, m)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("distances are finite"))
                .expect("k >= 1");
            *slot = best_c;
            cost += best_d;
        }
        (assignments, cost)
    };

    let (mut assignments, mut total_cost) = assign(&medoids);
    let mut iterations = 0;
    for _ in 0..max_iterations {
        iterations += 1;
        let mut improved = false;
        // For each cluster, move its medoid to the member minimizing the
        // within-cluster distance sum.
        for (c, medoid) in medoids.iter_mut().enumerate() {
            let members: Vec<usize> = (0..n).filter(|&i| assignments[i] == c).collect();
            if members.is_empty() {
                continue;
            }
            let best = members
                .iter()
                .map(|&cand| {
                    let cost: f64 = members.iter().map(|&m| dist.get(cand, m)).sum();
                    (cand, cost)
                })
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
                .expect("non-empty cluster");
            if best.0 != *medoid {
                *medoid = best.0;
                improved = true;
            }
        }
        let (new_assignments, new_cost) = assign(&medoids);
        if new_cost + 1e-12 < total_cost {
            improved = true;
        }
        assignments = new_assignments;
        total_cost = new_cost;
        if !improved {
            break;
        }
    }
    Ok(KMedoidsResult { medoids, assignments, total_cost, iterations })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated groups of three samples each.
    fn three_groups() -> DenseMatrix<f64> {
        let n = 9;
        let mut d = DenseMatrix::<f64>::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let same_group = i / 3 == j / 3;
                d.set(i, j, if same_group { 0.05 } else { 0.9 });
            }
        }
        d
    }

    #[test]
    fn recovers_well_separated_groups() {
        let r = k_medoids(&three_groups(), 3, 20, 1).unwrap();
        assert_eq!(r.medoids.len(), 3);
        assert_eq!(r.assignments.len(), 9);
        for g in 0..3 {
            let labels: Vec<usize> = (g * 3..g * 3 + 3).map(|i| r.assignments[i]).collect();
            assert!(labels.iter().all(|&l| l == labels[0]), "group {g}: {labels:?}");
        }
        // All three groups get distinct labels.
        let mut distinct: Vec<usize> = r.assignments.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), 3);
        // Cost of a perfect clustering: each member at distance <= 0.05*2 from medoid.
        assert!(r.total_cost < 1.0);
        assert!(r.iterations >= 1);
    }

    #[test]
    fn k_equal_n_gives_zero_cost() {
        let d = three_groups();
        let r = k_medoids(&d, 9, 10, 3).unwrap();
        assert!(r.total_cost < 1e-12);
        let mut m = r.medoids.clone();
        m.sort_unstable();
        m.dedup();
        assert_eq!(m.len(), 9);
    }

    #[test]
    fn k_one_selects_a_central_medoid() {
        let r = k_medoids(&three_groups(), 1, 10, 5).unwrap();
        assert_eq!(r.medoids.len(), 1);
        assert!(r.assignments.iter().all(|&a| a == 0));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let d = three_groups();
        let a = k_medoids(&d, 3, 20, 7).unwrap();
        let b = k_medoids(&d, 3, 20, 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_parameters_rejected() {
        let d = three_groups();
        assert!(k_medoids(&d, 0, 10, 1).is_err());
        assert!(k_medoids(&d, 10, 10, 1).is_err());
        let bad = DenseMatrix::<f64>::zeros(2, 3);
        assert!(k_medoids(&bad, 1, 10, 1).is_err());
    }
}
