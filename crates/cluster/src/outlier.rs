//! Proximity-based anomaly detection (Section II-D).
//!
//! With a Jaccard distance matrix in hand, a sample is anomalous when it
//! is far from everything else — e.g. a contaminated or mislabeled
//! sequencing experiment. The classic proximity-based score is the mean
//! distance to the k nearest neighbors.

use gas_sparse::dense::DenseMatrix;

use crate::error::{validate_distance_matrix, ClusterError, ClusterResult};

/// Mean distance of each sample to its `k` nearest neighbors (excluding
/// itself). Larger scores indicate more anomalous samples.
pub fn knn_outlier_scores(dist: &DenseMatrix<f64>, k: usize) -> ClusterResult<Vec<f64>> {
    validate_distance_matrix(dist)?;
    let n = dist.nrows();
    if k == 0 || k >= n {
        return Err(ClusterError::InvalidParameter(format!(
            "k = {k} is invalid for {n} samples (need 1 <= k < n)"
        )));
    }
    let mut scores = Vec::with_capacity(n);
    let mut row: Vec<f64> = Vec::with_capacity(n - 1);
    for i in 0..n {
        row.clear();
        for j in 0..n {
            if j != i {
                row.push(dist.get(i, j));
            }
        }
        row.sort_by(|a, b| a.partial_cmp(b).expect("distances are finite"));
        scores.push(row[..k].iter().sum::<f64>() / k as f64);
    }
    Ok(scores)
}

/// Indices of samples whose score exceeds `mean + n_sigmas · stddev` of
/// the score distribution.
pub fn detect_outliers(
    dist: &DenseMatrix<f64>,
    k: usize,
    n_sigmas: f64,
) -> ClusterResult<Vec<usize>> {
    let scores = knn_outlier_scores(dist, k)?;
    let n = scores.len() as f64;
    let mean = scores.iter().sum::<f64>() / n;
    let var = scores.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n;
    let threshold = mean + n_sigmas * var.sqrt();
    Ok(scores.iter().enumerate().filter(|(_, &s)| s > threshold).map(|(i, _)| i).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Five similar samples plus one far-away outlier (index 5).
    fn with_outlier() -> DenseMatrix<f64> {
        let n = 6;
        let mut d = DenseMatrix::<f64>::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let far = i == 5 || j == 5;
                d.set(i, j, if far { 0.95 } else { 0.1 });
            }
        }
        d
    }

    #[test]
    fn outlier_has_the_largest_score() {
        let scores = knn_outlier_scores(&with_outlier(), 3).unwrap();
        let max_idx =
            scores.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert_eq!(max_idx, 5);
        assert!(scores[5] > 3.0 * scores[0]);
    }

    #[test]
    fn detect_outliers_flags_only_the_outlier() {
        let flagged = detect_outliers(&with_outlier(), 3, 1.5).unwrap();
        assert_eq!(flagged, vec![5]);
    }

    #[test]
    fn homogeneous_data_has_no_outliers() {
        let n = 5;
        let mut d = DenseMatrix::<f64>::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    d.set(i, j, 0.5);
                }
            }
        }
        assert!(detect_outliers(&d, 2, 2.0).unwrap().is_empty());
        let scores = knn_outlier_scores(&d, 2).unwrap();
        assert!(scores.iter().all(|&s| (s - 0.5).abs() < 1e-12));
    }

    #[test]
    fn invalid_parameters_rejected() {
        let d = with_outlier();
        assert!(knn_outlier_scores(&d, 0).is_err());
        assert!(knn_outlier_scores(&d, 6).is_err());
        let bad = DenseMatrix::<f64>::zeros(2, 3);
        assert!(knn_outlier_scores(&bad, 1).is_err());
    }
}
