//! Error types for the downstream-application crate.

use std::fmt;

/// Result alias for clustering operations.
pub type ClusterResult<T> = Result<T, ClusterError>;

/// Errors produced by clustering / tree-building routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// A distance matrix was not square, not symmetric, or had a bad size.
    InvalidDistanceMatrix(String),
    /// A parameter (k, number of clusters, ...) is out of range.
    InvalidParameter(String),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::InvalidDistanceMatrix(msg) => {
                write!(f, "invalid distance matrix: {msg}")
            }
            ClusterError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// Validate that a matrix is a usable distance matrix: square, zero
/// diagonal (within tolerance) and symmetric (within tolerance).
pub fn validate_distance_matrix(d: &gas_sparse::dense::DenseMatrix<f64>) -> ClusterResult<()> {
    if d.nrows() != d.ncols() {
        return Err(ClusterError::InvalidDistanceMatrix(format!(
            "matrix is {}x{}, expected square",
            d.nrows(),
            d.ncols()
        )));
    }
    if d.nrows() == 0 {
        return Err(ClusterError::InvalidDistanceMatrix("matrix is empty".to_string()));
    }
    for i in 0..d.nrows() {
        if d.get(i, i).abs() > 1e-9 {
            return Err(ClusterError::InvalidDistanceMatrix(format!(
                "diagonal entry ({i}, {i}) = {} is not zero",
                d.get(i, i)
            )));
        }
        for j in 0..d.ncols() {
            if (d.get(i, j) - d.get(j, i)).abs() > 1e-9 {
                return Err(ClusterError::InvalidDistanceMatrix(format!(
                    "asymmetric at ({i}, {j})"
                )));
            }
            if d.get(i, j) < 0.0 {
                return Err(ClusterError::InvalidDistanceMatrix(format!(
                    "negative distance at ({i}, {j})"
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gas_sparse::dense::DenseMatrix;

    #[test]
    fn accepts_valid_distance_matrix() {
        let d = DenseMatrix::from_vec(2, 2, vec![0.0, 0.5, 0.5, 0.0]).unwrap();
        assert!(validate_distance_matrix(&d).is_ok());
    }

    #[test]
    fn rejects_bad_matrices() {
        let non_square = DenseMatrix::<f64>::zeros(2, 3);
        assert!(validate_distance_matrix(&non_square).is_err());
        let empty = DenseMatrix::<f64>::zeros(0, 0);
        assert!(validate_distance_matrix(&empty).is_err());
        let bad_diag = DenseMatrix::from_vec(2, 2, vec![0.1, 0.5, 0.5, 0.0]).unwrap();
        assert!(validate_distance_matrix(&bad_diag).is_err());
        let asym = DenseMatrix::from_vec(2, 2, vec![0.0, 0.5, 0.4, 0.0]).unwrap();
        assert!(validate_distance_matrix(&asym).is_err());
        let neg = DenseMatrix::from_vec(2, 2, vec![0.0, -0.5, -0.5, 0.0]).unwrap();
        assert!(validate_distance_matrix(&neg).is_err());
    }

    #[test]
    fn display_messages() {
        assert!(ClusterError::InvalidParameter("k = 0".into()).to_string().contains("k = 0"));
        assert!(ClusterError::InvalidDistanceMatrix("x".into()).to_string().contains("x"));
    }
}
