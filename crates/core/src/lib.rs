//! # gas-core — the SimilarityAtScale algorithm
//!
//! This crate implements the primary contribution of Besta et al.,
//! *Communication-Efficient Jaccard Similarity for High-Performance
//! Distributed Genome Comparisons* (IPDPS 2020): an algebraic, batched,
//! communication-avoiding computation of the all-pairs Jaccard similarity
//! matrix.
//!
//! The pipeline follows Listing 1 of the paper:
//!
//! 1. the data samples form an indicator matrix `A ∈ {0,1}^{m×n}`
//!    ([`indicator::SampleCollection`]),
//! 2. `A` is processed in row batches ([`batch::BatchPlan`], Eq. 3),
//! 3. each batch is stripped of all-zero rows ([`filter`], Eqs. 5–6),
//! 4. the surviving rows are packed 64 per machine word ([`mask`]),
//! 5. the intersection counts `B = AᵀA` accumulate over a popcount-AND
//!    semiring product (local Rayon kernel or the distributed 2.5D SUMMA
//!    of `gas-sparse`),
//! 6. the similarity and distance matrices follow from `B` and the
//!    per-sample cardinalities ([`jaccard`], Eq. 2).
//!
//! Drivers live in [`algorithm`]; comparison points in [`minhash`]
//! (Mash-style sketching) and [`baselines`] (exact single-node and
//! allreduce-style distributed schemes); the analytic BSP cost model used
//! to project to the paper's 1024-node scale is in [`costmodel`].
//!
//! ```
//! use gas_core::algorithm::similarity_at_scale;
//! use gas_core::config::SimilarityConfig;
//! use gas_core::indicator::SampleCollection;
//!
//! let collection = SampleCollection::from_sorted_sets(vec![
//!     vec![1, 2, 3, 4, 5],
//!     vec![3, 4, 5, 6, 7],
//! ]).unwrap();
//! let result = similarity_at_scale(&collection, &SimilarityConfig::default()).unwrap();
//! assert!((result.similarity().get(0, 1) - 3.0 / 7.0).abs() < 1e-12);
//! ```

pub mod algorithm;
pub mod baselines;
pub mod batch;
pub mod config;
pub mod costmodel;
pub mod error;
pub mod filter;
pub mod indicator;
pub mod jaccard;
pub mod mask;
pub mod minhash;

pub use algorithm::{similarity_at_scale, similarity_at_scale_distributed};
pub use config::SimilarityConfig;
pub use costmodel::{fit_cost_model, CostObservation, PaperCostModel, ProjectionInput};
pub use error::{CoreError, CoreResult};
pub use indicator::SampleCollection;
pub use jaccard::{jaccard_exact_pairwise, SimilarityResult};
pub use minhash::{MinHashSignature, MinHashSketch, MinHasher, SignatureScheme};
