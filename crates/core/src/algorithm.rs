//! The SimilarityAtScale drivers.
//!
//! Two execution paths cover the paper's algorithm (Listing 1):
//!
//! * [`similarity_at_scale`] — the shared-memory driver: batches are
//!   filtered, bit-packed and multiplied with the Rayon-parallel
//!   popcount-AND kernel. This is what a single rank (one MPI process
//!   with on-node threading) executes, and what the examples use.
//! * [`similarity_at_scale_distributed`] — the simulated-distributed
//!   driver: `p` ranks run the full pipeline over the simulated runtime —
//!   the bitmap zero-row filter (an OR-allreduce of packed row bitmaps),
//!   per-rank bit-packed operand blocks, the rectangular-grid 2.5D SUMMA
//!   `AᵀA` (all `p` ranks active for every rank count), and the final
//!   layer/cardinality reductions — and the cost trackers record the
//!   communication the paper's evaluation is about.

use std::time::Instant;

use gas_dstsim::cost::{AggregateCost, CostModel, CostReport};
use gas_dstsim::machine::Machine;
use gas_dstsim::runtime::Runtime;
use gas_sparse::bitmat::BitMatrix;
use gas_sparse::dense::DenseMatrix;
use gas_sparse::dist::ata::DistAta;
use gas_sparse::dist::filter::dist_row_filter;
use gas_sparse::semiring::{PlusTimes, PopcountAnd};
use gas_sparse::spgemm::ata_dense_parallel;

use crate::batch::BatchPlan;
use crate::config::SimilarityConfig;
use crate::error::{CoreError, CoreResult};
use crate::filter::apply_filter;
use crate::indicator::SampleCollection;
use crate::jaccard::SimilarityResult;
use crate::mask::{prepare_batch, PreparedBatch};

/// Per-batch statistics of a shared-memory run.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchStats {
    /// Batch index.
    pub batch: usize,
    /// Row range `[lo, hi)` of the batch.
    pub rows: (u64, u64),
    /// Nonzeros of the indicator matrix falling in the batch.
    pub nnz: u64,
    /// Rows surviving the zero-row filter.
    pub nonzero_rows: usize,
    /// Stored entries after packing (words when masking is on).
    pub stored_entries: usize,
    /// Wall-clock seconds spent on the batch.
    pub seconds: f64,
}

/// Output of [`similarity_at_scale_with_stats`].
#[derive(Debug, Clone, PartialEq)]
pub struct SharedRunSummary {
    /// The similarity result.
    pub result: SimilarityResult,
    /// Per-batch statistics.
    pub batches: Vec<BatchStats>,
    /// Total wall-clock seconds.
    pub total_seconds: f64,
}

impl SharedRunSummary {
    /// Mean seconds per batch.
    pub fn mean_batch_seconds(&self) -> f64 {
        if self.batches.is_empty() {
            return 0.0;
        }
        self.batches.iter().map(|b| b.seconds).sum::<f64>() / self.batches.len() as f64
    }
}

/// Run SimilarityAtScale on shared memory and return only the result.
pub fn similarity_at_scale(
    collection: &SampleCollection,
    config: &SimilarityConfig,
) -> CoreResult<SimilarityResult> {
    Ok(similarity_at_scale_with_stats(collection, config)?.result)
}

/// Run SimilarityAtScale on shared memory, recording per-batch statistics.
pub fn similarity_at_scale_with_stats(
    collection: &SampleCollection,
    config: &SimilarityConfig,
) -> CoreResult<SharedRunSummary> {
    config.validate()?;
    let start = Instant::now();
    let plan = BatchPlan::from_config(config, collection, 1)?;
    let n = collection.n();
    let mut b = DenseMatrix::<u64>::zeros(n, n);
    let mut cardinalities = vec![0u64; n];
    let mut batches = Vec::with_capacity(plan.batch_count());
    for (l, (lo, hi)) in plan.iter().enumerate() {
        let batch_start = Instant::now();
        let columns = collection.batch_columns_all(lo, hi);
        let (prepared, filter) = prepare_batch(
            (hi - lo) as usize,
            &columns,
            config.use_zero_row_filter,
            config.use_bitmask,
        )?;
        for (i, c) in prepared.col_cardinalities().into_iter().enumerate() {
            cardinalities[i] += c;
        }
        let partial = match &prepared {
            PreparedBatch::Masked(bm) => {
                ata_dense_parallel::<PopcountAnd>(bm.as_csc(), &bm.to_csr())?
            }
            PreparedBatch::Unmasked { csc, csr } => ata_dense_parallel::<PlusTimes<u64>>(csc, csr)?,
        };
        b.add_assign(&partial)?;
        batches.push(BatchStats {
            batch: l,
            rows: (lo, hi),
            nnz: collection.batch_nnz(lo, hi),
            nonzero_rows: filter.num_nonzero_rows(),
            stored_entries: prepared.stored_entries(),
            seconds: batch_start.elapsed().as_secs_f64(),
        });
    }
    let result = SimilarityResult::from_intersections(b, cardinalities)?;
    Ok(SharedRunSummary { result, batches, total_seconds: start.elapsed().as_secs_f64() })
}

/// Summary of a simulated-distributed run.
#[derive(Debug, Clone)]
pub struct DistributedRunSummary {
    /// The similarity result (assembled from the distributed blocks).
    pub result: SimilarityResult,
    /// Per-rank communication/computation counters.
    pub reports: Vec<CostReport>,
    /// Aggregate of the per-rank counters.
    pub aggregate: AggregateCost,
    /// Per-batch wall-clock seconds (maximum over ranks).
    pub batch_seconds: Vec<f64>,
    /// Maximum per-rank wall-clock seconds of the whole parallel section.
    pub measured_seconds: f64,
    /// Number of ranks used.
    pub nranks: usize,
    /// The `r × q × c` processor grid the run was distributed over.
    pub grid_dims: [usize; 3],
    /// Ranks that participated in the product (always `nranks` with
    /// rectangular grids).
    pub active_ranks: usize,
}

impl DistributedRunSummary {
    /// BSP-projected execution time under `model`.
    pub fn projected_time(&self, model: &CostModel) -> f64 {
        model.project(&self.reports)
    }

    /// Mean seconds per batch (max over ranks, averaged over batches).
    pub fn mean_batch_seconds(&self) -> f64 {
        if self.batch_seconds.is_empty() {
            return 0.0;
        }
        self.batch_seconds.iter().sum::<f64>() / self.batch_seconds.len() as f64
    }
}

/// Run SimilarityAtScale on `nranks` simulated ranks of `machine`.
///
/// The driver selects a rectangular `r × q × c` grid for the rank count
/// (every rank active), and each rank reads the sample columns of its
/// output row block `R_i` and column block `C_j` (the two SUMMA
/// operands). Every rank contributes a packed bitmap of the batch rows it
/// observes to the distributed zero-row filter (an OR-allreduce), packs
/// its filtered operand blocks, and runs the SUMMA sweep — passing the
/// filter fingerprint so the decoded-block cache can skip re-decodes
/// across batches with identical filters. The result is gathered on rank
/// 0 for return. Communication counters for all ranks are included in the
/// summary so benchmarks can report modeled times at the paper's scales.
pub fn similarity_at_scale_distributed(
    collection: &SampleCollection,
    config: &SimilarityConfig,
    nranks: usize,
    machine: &Machine,
) -> CoreResult<DistributedRunSummary> {
    config.validate()?;
    if nranks == 0 {
        return Err(CoreError::InvalidConfig("need at least one rank".to_string()));
    }
    let n = collection.n();
    let plan = BatchPlan::from_config(config, collection, nranks)?;
    let runtime = Runtime::new(nranks).with_machine(machine.clone());
    let use_filter = config.use_zero_row_filter;
    let replication = config.replication;
    let grid = DistAta::select_grid(nranks, replication)?;
    let grid_dims = [grid.rows(), grid.cols(), grid.layers()];

    type RankOutput = Result<(Option<DenseMatrix<u64>>, Vec<u64>, Vec<f64>), CoreError>;

    let out = runtime.run(move |ctx| -> RankOutput {
        let world = ctx.world();
        let mut ata = DistAta::new(world, n, replication)?;
        let mut acc = ata.new_accumulator();
        let mut card = ata.new_cardinalities();
        let right_cols: Vec<usize> = ata.my_col_range().collect();
        let left_cols: Vec<usize> = ata.my_row_range().collect();
        let same_blocks = right_cols == left_cols;
        let mut batch_seconds = Vec::with_capacity(plan.batch_count());
        for (lo, hi) in plan.iter() {
            let batch_start = Instant::now();
            let batch_rows = (hi - lo) as usize;
            // Each rank reads the samples of its two operand blocks for
            // this batch (they coincide on the diagonal of square grids).
            let right_columns = collection.batch_columns(lo, hi, &right_cols);
            let left_columns = if same_blocks {
                right_columns.clone()
            } else {
                collection.batch_columns(lo, hi, &left_cols)
            };
            // Every rank accumulates the rows it observes in its column
            // block into a packed bitmap; the OR-allreduce makes the
            // union filter available everywhere (the paper's
            // accumulate-write formulation). With the filter disabled the
            // batch is packed as-is.
            let (nrows, left_f, right_f, key) = if use_filter {
                let local_rows: Vec<usize> = right_columns.iter().flatten().copied().collect();
                ctx.add_mem_traffic((local_rows.len() * std::mem::size_of::<u64>()) as u64);
                // Distributed zero-row filter (collective over all ranks).
                let filter = dist_row_filter(world, batch_rows, &local_rows)?;
                let right_f = apply_filter(&right_columns, &filter);
                let left_f = if same_blocks {
                    right_f.clone()
                } else {
                    apply_filter(&left_columns, &filter)
                };
                (filter.num_nonzero_rows(), left_f, right_f, Some(filter.fingerprint()))
            } else {
                (batch_rows, left_columns, right_columns, None)
            };
            let right = BitMatrix::from_columns(nrows, &right_f)?;
            let left =
                if same_blocks { right.clone() } else { BitMatrix::from_columns(nrows, &left_f)? };
            ata.accumulate_batch_keyed(&left, &right, key, &mut acc, &mut card)?;
            ctx.record_superstep();
            batch_seconds.push(batch_start.elapsed().as_secs_f64());
        }
        ata.finalize(&mut acc, &mut card)?;
        let full = ata.gather_full(world, &acc)?;
        Ok((full, card, batch_seconds))
    })?;

    let reports = out.reports;
    let aggregate = AggregateCost::from_reports(&reports);
    let measured_seconds = reports.iter().map(|r| r.measured_seconds).fold(0.0, f64::max);
    let mut results = Vec::with_capacity(out.results.len());
    for r in out.results {
        results.push(r?);
    }
    // Per-batch time: maximum over ranks for each batch index.
    let batch_count = results.iter().map(|(_, _, b)| b.len()).max().unwrap_or(0);
    let mut batch_seconds = vec![0.0f64; batch_count];
    for (_, _, times) in &results {
        for (i, &t) in times.iter().enumerate() {
            batch_seconds[i] = batch_seconds[i].max(t);
        }
    }
    let (full_b, cardinalities, _) = results.swap_remove(0);
    let full_b = full_b.ok_or_else(|| {
        CoreError::InvalidInput("rank 0 did not produce the gathered similarity matrix".to_string())
    })?;
    let result = SimilarityResult::from_intersections(full_b, cardinalities)?;
    Ok(DistributedRunSummary {
        result,
        reports,
        aggregate,
        batch_seconds,
        measured_seconds,
        nranks,
        grid_dims,
        active_ranks: grid_dims.iter().product(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jaccard::jaccard_exact_pairwise;
    use gas_genomics::datasets::DatasetSpec;

    fn small_collection() -> SampleCollection {
        let samples = DatasetSpec::explicit(4000, 12, 0.02, 17).generate().unwrap();
        SampleCollection::from_sorted_sets(samples).unwrap()
    }

    #[test]
    fn shared_memory_matches_exact_reference() {
        let c = small_collection();
        let exact = jaccard_exact_pairwise(&c);
        for batches in [1usize, 3, 7] {
            let r = similarity_at_scale(&c, &SimilarityConfig::with_batches(batches)).unwrap();
            assert_eq!(r.intersections(), exact.intersections(), "batches = {batches}");
            assert_eq!(r.cardinalities(), exact.cardinalities());
            assert!(r.max_similarity_diff(&exact).unwrap() < 1e-12);
        }
    }

    #[test]
    fn masking_and_filtering_do_not_change_the_result() {
        let c = small_collection();
        let reference = jaccard_exact_pairwise(&c);
        for (filter, mask) in [(true, true), (true, false), (false, true), (false, false)] {
            let config = SimilarityConfig {
                use_zero_row_filter: filter,
                use_bitmask: mask,
                ..SimilarityConfig::with_batches(2)
            };
            let r = similarity_at_scale(&c, &config).unwrap();
            assert_eq!(r.intersections(), reference.intersections(), "filter={filter} mask={mask}");
        }
    }

    #[test]
    fn stats_cover_all_batches_and_nnz() {
        let c = small_collection();
        let summary =
            similarity_at_scale_with_stats(&c, &SimilarityConfig::with_batches(5)).unwrap();
        assert_eq!(summary.batches.len(), 5);
        let nnz: u64 = summary.batches.iter().map(|b| b.nnz).sum();
        assert_eq!(nnz, c.nnz());
        assert!(summary.total_seconds >= 0.0);
        assert!(summary.mean_batch_seconds() >= 0.0);
        // Filtered rows never exceed batch nnz.
        for b in &summary.batches {
            assert!(b.nonzero_rows as u64 <= b.nnz);
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let c = small_collection();
        assert!(similarity_at_scale(&c, &SimilarityConfig::with_batches(0)).is_err());
        assert!(similarity_at_scale_distributed(
            &c,
            &SimilarityConfig::default(),
            0,
            &Machine::laptop()
        )
        .is_err());
    }

    #[test]
    fn distributed_matches_exact_reference_on_various_rank_counts() {
        let c = small_collection();
        let exact = jaccard_exact_pairwise(&c);
        for nranks in [1usize, 4, 6, 8, 9] {
            let summary = similarity_at_scale_distributed(
                &c,
                &SimilarityConfig::with_batches(3),
                nranks,
                &Machine::laptop(),
            )
            .unwrap();
            assert_eq!(summary.result.intersections(), exact.intersections(), "nranks = {nranks}");
            assert_eq!(summary.result.cardinalities(), exact.cardinalities());
            assert_eq!(summary.batch_seconds.len(), 3);
            assert_eq!(summary.nranks, nranks);
            // Rectangular grids never idle ranks.
            assert_eq!(summary.active_ranks, nranks, "nranks = {nranks}");
            assert_eq!(summary.grid_dims.iter().product::<usize>(), nranks);
            if nranks > 1 {
                assert!(summary.aggregate.total_bytes_sent > 0);
            }
        }
    }

    #[test]
    fn distributed_with_replication_matches_reference() {
        let c = small_collection();
        let exact = jaccard_exact_pairwise(&c);
        let summary = similarity_at_scale_distributed(
            &c,
            &SimilarityConfig::with_batches(2).with_replication(2),
            8,
            &Machine::laptop(),
        )
        .unwrap();
        assert_eq!(summary.result.intersections(), exact.intersections());
        let projected = summary.projected_time(&Machine::laptop().cost_model().unwrap());
        assert!(projected > 0.0);
    }
}
