//! The indicator matrix `A` and the sample collection behind it.
//!
//! A [`SampleCollection`] holds `n` data samples, each a sorted set of
//! attribute values (for genomics: k-mer codes). Conceptually this *is*
//! the indicator matrix `A ∈ {0,1}^{m×n}` of Section III-A, stored by
//! column; the batching machinery extracts row ranges of `A` on demand
//! (Eq. 3) without ever materializing the hypersparse full matrix.

use gas_genomics::sample::KmerSample;
use serde::{Deserialize, Serialize};

use crate::error::{CoreError, CoreResult};

/// A collection of data samples — the column-wise view of the indicator
/// matrix `A`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampleCollection {
    /// Per-sample sorted distinct attribute values.
    samples: Vec<Vec<u64>>,
    /// Optional sample names (same length as `samples` when present).
    names: Vec<String>,
    /// Attribute universe size `m` (one plus the maximum value, or a
    /// user-specified larger bound).
    m: u64,
}

impl SampleCollection {
    /// Build from per-sample sorted, strictly-increasing value lists.
    pub fn from_sorted_sets(samples: Vec<Vec<u64>>) -> CoreResult<Self> {
        for (i, s) in samples.iter().enumerate() {
            if s.windows(2).any(|w| w[0] >= w[1]) {
                return Err(CoreError::InvalidInput(format!(
                    "sample {i} is not strictly increasing"
                )));
            }
        }
        if samples.is_empty() {
            return Err(CoreError::InvalidInput("collection has no samples".to_string()));
        }
        let m = samples.iter().filter_map(|s| s.last()).max().map(|&v| v + 1).unwrap_or(1);
        let names = (0..samples.len()).map(|i| format!("sample_{i}")).collect();
        Ok(SampleCollection { samples, names, m })
    }

    /// Build from unsorted value lists (sorted and deduplicated here).
    pub fn from_sets(samples: Vec<Vec<u64>>) -> CoreResult<Self> {
        let samples = samples
            .into_iter()
            .map(|mut s| {
                s.sort_unstable();
                s.dedup();
                s
            })
            .collect();
        SampleCollection::from_sorted_sets(samples)
    }

    /// Build from k-mer samples produced by `gas-genomics`.
    pub fn from_kmer_samples(samples: &[KmerSample]) -> CoreResult<Self> {
        let mut c = SampleCollection::from_sorted_sets(
            samples.iter().map(|s| s.kmers().to_vec()).collect(),
        )?;
        c.names = samples.iter().map(|s| s.name().to_string()).collect();
        Ok(c)
    }

    /// Override the attribute-universe size `m` (must cover every stored
    /// value). Useful when samples come from a known universe such as
    /// `4^k` k-mer codes.
    pub fn with_universe(mut self, m: u64) -> CoreResult<Self> {
        if m < self.m {
            return Err(CoreError::InvalidInput(format!(
                "universe {m} smaller than the largest stored value requires {}",
                self.m
            )));
        }
        self.m = m;
        Ok(self)
    }

    /// Override the sample names.
    pub fn with_names(mut self, names: Vec<String>) -> CoreResult<Self> {
        if names.len() != self.samples.len() {
            return Err(CoreError::InvalidInput(format!(
                "{} names for {} samples",
                names.len(),
                self.samples.len()
            )));
        }
        self.names = names;
        Ok(self)
    }

    /// Number of data samples `n`.
    pub fn n(&self) -> usize {
        self.samples.len()
    }

    /// Attribute-universe size `m` (number of rows of the indicator).
    pub fn m(&self) -> u64 {
        self.m
    }

    /// Total number of nonzeros of the indicator matrix.
    pub fn nnz(&self) -> u64 {
        self.samples.iter().map(|s| s.len() as u64).sum()
    }

    /// Density `nnz / (m · n)` of the indicator matrix.
    pub fn density(&self) -> f64 {
        if self.m == 0 || self.samples.is_empty() {
            return 0.0;
        }
        self.nnz() as f64 / (self.m as f64 * self.samples.len() as f64)
    }

    /// Sample names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The sorted values of sample `i` (`X_i`).
    pub fn sample(&self, i: usize) -> &[u64] {
        &self.samples[i]
    }

    /// Per-sample cardinalities `|X_i|`.
    pub fn cardinalities(&self) -> Vec<u64> {
        self.samples.iter().map(|s| s.len() as u64).collect()
    }

    /// Extract the rows of a batch `[lo, hi)` for the given samples: for
    /// each selected sample, the sorted list of *batch-local* row indices
    /// (`value − lo`). This is the column view of `A^(l)` in Eq. (3).
    pub fn batch_columns(&self, lo: u64, hi: u64, sample_indices: &[usize]) -> Vec<Vec<usize>> {
        sample_indices
            .iter()
            .map(|&i| {
                let s = &self.samples[i];
                let start = s.partition_point(|&v| v < lo);
                let end = s.partition_point(|&v| v < hi);
                s[start..end].iter().map(|&v| (v - lo) as usize).collect()
            })
            .collect()
    }

    /// Extract the rows of a batch `[lo, hi)` for *all* samples.
    pub fn batch_columns_all(&self, lo: u64, hi: u64) -> Vec<Vec<usize>> {
        let all: Vec<usize> = (0..self.n()).collect();
        self.batch_columns(lo, hi, &all)
    }

    /// Number of nonzeros falling into the batch `[lo, hi)`.
    pub fn batch_nnz(&self, lo: u64, hi: u64) -> u64 {
        self.samples
            .iter()
            .map(|s| (s.partition_point(|&v| v < hi) - s.partition_point(|&v| v < lo)) as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gas_genomics::kmer::KmerExtractor;

    fn collection() -> SampleCollection {
        SampleCollection::from_sorted_sets(vec![
            vec![0, 5, 9, 120],
            vec![5, 9],
            vec![],
            vec![119, 121],
        ])
        .unwrap()
    }

    #[test]
    fn construction_and_stats() {
        let c = collection();
        assert_eq!(c.n(), 4);
        assert_eq!(c.m(), 122);
        assert_eq!(c.nnz(), 8);
        assert_eq!(c.cardinalities(), vec![4, 2, 0, 2]);
        assert!((c.density() - 8.0 / (122.0 * 4.0)).abs() < 1e-12);
        assert_eq!(c.names().len(), 4);
        assert_eq!(c.sample(1), &[5, 9]);
    }

    #[test]
    fn unsorted_inputs_are_rejected_or_fixed() {
        assert!(SampleCollection::from_sorted_sets(vec![vec![3, 1]]).is_err());
        assert!(SampleCollection::from_sorted_sets(vec![vec![1, 1]]).is_err());
        assert!(SampleCollection::from_sorted_sets(vec![]).is_err());
        let fixed = SampleCollection::from_sets(vec![vec![3, 1, 3]]).unwrap();
        assert_eq!(fixed.sample(0), &[1, 3]);
    }

    #[test]
    fn universe_and_names_overrides() {
        let c = collection().with_universe(1000).unwrap();
        assert_eq!(c.m(), 1000);
        assert!(collection().with_universe(10).is_err());
        let c =
            collection().with_names(vec!["a".into(), "b".into(), "c".into(), "d".into()]).unwrap();
        assert_eq!(c.names()[3], "d");
        assert!(collection().with_names(vec!["a".into()]).is_err());
    }

    #[test]
    fn batch_columns_are_local_and_sorted() {
        let c = collection();
        // Batch rows [5, 120): sample 0 contributes {5,9} -> {0,4},
        // sample 3 contributes {119} -> {114}.
        let cols = c.batch_columns_all(5, 120);
        assert_eq!(cols[0], vec![0, 4]);
        assert_eq!(cols[1], vec![0, 4]);
        assert!(cols[2].is_empty());
        assert_eq!(cols[3], vec![114]);
        assert_eq!(c.batch_nnz(5, 120), 5);
        // Selecting a subset of samples keeps the order of the request.
        let subset = c.batch_columns(5, 120, &[3, 0]);
        assert_eq!(subset[0], vec![114]);
        assert_eq!(subset[1], vec![0, 4]);
    }

    #[test]
    fn batches_tile_the_universe() {
        let c = collection();
        let mut total = 0;
        for (lo, hi) in [(0u64, 50u64), (50, 100), (100, 122)] {
            total += c.batch_nnz(lo, hi);
        }
        assert_eq!(total, c.nnz());
    }

    #[test]
    fn from_kmer_samples_preserves_names() {
        let ex = KmerExtractor::new(5).unwrap();
        let samples = vec![
            KmerSample::from_sequence("human", b"ACGTACGTAA", &ex),
            KmerSample::from_sequence("mouse", b"TTTTACGTAA", &ex),
        ];
        let c = SampleCollection::from_kmer_samples(&samples).unwrap();
        assert_eq!(c.n(), 2);
        assert_eq!(c.names(), &["human".to_string(), "mouse".to_string()]);
        assert!(c.m() <= 1 << 10);
    }
}
