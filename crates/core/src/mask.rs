//! Bit-mask compression of a filtered batch (Section III-B, Eq. 7 input).
//!
//! After zero-row filtering, the surviving rows of a batch are packed `b`
//! at a time into machine words: the resulting matrix `Â^(l)` has
//! `⌈rows/b⌉` word rows and one column per sample, and the matrix product
//! runs over the popcount-AND semiring. We use `b = 64` (the paper
//! discusses `b = 32` or `64`).

use gas_sparse::bitmat::BitMatrix;
use gas_sparse::coo::CooMatrix;
use gas_sparse::csc::CscMatrix;
use gas_sparse::csr::CsrMatrix;

use crate::error::CoreResult;
use crate::filter::{apply_filter, batch_row_filter, RowFilter};

/// A batch of the indicator matrix after filtering and (optionally)
/// masking, ready for the `AᵀA` kernel.
#[derive(Debug, Clone, PartialEq)]
pub enum PreparedBatch {
    /// Bit-packed representation (the paper's default path).
    Masked(BitMatrix),
    /// Unpacked boolean representation (ablation path: filter only).
    Unmasked {
        /// Column-major view (samples are columns).
        csc: CscMatrix<u64>,
        /// Row-major view of the same matrix.
        csr: CsrMatrix<u64>,
    },
}

impl PreparedBatch {
    /// Number of stored entries (words when masked, booleans otherwise).
    pub fn stored_entries(&self) -> usize {
        match self {
            PreparedBatch::Masked(b) => b.nnz_words(),
            PreparedBatch::Unmasked { csc, .. } => csc.nnz(),
        }
    }

    /// Number of matrix rows the `AᵀA` kernel will iterate over.
    pub fn kernel_rows(&self) -> usize {
        match self {
            PreparedBatch::Masked(b) => b.word_rows(),
            PreparedBatch::Unmasked { csc, .. } => csc.nrows(),
        }
    }

    /// Per-sample cardinality contributions of this batch.
    pub fn col_cardinalities(&self) -> Vec<u64> {
        match self {
            PreparedBatch::Masked(b) => b.col_popcounts(),
            PreparedBatch::Unmasked { csc, .. } => {
                (0..csc.ncols()).map(|j| csc.col_nnz(j) as u64).collect()
            }
        }
    }
}

/// Filter and pack one batch given its per-sample column lists
/// (batch-local row indices). Returns the prepared batch together with the
/// filter that was applied (for diagnostics).
pub fn prepare_batch(
    batch_rows: usize,
    columns: &[Vec<usize>],
    use_filter: bool,
    use_bitmask: bool,
) -> CoreResult<(PreparedBatch, RowFilter)> {
    let filter = if use_filter {
        batch_row_filter(batch_rows, columns)
    } else {
        RowFilter::from_local(batch_rows, (0..batch_rows).collect())
    };
    let filtered = if use_filter { apply_filter(columns, &filter) } else { columns.to_vec() };
    let rows = filter.num_nonzero_rows();
    if use_bitmask {
        let bm = BitMatrix::from_columns(rows, &filtered)?;
        Ok((PreparedBatch::Masked(bm), filter))
    } else {
        let mut coo = CooMatrix::<u64>::with_capacity(
            rows.max(1),
            filtered.len(),
            filtered.iter().map(|c| c.len()).sum(),
        );
        for (j, col) in filtered.iter().enumerate() {
            for &r in col {
                coo.push(r, j, 1)?;
            }
        }
        let csc = coo.to_csc();
        let csr = coo.to_csr();
        Ok((PreparedBatch::Unmasked { csc, csr }, filter))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn columns() -> Vec<Vec<usize>> {
        vec![vec![3, 500, 900], vec![3, 901], vec![]]
    }

    #[test]
    fn masked_batch_compresses_rows() {
        let (batch, filter) = prepare_batch(1000, &columns(), true, true).unwrap();
        assert_eq!(filter.num_nonzero_rows(), 4);
        // 4 surviving rows pack into a single 64-bit word row.
        assert_eq!(batch.kernel_rows(), 1);
        assert_eq!(batch.col_cardinalities(), vec![3, 2, 0]);
        match &batch {
            PreparedBatch::Masked(b) => {
                assert_eq!(b.orig_rows(), 4);
                assert_eq!(b.ncols(), 3);
            }
            _ => panic!("expected masked batch"),
        }
    }

    #[test]
    fn unmasked_batch_keeps_boolean_rows() {
        let (batch, filter) = prepare_batch(1000, &columns(), true, false).unwrap();
        assert_eq!(filter.num_nonzero_rows(), 4);
        assert_eq!(batch.kernel_rows(), 4);
        assert_eq!(batch.stored_entries(), 5);
        assert_eq!(batch.col_cardinalities(), vec![3, 2, 0]);
    }

    #[test]
    fn disabling_filter_keeps_all_rows() {
        let (masked, filter) = prepare_batch(1000, &columns(), false, true).unwrap();
        assert_eq!(filter.num_nonzero_rows(), 1000);
        assert_eq!(masked.kernel_rows(), 1000usize.div_ceil(64));
        let (unmasked, _) = prepare_batch(1000, &columns(), false, false).unwrap();
        assert_eq!(unmasked.kernel_rows(), 1000);
        // Cardinalities are invariant under filtering/masking choices.
        assert_eq!(masked.col_cardinalities(), unmasked.col_cardinalities());
    }

    #[test]
    fn filtering_plus_masking_reduces_storage() {
        let (masked, _) = prepare_batch(100_000, &columns(), true, true).unwrap();
        let (unfiltered, _) = prepare_batch(100_000, &columns(), false, false).unwrap();
        assert!(masked.kernel_rows() < unfiltered.kernel_rows());
        assert!(masked.stored_entries() <= unfiltered.stored_entries());
    }

    #[test]
    fn empty_batch_is_handled() {
        let (batch, filter) = prepare_batch(64, &[vec![], vec![]], true, true).unwrap();
        assert_eq!(filter.num_nonzero_rows(), 0);
        assert_eq!(batch.kernel_rows(), 0);
        assert_eq!(batch.col_cardinalities(), vec![0, 0]);
    }
}
