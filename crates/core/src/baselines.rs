//! Baseline all-pairs Jaccard implementations.
//!
//! The paper positions SimilarityAtScale against two families of prior
//! work (Section I / VI):
//!
//! * single-node exact tools (DSM-style): exact but limited to one
//!   machine — reproduced by [`crate::jaccard::jaccard_exact_pairwise`]
//!   and its Rayon-parallel variant here;
//! * MapReduce/allreduce-style distributed schemes, which "need
//!   asymptotically more communication due to using the allreduce
//!   collective communication pattern over reducers" — reproduced by
//!   [`allreduce_jaccard_distributed`], which computes the same result
//!   but allreduces the full `n × n` intersection matrix every batch.
//!
//! Running both under the same simulated runtime lets the benchmarks
//! compare communication volumes directly (the `comm_volume` experiment).

use gas_dstsim::cost::{AggregateCost, CostReport};
use gas_dstsim::machine::Machine;
use gas_dstsim::runtime::Runtime;
use gas_sparse::dense::DenseMatrix;
use gas_sparse::semiring::PopcountAnd;
use gas_sparse::spgemm::ata_dense_parallel;
use rayon::prelude::*;

use crate::batch::BatchPlan;
use crate::config::SimilarityConfig;
use crate::error::{CoreError, CoreResult};
use crate::indicator::SampleCollection;
use crate::jaccard::{sorted_intersection_size, SimilarityResult};
use crate::mask::{prepare_batch, PreparedBatch};

/// Summary of a baseline distributed run (same shape as the
/// SimilarityAtScale summary, for apples-to-apples comparison).
#[derive(Debug, Clone)]
pub struct BaselineRunSummary {
    /// The (exact) similarity result.
    pub result: SimilarityResult,
    /// Per-rank communication counters.
    pub reports: Vec<CostReport>,
    /// Aggregate counters.
    pub aggregate: AggregateCost,
    /// Number of ranks used.
    pub nranks: usize,
}

/// Exact all-pairs Jaccard on a single node, parallelized over sample
/// pairs with Rayon (the strongest single-node exact baseline).
pub fn exact_pairwise_parallel(collection: &SampleCollection) -> SimilarityResult {
    let n = collection.n();
    let rows: Vec<Vec<u64>> = (0..n)
        .into_par_iter()
        .map(|i| {
            let mut row = vec![0u64; n];
            for (j, slot) in row.iter_mut().enumerate() {
                *slot = if i == j {
                    collection.sample(i).len() as u64
                } else {
                    sorted_intersection_size(collection.sample(i), collection.sample(j))
                };
            }
            row
        })
        .collect();
    let mut flat = Vec::with_capacity(n * n);
    for r in rows {
        flat.extend(r);
    }
    let b = DenseMatrix::from_vec(n, n, flat).expect("n*n elements by construction");
    SimilarityResult::from_intersections(b, collection.cardinalities())
        .expect("dimensions agree by construction")
}

/// The allreduce-style distributed baseline.
///
/// The attribute rows are block-partitioned over the ranks; each rank
/// builds and multiplies its *own* rows of every batch locally (so the
/// arithmetic is identical to SimilarityAtScale), but the partial `n × n`
/// intersection matrix is then combined with a full allreduce each batch —
/// the communication pattern of the MapReduce-era schemes the paper
/// criticizes. The result is exact; only the data movement differs.
pub fn allreduce_jaccard_distributed(
    collection: &SampleCollection,
    config: &SimilarityConfig,
    nranks: usize,
    machine: &Machine,
) -> CoreResult<BaselineRunSummary> {
    config.validate()?;
    if nranks == 0 {
        return Err(CoreError::InvalidConfig("need at least one rank".to_string()));
    }
    let n = collection.n();
    let plan = BatchPlan::from_config(config, collection, nranks)?;
    let use_filter = config.use_zero_row_filter;
    let use_bitmask = config.use_bitmask;
    let runtime = Runtime::new(nranks).with_machine(machine.clone());

    type RankOutput = Result<(Vec<u64>, Vec<u64>), CoreError>;

    let out = runtime.run(move |ctx| -> RankOutput {
        let world = ctx.world();
        let p = ctx.nranks();
        let me = ctx.rank();
        let mut b_flat = vec![0u64; n * n];
        let mut card = vec![0u64; n];
        for (lo, hi) in plan.iter() {
            // This rank handles its 1/p slice of the batch's rows.
            let rows = hi - lo;
            let my_lo = lo + rows * me as u64 / p as u64;
            let my_hi = lo + rows * (me as u64 + 1) / p as u64;
            let columns = collection.batch_columns_all(my_lo, my_hi);
            let (prepared, _) =
                prepare_batch((my_hi - my_lo) as usize, &columns, use_filter, use_bitmask)?;
            for (i, c) in prepared.col_cardinalities().into_iter().enumerate() {
                card[i] += c;
            }
            let partial = match &prepared {
                PreparedBatch::Masked(bm) => {
                    ata_dense_parallel::<PopcountAnd>(bm.as_csc(), &bm.to_csr())?
                }
                PreparedBatch::Unmasked { csc, csr } => {
                    ata_dense_parallel::<gas_sparse::semiring::PlusTimes<u64>>(csc, csr)?
                }
            };
            ctx.add_flops(partial.as_slice().len() as u64);
            // The defining (and expensive) step: allreduce the full n x n
            // partial result every batch, then fold it into the running
            // total held redundantly on every rank.
            let reduced = world.allreduce_sum(partial.as_slice())?;
            for (acc, v) in b_flat.iter_mut().zip(reduced) {
                *acc += v;
            }
            ctx.record_superstep();
        }
        let card = world.allreduce_sum(&card)?;
        Ok((b_flat, card))
    })?;

    let reports = out.reports;
    let aggregate = AggregateCost::from_reports(&reports);
    let mut results = Vec::with_capacity(out.results.len());
    for r in out.results {
        results.push(r?);
    }
    let (b_flat, card) = results.swap_remove(0);
    let b = DenseMatrix::from_vec(n, n, b_flat)?;
    let result = SimilarityResult::from_intersections(b, card)?;
    Ok(BaselineRunSummary { result, reports, aggregate, nranks })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::similarity_at_scale_distributed;
    use crate::jaccard::jaccard_exact_pairwise;
    use gas_genomics::datasets::DatasetSpec;

    fn collection() -> SampleCollection {
        let samples = DatasetSpec::explicit(3000, 10, 0.03, 5).generate().unwrap();
        SampleCollection::from_sorted_sets(samples).unwrap()
    }

    #[test]
    fn parallel_exact_matches_sequential_exact() {
        let c = collection();
        let a = jaccard_exact_pairwise(&c);
        let b = exact_pairwise_parallel(&c);
        assert_eq!(a.intersections(), b.intersections());
        assert_eq!(a.cardinalities(), b.cardinalities());
    }

    #[test]
    fn allreduce_baseline_is_exact() {
        let c = collection();
        let exact = jaccard_exact_pairwise(&c);
        for nranks in [1usize, 3, 4] {
            let summary = allreduce_jaccard_distributed(
                &c,
                &SimilarityConfig::with_batches(2),
                nranks,
                &Machine::laptop(),
            )
            .unwrap();
            assert_eq!(summary.result.intersections(), exact.intersections());
            assert_eq!(summary.result.cardinalities(), exact.cardinalities());
            assert_eq!(summary.nranks, nranks);
        }
    }

    #[test]
    fn allreduce_baseline_moves_more_bytes_than_similarity_at_scale() {
        // The motivating comparison: at equal rank counts and batch
        // counts, the allreduce pattern must move (much) more data than
        // the communication-avoiding algorithm once n is non-trivial.
        let samples = DatasetSpec::explicit(4000, 24, 0.02, 9).generate().unwrap();
        let c = SampleCollection::from_sorted_sets(samples).unwrap();
        let config = SimilarityConfig::with_batches(4);
        let nranks = 4;
        let ours =
            similarity_at_scale_distributed(&c, &config, nranks, &Machine::laptop()).unwrap();
        let baseline =
            allreduce_jaccard_distributed(&c, &config, nranks, &Machine::laptop()).unwrap();
        assert_eq!(ours.result.intersections(), baseline.result.intersections());
        assert!(
            baseline.aggregate.total_bytes_sent > ours.aggregate.total_bytes_sent,
            "allreduce {} bytes vs ours {} bytes",
            baseline.aggregate.total_bytes_sent,
            ours.aggregate.total_bytes_sent
        );
    }

    #[test]
    fn zero_ranks_rejected() {
        let c = collection();
        assert!(allreduce_jaccard_distributed(
            &c,
            &SimilarityConfig::default(),
            0,
            &Machine::laptop()
        )
        .is_err());
    }
}
