//! Jaccard similarity/distance matrices and the exact reference
//! implementation.
//!
//! Given the intersection-cardinality matrix `B = AᵀA` and the per-sample
//! cardinalities `ĉ`, the similarity matrix follows Eq. (2):
//! `c_ij = ĉ_i + ĉ_j − b_ij`, `s_ij = b_ij / c_ij`, `d_ij = 1 − s_ij`,
//! with the convention `J = 1` when both samples are empty.

use gas_sparse::dense::DenseMatrix;
use serde::{Deserialize, Serialize};

use crate::error::{CoreError, CoreResult};
use crate::indicator::SampleCollection;

/// The output of a SimilarityAtScale run: intersection counts, sample
/// cardinalities, and the derived similarity/distance matrices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimilarityResult {
    b: DenseMatrix<u64>,
    cardinalities: Vec<u64>,
    similarity: DenseMatrix<f64>,
}

impl SimilarityResult {
    /// Derive the similarity matrix from `B` and `ĉ` (Eq. 2).
    pub fn from_intersections(b: DenseMatrix<u64>, cardinalities: Vec<u64>) -> CoreResult<Self> {
        let n = cardinalities.len();
        if b.nrows() != n || b.ncols() != n {
            return Err(CoreError::InvalidInput(format!(
                "B is {}x{} but there are {} cardinalities",
                b.nrows(),
                b.ncols(),
                n
            )));
        }
        let mut s = DenseMatrix::<f64>::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let inter = b.get(i, j);
                let union = cardinalities[i] + cardinalities[j] - inter;
                let v = if union == 0 {
                    1.0 // Both samples empty: J = 1 by definition.
                } else {
                    inter as f64 / union as f64
                };
                s.set(i, j, v);
            }
        }
        Ok(SimilarityResult { b, cardinalities, similarity: s })
    }

    /// Number of samples.
    pub fn n(&self) -> usize {
        self.cardinalities.len()
    }

    /// The intersection-cardinality matrix `B`.
    pub fn intersections(&self) -> &DenseMatrix<u64> {
        &self.b
    }

    /// The per-sample cardinalities `ĉ`.
    pub fn cardinalities(&self) -> &[u64] {
        &self.cardinalities
    }

    /// The Jaccard similarity matrix `S`.
    pub fn similarity(&self) -> &DenseMatrix<f64> {
        &self.similarity
    }

    /// The Jaccard distance matrix `D = 1 − S`.
    pub fn distance(&self) -> DenseMatrix<f64> {
        self.similarity.map(|v| 1.0 - v)
    }

    /// The union-cardinality matrix `C` (`c_ij = ĉ_i + ĉ_j − b_ij`).
    pub fn unions(&self) -> DenseMatrix<u64> {
        let n = self.n();
        let mut c = DenseMatrix::<u64>::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                c.set(i, j, self.cardinalities[i] + self.cardinalities[j] - self.b.get(i, j));
            }
        }
        c
    }

    /// Maximum absolute element-wise difference of the similarity matrices.
    pub fn max_similarity_diff(&self, other: &SimilarityResult) -> CoreResult<f64> {
        Ok(self.similarity.max_abs_diff(other.similarity())?)
    }
}

/// Exact all-pairs Jaccard similarity computed directly from the sorted
/// sample sets (no matrix formulation). This is the correctness reference
/// every other path is validated against, and also serves as the
/// single-node "exact tool" comparison point of Table II.
pub fn jaccard_exact_pairwise(collection: &SampleCollection) -> SimilarityResult {
    let n = collection.n();
    let mut b = DenseMatrix::<u64>::zeros(n, n);
    for i in 0..n {
        b.set(i, i, collection.sample(i).len() as u64);
        for j in (i + 1)..n {
            let inter = sorted_intersection_size(collection.sample(i), collection.sample(j));
            b.set(i, j, inter);
            b.set(j, i, inter);
        }
    }
    SimilarityResult::from_intersections(b, collection.cardinalities())
        .expect("dimensions agree by construction")
}

/// Size of the intersection of two strictly-increasing slices.
pub fn sorted_intersection_size(a: &[u64], b: &[u64]) -> u64 {
    let (mut i, mut j, mut count) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collection() -> SampleCollection {
        SampleCollection::from_sorted_sets(vec![
            vec![1, 2, 3, 4, 5],
            vec![3, 4, 5, 6, 7],
            vec![100, 200],
            vec![],
        ])
        .unwrap()
    }

    #[test]
    fn exact_pairwise_matches_hand_computed_values() {
        let r = jaccard_exact_pairwise(&collection());
        let s = r.similarity();
        assert!((s.get(0, 1) - 3.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.get(0, 2), 0.0);
        assert_eq!(s.get(0, 0), 1.0);
        assert_eq!(s.get(2, 2), 1.0);
        // Empty vs non-empty -> 0; empty vs empty -> 1.
        assert_eq!(s.get(3, 0), 0.0);
        assert_eq!(s.get(3, 3), 1.0);
        assert!(s.is_symmetric(0.0));
    }

    #[test]
    fn distance_is_one_minus_similarity() {
        let r = jaccard_exact_pairwise(&collection());
        let d = r.distance();
        let s = r.similarity();
        for i in 0..r.n() {
            for j in 0..r.n() {
                assert!((d.get(i, j) + s.get(i, j) - 1.0).abs() < 1e-12);
            }
        }
        assert_eq!(d.get(0, 0), 0.0);
    }

    #[test]
    fn unions_follow_inclusion_exclusion() {
        let r = jaccard_exact_pairwise(&collection());
        let c = r.unions();
        assert_eq!(c.get(0, 1), 7);
        assert_eq!(c.get(0, 2), 7);
        assert_eq!(c.get(3, 3), 0);
        assert_eq!(c.get(0, 0), 5);
    }

    #[test]
    fn from_intersections_validates_shapes() {
        let b = DenseMatrix::<u64>::zeros(3, 3);
        assert!(SimilarityResult::from_intersections(b, vec![1, 2]).is_err());
        let b = DenseMatrix::<u64>::zeros(2, 3);
        assert!(SimilarityResult::from_intersections(b, vec![1, 2, 3]).is_err());
    }

    #[test]
    fn triangle_inequality_of_jaccard_distance() {
        // d_J is a proper metric; check the triangle inequality on a few
        // concrete sets.
        let c = SampleCollection::from_sorted_sets(vec![
            vec![1, 2, 3],
            vec![2, 3, 4],
            vec![3, 4, 5],
            vec![10, 20],
        ])
        .unwrap();
        let d = jaccard_exact_pairwise(&c).distance();
        for i in 0..4 {
            for j in 0..4 {
                for k in 0..4 {
                    assert!(d.get(i, j) <= d.get(i, k) + d.get(k, j) + 1e-12);
                }
            }
        }
    }

    #[test]
    fn sorted_intersection_size_edge_cases() {
        assert_eq!(sorted_intersection_size(&[], &[]), 0);
        assert_eq!(sorted_intersection_size(&[1, 2], &[]), 0);
        assert_eq!(sorted_intersection_size(&[1, 2, 3], &[1, 2, 3]), 3);
        assert_eq!(sorted_intersection_size(&[1, 3, 5], &[2, 4, 6]), 0);
    }

    #[test]
    fn max_similarity_diff_detects_differences() {
        let a = jaccard_exact_pairwise(&collection());
        let b = jaccard_exact_pairwise(&collection());
        assert_eq!(a.max_similarity_diff(&b).unwrap(), 0.0);
    }
}
