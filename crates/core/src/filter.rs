//! Zero-row filtering of a batch (Eqs. 5–6).
//!
//! Genomic indicator matrices are hypersparse: within a batch of `m̃`
//! rows, the overwhelming majority have no entry in any sample. Before
//! bit-packing, SimilarityAtScale builds a filter vector `f^(l)` marking
//! the rows that appear in at least one sample and renumbers the
//! surviving rows contiguously via a prefix sum. This module provides the
//! shared-memory filter; the distributed variant (built on the simulated
//! runtime's collectives) lives in `gas_sparse::dist::filter`.

pub use gas_sparse::dist::filter::RowFilter;

/// Build the zero-row filter of a batch from its per-sample column lists
/// (batch-local row indices).
pub fn batch_row_filter(batch_rows: usize, columns: &[Vec<usize>]) -> RowFilter {
    let mut rows: Vec<usize> = columns.iter().flatten().copied().collect();
    rows.sort_unstable();
    rows.dedup();
    RowFilter::from_local(batch_rows, rows)
}

/// Apply a filter to the batch columns: every surviving row index is
/// replaced by its compacted index; rows removed by the filter are
/// dropped (they cannot occur if the filter was built from the same
/// columns, but an externally supplied filter may be narrower).
pub fn apply_filter(columns: &[Vec<usize>], filter: &RowFilter) -> Vec<Vec<usize>> {
    columns
        .iter()
        .map(|col| col.iter().filter_map(|&r| filter.compacted_index(r)).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_collects_union_of_rows() {
        let columns = vec![vec![2, 900], vec![2, 7], vec![]];
        let f = batch_row_filter(1000, &columns);
        assert_eq!(f.nonzero_rows(), &[2, 7, 900]);
        assert_eq!(f.num_nonzero_rows(), 3);
        assert!((f.removed_fraction() - 0.997).abs() < 1e-9);
    }

    #[test]
    fn apply_filter_renumbers_contiguously() {
        let columns = vec![vec![2, 900], vec![2, 7], vec![]];
        let f = batch_row_filter(1000, &columns);
        let filtered = apply_filter(&columns, &f);
        assert_eq!(filtered[0], vec![0, 2]);
        assert_eq!(filtered[1], vec![0, 1]);
        assert!(filtered[2].is_empty());
    }

    #[test]
    fn filtering_preserves_per_column_counts() {
        let columns = vec![vec![10, 20, 30], vec![20, 40], vec![999]];
        let f = batch_row_filter(1000, &columns);
        let filtered = apply_filter(&columns, &f);
        for (orig, filt) in columns.iter().zip(filtered.iter()) {
            assert_eq!(orig.len(), filt.len());
        }
    }

    #[test]
    fn narrower_external_filter_drops_rows() {
        let columns = vec![vec![1, 5, 9]];
        let narrow = RowFilter::from_local(10, vec![5]);
        let filtered = apply_filter(&columns, &narrow);
        assert_eq!(filtered[0], vec![0]);
    }

    #[test]
    fn empty_batch_yields_empty_filter() {
        let f = batch_row_filter(100, &[vec![], vec![]]);
        assert_eq!(f.num_nonzero_rows(), 0);
        assert_eq!(apply_filter(&[vec![], vec![]], &f), vec![vec![], vec![]]);
    }
}
