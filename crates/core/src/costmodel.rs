//! The paper's analytic BSP cost model (Section III-C).
//!
//! The evaluation scales to 1024 nodes / 32,768 ranks — far beyond what
//! the simulated runtime can execute natively as threads. The benchmark
//! harness therefore combines *measured* per-element kernel rates (from
//! runs it can execute) with the paper's analytic per-batch cost
//!
//! ```text
//! T(z, n, M, c, p) = O( (1 + z/(M√(cp)))·α
//!                     + (z/√(cp) + c·n²/p + p)·β
//!                     + (F/p)·γ )
//! ```
//!
//! and the total cost `(Z / (M·p)) · T̃(n, M, p)` to project execution
//! times at the paper's node counts. The strong-scaling efficiency result
//! (`E_p = O(1)` in the memory-bound regime) is also exposed so the
//! theory experiment can chart it.

use gas_dstsim::cost::{CostModel, CostReport};
use serde::{Deserialize, Serialize};

use crate::error::{CoreError, CoreResult};

/// One measured sample for fitting the α–β–γ machine parameters: the
/// per-rank counters of a finished run plus the seconds that rank spent.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostObservation {
    /// Supersteps (synchronisation rounds) the rank executed.
    pub supersteps: f64,
    /// Bytes the rank received over the network.
    pub bytes: f64,
    /// Multiply-accumulate operations the rank performed.
    pub flops: f64,
    /// Measured wall-clock seconds for the rank.
    pub seconds: f64,
}

impl CostObservation {
    /// Build an observation from a simulator [`CostReport`].
    pub fn from_report(report: &CostReport) -> Self {
        CostObservation {
            supersteps: report.supersteps as f64,
            bytes: report.bytes_received as f64,
            flops: report.flops as f64,
            seconds: report.measured_seconds,
        }
    }
}

/// Least-squares fit of the α–β–γ machine parameters from measured
/// per-rank observations: solves `argmin Σ (s·α + b·β + f·γ − t)²` via the
/// 3×3 normal equations with column scaling (the raw columns span ~10
/// orders of magnitude). Negative solutions are clamped to zero — a
/// counter whose contribution the measurements cannot resolve costs
/// nothing rather than producing a nonsensical negative rate. Memory and
/// streaming parameters are carried over from `base` since the
/// observations say nothing about them.
pub fn fit_cost_model(observations: &[CostObservation], base: CostModel) -> CoreResult<CostModel> {
    if observations.len() < 3 {
        return Err(CoreError::InvalidConfig(format!(
            "fitting three machine parameters needs at least 3 observations, got {}",
            observations.len()
        )));
    }
    // Column scales keep the normal equations well conditioned.
    let mut scale = [0.0f64; 3];
    for o in observations {
        scale[0] = scale[0].max(o.supersteps.abs());
        scale[1] = scale[1].max(o.bytes.abs());
        scale[2] = scale[2].max(o.flops.abs());
    }
    for s in &mut scale {
        if *s == 0.0 {
            *s = 1.0;
        }
    }
    // Accumulate AᵀA (3×3 symmetric) and Aᵀb on the scaled columns.
    let mut ata = [[0.0f64; 3]; 3];
    let mut atb = [0.0f64; 3];
    for o in observations {
        let row = [o.supersteps / scale[0], o.bytes / scale[1], o.flops / scale[2]];
        for i in 0..3 {
            for j in 0..3 {
                ata[i][j] += row[i] * row[j];
            }
            atb[i] += row[i] * o.seconds;
        }
    }
    // Gaussian elimination with partial pivoting.
    let mut a = ata;
    let mut b = atb;
    for col in 0..3 {
        let pivot = (col..3)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .expect("non-empty pivot range");
        if a[pivot][col].abs() < 1e-12 {
            return Err(CoreError::InvalidConfig(
                "observations do not determine the machine parameters (singular system); \
                 vary the rank count or batch size across runs"
                    .to_string(),
            ));
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        let lead = a[col];
        for row in (col + 1)..3 {
            let factor = a[row][col] / lead[col];
            for (entry, l) in a[row].iter_mut().zip(lead).skip(col) {
                *entry -= factor * l;
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = [0.0f64; 3];
    for col in (0..3).rev() {
        let mut acc = b[col];
        for k in (col + 1)..3 {
            acc -= a[col][k] * x[k];
        }
        x[col] = acc / a[col][col];
    }
    Ok(CostModel {
        alpha: (x[0] / scale[0]).max(0.0),
        beta: (x[1] / scale[1]).max(0.0),
        gamma: (x[2] / scale[2]).max(0.0),
        ..base
    })
}

/// Problem/machine parameters for one projected configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProjectionInput {
    /// Number of data samples `n`.
    pub n_samples: usize,
    /// Total nonzeros `Z` of the (packed) indicator matrix.
    pub total_nonzeros: f64,
    /// Total multiply-accumulate operations `G` of the full product.
    pub total_flops: f64,
    /// Number of ranks `p`.
    pub ranks: usize,
    /// Words of memory per rank `M` (elements, not bytes).
    pub mem_words_per_rank: f64,
    /// Replication factor `c`.
    pub replication: usize,
}

/// The analytic cost model: the paper's formulas evaluated with a concrete
/// α–β–γ machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaperCostModel {
    /// The α–β–γ machine parameters (β interpreted per word of 8 bytes).
    pub machine: CostModel,
}

impl PaperCostModel {
    /// Wrap a machine cost model.
    pub fn new(machine: CostModel) -> Self {
        PaperCostModel { machine }
    }

    /// β per machine word (the analysis counts words, the machine model
    /// counts bytes).
    fn beta_word(&self) -> f64 {
        self.machine.beta * 8.0
    }

    /// Per-batch BSP cost `T(z, n, M, c, p)` for a batch with `z`
    /// nonzeros and `flops` multiply-accumulate operations.
    pub fn batch_cost(&self, z: f64, input: &ProjectionInput, flops: f64) -> CoreResult<f64> {
        let p = input.ranks as f64;
        let c = input.replication.max(1) as f64;
        let n = input.n_samples as f64;
        let m_words = input.mem_words_per_rank;
        if p < 1.0 || m_words <= 0.0 {
            return Err(CoreError::InvalidConfig(
                "projection needs at least one rank and positive memory".to_string(),
            ));
        }
        let latency_terms = 1.0 + z / (m_words * (c * p).sqrt());
        let bandwidth_words = z / (c * p).sqrt() + c * n * n / p + p;
        let compute = flops / p;
        Ok(latency_terms * self.machine.alpha
            + bandwidth_words * self.beta_word()
            + compute * self.machine.gamma)
    }

    /// The simplified memory-bound per-batch cost `T̃(n, M, p)` obtained by
    /// choosing `z = Θ(M·p)` and `c = Θ(min(p, M·p/n²))`.
    pub fn simplified_batch_cost(
        &self,
        input: &ProjectionInput,
        batch_flops: f64,
    ) -> CoreResult<f64> {
        let n = input.n_samples as f64;
        let m_words = input.mem_words_per_rank;
        let p = input.ranks as f64;
        if p < 1.0 || m_words <= 0.0 {
            return Err(CoreError::InvalidConfig(
                "projection needs at least one rank and positive memory".to_string(),
            ));
        }
        Ok((n / m_words.sqrt()) * self.machine.alpha
            + n * m_words.sqrt() * self.beta_word()
            + (batch_flops / p) * self.machine.gamma)
    }

    /// Total projected cost: `(Z / (M·p)) · T̃`, i.e. the number of
    /// maximal batches times the per-batch cost, with the compute term
    /// using the overall `G / p`.
    pub fn total_cost(&self, input: &ProjectionInput) -> CoreResult<f64> {
        let p = input.ranks as f64;
        let m_words = input.mem_words_per_rank;
        let z = input.total_nonzeros;
        let n = input.n_samples as f64;
        if p < 1.0 || m_words <= 0.0 {
            return Err(CoreError::InvalidConfig(
                "projection needs at least one rank and positive memory".to_string(),
            ));
        }
        let batches = (z / (m_words * p)).max(1.0);
        let latency = batches * (n / m_words.sqrt()) * self.machine.alpha;
        let bandwidth = batches * n * m_words.sqrt() * self.beta_word();
        let compute = input.total_flops / p * self.machine.gamma;
        Ok(latency + bandwidth + compute)
    }

    /// Strong-scaling parallel efficiency `E_p`: the ratio of the cost of
    /// processing a base batch on `p0` ranks to the cost of processing a
    /// `p/p0`-times larger batch on `p` ranks with proportional
    /// replication (the paper shows this is `O(1)`).
    pub fn strong_scaling_efficiency(
        &self,
        base: &ProjectionInput,
        scaled_ranks: usize,
    ) -> CoreResult<f64> {
        if scaled_ranks < base.ranks || base.ranks == 0 {
            return Err(CoreError::InvalidConfig(
                "scaled rank count must be at least the base rank count".to_string(),
            ));
        }
        let factor = scaled_ranks as f64 / base.ranks as f64;
        let base_z = base.mem_words_per_rank * base.ranks as f64;
        let base_flops = base.total_flops;
        let t0 = self.batch_cost(base_z, base, base_flops)?;
        let scaled = ProjectionInput {
            ranks: scaled_ranks,
            replication: ((base.replication as f64 * factor).round() as usize).max(1),
            ..*base
        };
        let t1 = self.batch_cost(base_z * factor, &scaled, base_flops * factor)?;
        Ok(t0 / t1)
    }

    /// Project a full-dataset execution time from a measured per-batch
    /// time at a reference configuration: the paper's figures plot
    /// `time/batch × #batches`, and when extrapolating to more nodes the
    /// analytic model supplies the ratio of per-batch costs.
    pub fn extrapolate_total_time(
        &self,
        measured_batch_seconds: f64,
        measured: &ProjectionInput,
        measured_batch_flops: f64,
        target: &ProjectionInput,
        target_batches: f64,
    ) -> CoreResult<f64> {
        if measured_batch_seconds <= 0.0 || target_batches <= 0.0 {
            return Err(CoreError::InvalidConfig(
                "measured batch time and target batch count must be positive".to_string(),
            ));
        }
        let measured_model =
            self.batch_cost(measured.total_nonzeros, measured, measured_batch_flops)?;
        let target_model = self.batch_cost(
            target.total_nonzeros / target_batches,
            target,
            target.total_flops / target_batches,
        )?;
        let ratio = if measured_model > 0.0 { target_model / measured_model } else { 1.0 };
        Ok(measured_batch_seconds * ratio * target_batches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gas_dstsim::machine::Machine;

    fn model() -> PaperCostModel {
        PaperCostModel::new(Machine::stampede2_knl().cost_model().unwrap())
    }

    fn base_input() -> ProjectionInput {
        ProjectionInput {
            n_samples: 2580,
            total_nonzeros: 1.5e9,
            total_flops: 5.0e12,
            ranks: 32,
            mem_words_per_rank: 3.0e8,
            replication: 1,
        }
    }

    #[test]
    fn batch_cost_decreases_with_more_ranks() {
        let m = model();
        let small = base_input();
        let mut large = base_input();
        large.ranks = 1024;
        let z = 1.0e8;
        let flops = 1.0e10;
        let t_small = m.batch_cost(z, &small, flops).unwrap();
        let t_large = m.batch_cost(z, &large, flops).unwrap();
        assert!(t_large < t_small);
    }

    #[test]
    fn total_cost_scales_down_with_ranks_in_memory_bound_regime() {
        let m = model();
        let mut costs = Vec::new();
        for ranks in [32usize, 128, 512, 2048] {
            let input = ProjectionInput { ranks, ..base_input() };
            costs.push(m.total_cost(&input).unwrap());
        }
        for w in costs.windows(2) {
            assert!(w[1] < w[0], "costs should decrease: {costs:?}");
        }
    }

    #[test]
    fn replication_reduces_bandwidth_term() {
        let m = model();
        let input_c1 = ProjectionInput { replication: 1, ..base_input() };
        let input_c4 = ProjectionInput { replication: 4, ..base_input() };
        let z = 5.0e8;
        // With c > 1 the z/sqrt(cp) term shrinks; for large z this
        // dominates the added c·n²/p term.
        let t1 = m.batch_cost(z, &input_c1, 1.0e10).unwrap();
        let t4 = m.batch_cost(z, &input_c4, 1.0e10).unwrap();
        assert!(t4 < t1);
    }

    #[test]
    fn strong_scaling_efficiency_is_near_constant() {
        let m = model();
        let base = base_input();
        let e2 = m.strong_scaling_efficiency(&base, 64).unwrap();
        let e16 = m.strong_scaling_efficiency(&base, 512).unwrap();
        // The paper proves E_p = O(1); allow a generous constant band.
        assert!(e2 > 0.3 && e2 < 3.0, "E_2 = {e2}");
        assert!(e16 > 0.3 && e16 < 3.0, "E_16 = {e16}");
        assert!(m.strong_scaling_efficiency(&base, 16).is_err());
    }

    #[test]
    fn degenerate_inputs_rejected() {
        let m = model();
        let mut bad = base_input();
        bad.ranks = 0;
        assert!(m.batch_cost(1.0, &bad, 1.0).is_err());
        assert!(m.total_cost(&bad).is_err());
        let mut bad = base_input();
        bad.mem_words_per_rank = 0.0;
        assert!(m.simplified_batch_cost(&bad, 1.0).is_err());
    }

    #[test]
    fn extrapolation_reproduces_measured_time_at_identity() {
        let m = model();
        let input = base_input();
        let t = m.extrapolate_total_time(2.5, &input, input.total_flops, &input, 1.0).unwrap();
        // Same configuration and one batch: projection equals measurement
        // (total nonzeros already equal the per-batch nonzeros here).
        assert!((t - 2.5).abs() < 1e-9);
        assert!(m.extrapolate_total_time(0.0, &input, 1.0, &input, 1.0).is_err());
        assert!(m.extrapolate_total_time(1.0, &input, 1.0, &input, 0.0).is_err());
    }

    #[test]
    fn fit_recovers_known_machine_parameters() {
        let (alpha, beta, gamma) = (2.0e-6, 8.0e-11, 1.0e-9);
        let mut obs = Vec::new();
        // Vary all three counters independently so the system is
        // well determined.
        for (s, b, f) in
            [(10.0, 1.0e8, 2.0e9), (25.0, 3.0e8, 1.0e9), (40.0, 5.0e7, 8.0e9), (15.0, 9.0e8, 4.0e9)]
        {
            obs.push(CostObservation {
                supersteps: s,
                bytes: b,
                flops: f,
                seconds: s * alpha + b * beta + f * gamma,
            });
        }
        let fitted = fit_cost_model(&obs, CostModel::default()).unwrap();
        assert!((fitted.alpha - alpha).abs() / alpha < 1e-6, "alpha = {}", fitted.alpha);
        assert!((fitted.beta - beta).abs() / beta < 1e-6, "beta = {}", fitted.beta);
        assert!((fitted.gamma - gamma).abs() / gamma < 1e-6, "gamma = {}", fitted.gamma);
        // Base parameters the observations say nothing about are carried.
        assert_eq!(fitted.mem_per_rank, CostModel::default().mem_per_rank);
    }

    #[test]
    fn fit_rejects_underdetermined_systems() {
        let one = CostObservation { supersteps: 1.0, bytes: 1.0, flops: 1.0, seconds: 1.0 };
        assert!(fit_cost_model(&[one, one], CostModel::default()).is_err());
        // Three identical rows are rank deficient.
        assert!(fit_cost_model(&[one, one, one], CostModel::default()).is_err());
    }

    #[test]
    fn fit_clamps_unresolvable_parameters_to_zero() {
        // seconds depend only on flops; α and β should come out ~0, not
        // negative.
        let mut obs = Vec::new();
        for (s, b, f) in [(10.0, 1.0e8, 2.0e9), (25.0, 3.0e8, 1.0e9), (40.0, 5.0e7, 8.0e9)] {
            obs.push(CostObservation { supersteps: s, bytes: b, flops: f, seconds: f * 1.0e-9 });
        }
        let fitted = fit_cost_model(&obs, CostModel::default()).unwrap();
        assert!(fitted.alpha >= 0.0 && fitted.beta >= 0.0);
        assert!((fitted.gamma - 1.0e-9).abs() / 1.0e-9 < 1e-6);
    }

    #[test]
    fn observation_from_report_maps_the_measured_fields() {
        let report = CostReport {
            rank: 3,
            msgs_sent: 1,
            msgs_received: 2,
            bytes_sent: 100,
            bytes_received: 200,
            flops: 300,
            mem_traffic: 0,
            supersteps: 7,
            collectives: 4,
            measured_seconds: 0.5,
        };
        let o = CostObservation::from_report(&report);
        assert_eq!(o.supersteps, 7.0);
        assert_eq!(o.bytes, 200.0);
        assert_eq!(o.flops, 300.0);
        assert_eq!(o.seconds, 0.5);
    }

    #[test]
    fn extrapolation_scales_with_batch_count() {
        let m = model();
        let input = base_input();
        let t1 = m.extrapolate_total_time(2.0, &input, 1.0e10, &input, 1.0).unwrap();
        let t8 = m.extrapolate_total_time(2.0, &input, 1.0e10, &input, 8.0).unwrap();
        assert!(t8 > t1);
    }
}
