//! MinHash (bottom-k) sketching — the Mash-style baseline.
//!
//! The paper motivates exact distributed Jaccard by noting that MinHash
//! approximations (Mash) "often lead to inaccurate approximations of d_J
//! for highly similar pairs of sequence sets, and tend to be ineffective
//! for computation of a distance between highly dissimilar sets unless
//! very large sketch sizes are used" (Section I). This module implements
//! the bottom-k MinHash sketch and the Mash distance estimator so the
//! reproduction can quantify that accuracy/size trade-off (Table II
//! context and the `minhash_accuracy` experiment).

use serde::{Deserialize, Serialize};

use crate::error::{CoreError, CoreResult};
use crate::indicator::SampleCollection;
use gas_sparse::dense::DenseMatrix;

/// 64-bit finalizer used as the sketch hash (splitmix64).
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A bottom-k MinHash sketch: the `k` smallest hash values of a set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MinHashSketch {
    hashes: Vec<u64>,
    sketch_size: usize,
    set_size: usize,
}

impl MinHashSketch {
    /// The sorted bottom-k hash values.
    pub fn hashes(&self) -> &[u64] {
        &self.hashes
    }

    /// Configured sketch size `s`.
    pub fn sketch_size(&self) -> usize {
        self.sketch_size
    }

    /// Size of the original set.
    pub fn set_size(&self) -> usize {
        self.set_size
    }

    /// Estimate `J(A, B)` with the bottom-k estimator: take the `s`
    /// smallest values of the union of the two sketches and count how many
    /// appear in both (the Mash estimator).
    pub fn jaccard_estimate(&self, other: &MinHashSketch) -> f64 {
        if self.hashes.is_empty() && other.hashes.is_empty() {
            return 1.0;
        }
        let s = self.sketch_size.min(other.sketch_size);
        // Merge the two sorted lists keeping the s smallest distinct values.
        let mut shared = 0usize;
        let mut taken = 0usize;
        let (mut i, mut j) = (0usize, 0usize);
        while taken < s && (i < self.hashes.len() || j < other.hashes.len()) {
            let a = self.hashes.get(i).copied();
            let b = other.hashes.get(j).copied();
            match (a, b) {
                (Some(x), Some(y)) if x == y => {
                    shared += 1;
                    i += 1;
                    j += 1;
                }
                (Some(x), Some(y)) if x < y => i += 1,
                (Some(_), Some(_)) => j += 1,
                (Some(_), None) => i += 1,
                (None, Some(_)) => j += 1,
                (None, None) => break,
            }
            taken += 1;
        }
        if taken == 0 {
            return 0.0;
        }
        shared as f64 / taken as f64
    }

    /// The Mash distance `-ln(2j / (1 + j)) / k` for k-mer length `k`,
    /// clamped to `[0, 1]`; `j = 0` maps to distance 1.
    pub fn mash_distance(&self, other: &MinHashSketch, k: usize) -> f64 {
        let j = self.jaccard_estimate(other);
        if j <= 0.0 {
            return 1.0;
        }
        (-(2.0 * j / (1.0 + j)).ln() / k as f64).clamp(0.0, 1.0)
    }
}

/// Builds MinHash sketches with a fixed sketch size and hash seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MinHasher {
    sketch_size: usize,
    seed: u64,
}

impl MinHasher {
    /// Create a sketcher with the given sketch size (Mash defaults to
    /// 1,000; the paper argues much larger sizes are needed for accuracy).
    pub fn new(sketch_size: usize) -> CoreResult<Self> {
        if sketch_size == 0 {
            return Err(CoreError::InvalidConfig("sketch size must be positive".to_string()));
        }
        Ok(MinHasher { sketch_size, seed: 0x6D61_7368 })
    }

    /// Use a specific hash seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sketch size `s`.
    pub fn sketch_size(&self) -> usize {
        self.sketch_size
    }

    /// Sketch a set of values (k-mer codes).
    pub fn sketch(&self, values: &[u64]) -> MinHashSketch {
        // Mix the seed through the finalizer first so that nearby seeds
        // produce unrelated hash functions.
        let seed = splitmix64(self.seed);
        let mut hashes: Vec<u64> = values.iter().map(|&v| splitmix64(v ^ seed)).collect();
        hashes.sort_unstable();
        hashes.dedup();
        hashes.truncate(self.sketch_size);
        MinHashSketch { hashes, sketch_size: self.sketch_size, set_size: values.len() }
    }

    /// Sketch every sample of a collection.
    pub fn sketch_collection(&self, collection: &SampleCollection) -> Vec<MinHashSketch> {
        (0..collection.n()).map(|i| self.sketch(collection.sample(i))).collect()
    }

    /// All-pairs estimated Jaccard similarity matrix from sketches — the
    /// Mash-style approximate counterpart of SimilarityAtScale's exact
    /// matrix.
    pub fn approximate_similarity(&self, collection: &SampleCollection) -> DenseMatrix<f64> {
        let sketches = self.sketch_collection(collection);
        let n = sketches.len();
        let mut s = DenseMatrix::<f64>::zeros(n, n);
        for i in 0..n {
            s.set(i, i, 1.0);
            for j in (i + 1)..n {
                let est = sketches[i].jaccard_estimate(&sketches[j]);
                s.set(i, j, est);
                s.set(j, i, est);
            }
        }
        s
    }
}

/// A fixed-length k-mins MinHash signature: position `i` holds the
/// minimum of the `i`-th hash function over the set.
///
/// Unlike the bottom-k [`MinHashSketch`] (whose entries shift when a
/// single element changes), every position of a k-mins signature is an
/// independent min-wise hash, so `P[sig_a[i] == sig_b[i]] = J(A, B)`
/// exactly. That per-position collision statistic is what LSH banding
/// needs: `gas-index` slices signatures into bands of `r` rows and a
/// band collides with probability `J^r`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MinHashSignature {
    mins: Vec<u64>,
}

/// Sentinel stored at every position of the signature of an empty set
/// (no value ever hashes to it in practice, and two empty sets compare
/// equal everywhere, matching the `J(∅, ∅) = 1` convention).
pub const EMPTY_SET_SENTINEL: u64 = u64::MAX;

/// Number of positions on which two raw signature rows agree. The
/// slice-level form of [`MinHashSignature::agreement`], shared with the
/// `gas-index` distributed scorer, which compares query signatures
/// against fetched signature-matrix rows without rebuilding
/// [`MinHashSignature`] values.
///
/// Panics if the rows have different lengths (they must come from the
/// same [`SignatureScheme`] to be comparable).
pub fn signature_agreement(a: &[u64], b: &[u64]) -> usize {
    assert_eq!(a.len(), b.len(), "signatures from different schemes are not comparable");
    a.iter().zip(b).filter(|(x, y)| x == y).count()
}

impl MinHashSignature {
    /// Reassemble a signature from its raw position values (used by the
    /// `gas-index` persistence layer when reading a container back).
    pub fn from_values(mins: Vec<u64>) -> Self {
        MinHashSignature { mins }
    }

    /// The per-position minima.
    pub fn values(&self) -> &[u64] {
        &self.mins
    }

    /// Signature length (number of hash functions).
    pub fn len(&self) -> usize {
        self.mins.len()
    }

    /// Whether the signature has zero positions.
    pub fn is_empty(&self) -> bool {
        self.mins.is_empty()
    }

    /// Number of positions on which the two signatures agree.
    ///
    /// Panics if the signatures have different lengths (they must come
    /// from the same [`SignatureScheme`] to be comparable).
    pub fn agreement(&self, other: &MinHashSignature) -> usize {
        signature_agreement(&self.mins, &other.mins)
    }

    /// The k-mins Jaccard estimator: the fraction of agreeing positions.
    pub fn jaccard_estimate(&self, other: &MinHashSignature) -> f64 {
        if self.mins.is_empty() {
            return 0.0;
        }
        self.agreement(other) as f64 / self.mins.len() as f64
    }
}

/// Which min-wise hashing algorithm a [`SignatureScheme`] runs.
///
/// Both signers produce fixed-length signatures with the per-position
/// collision statistic `P[sig_a[i] == sig_b[i]] ≈ J(A, B)` that LSH
/// banding relies on; they differ only in signing cost:
///
/// * [`SignerKind::KMins`] evaluates `len` independent hash functions
///   over the whole set — `O(len · |set|)` hashes, the classical scheme;
/// * [`SignerKind::Oph`] (one-permutation hashing) hashes every element
///   once, buckets it into one of `len` bins, keeps the per-bin minimum
///   and fills empty bins by rotation densification — `O(|set| + len)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SignerKind {
    /// `len` independent hash functions, one minimum each.
    KMins,
    /// One-permutation hashing with rotation densification.
    Oph,
}

impl SignerKind {
    /// Stable wire code of the signer (the `gas-index` container records
    /// it so persisted indexes stay self-describing).
    pub fn code(&self) -> u32 {
        match self {
            SignerKind::KMins => 0,
            SignerKind::Oph => 1,
        }
    }

    /// Decode a wire code; `None` for codes this build does not know.
    pub fn from_code(code: u32) -> Option<Self> {
        match code {
            0 => Some(SignerKind::KMins),
            1 => Some(SignerKind::Oph),
            _ => None,
        }
    }
}

impl std::fmt::Display for SignerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SignerKind::KMins => write!(f, "kmins"),
            SignerKind::Oph => write!(f, "oph"),
        }
    }
}

/// Builds fixed-length min-wise signatures under one of two signers
/// ([`SignerKind`]): classical k-mins (`sig[i] = min_v h_i(v)`, costing
/// `len · |set|` hashes) or one-permutation hashing (each element hashed
/// once, costing `|set| + len`).
///
/// The paper's exact pipeline stays the ground truth; these signatures
/// exist to feed the LSH index (`gas-index`), which trades that
/// preprocessing for sublinear candidate generation at query time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignatureScheme {
    len: usize,
    seed: u64,
    kind: SignerKind,
}

impl SignatureScheme {
    /// Create a k-mins scheme with `len` hash functions.
    pub fn new(len: usize) -> CoreResult<Self> {
        if len == 0 {
            return Err(CoreError::InvalidConfig("signature length must be positive".to_string()));
        }
        Ok(SignatureScheme { len, seed: 0x6C73_685F_6B6D_696E, kind: SignerKind::KMins })
    }

    /// Use a specific hash seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Use a specific signer.
    pub fn with_kind(mut self, kind: SignerKind) -> Self {
        self.kind = kind;
        self
    }

    /// Signature length (number of positions).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Always false: a scheme has at least one position.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The hash seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The signer this scheme runs.
    pub fn kind(&self) -> SignerKind {
        self.kind
    }

    /// Human-readable one-line description (used in mismatch errors).
    pub fn describe(&self) -> String {
        format!("{}(len={}, seed={:#018x})", self.kind, self.len, self.seed)
    }

    /// Sign one set of values (k-mer codes). Empty sets sign to
    /// [`EMPTY_SET_SENTINEL`] at every position under both signers.
    pub fn sign(&self, values: &[u64]) -> MinHashSignature {
        let mut mins = vec![EMPTY_SET_SENTINEL; self.len];
        self.sign_into(values, &mut mins);
        MinHashSignature { mins }
    }

    /// Sign into a pre-initialized row of `len` sentinel slots (the
    /// flattened signature-matrix path of [`Self::sign_collection`]).
    fn sign_into(&self, values: &[u64], slots: &mut [u64]) {
        debug_assert_eq!(slots.len(), self.len);
        match self.kind {
            SignerKind::KMins => self.sign_kmins(values, slots),
            SignerKind::Oph => self.sign_oph(values, slots),
        }
    }

    /// K-mins: position `i` holds `min_v h_i(v)` for `len` independent
    /// splitmix-derived hash functions — `O(len · |set|)` hashes.
    fn sign_kmins(&self, values: &[u64], slots: &mut [u64]) {
        for (i, slot) in slots.iter_mut().enumerate() {
            // Per-position hash function: mix the position into the seed
            // through the finalizer so functions are pairwise unrelated.
            let hi = splitmix64(self.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            for &v in values {
                let h = splitmix64(v ^ hi);
                if h < *slot {
                    *slot = h;
                }
            }
        }
    }

    /// One-permutation hashing: every element is hashed once; the hash's
    /// high bits pick one of `len` equal bins (multiply-shift, so bins
    /// partition the hash space evenly without a modulo bias) and the bin
    /// keeps its minimum hash. Empty bins are then filled by rotation
    /// densification so every position carries a min-wise value and the
    /// per-position collision statistic survives — `O(|set| + len)`.
    fn sign_oph(&self, values: &[u64], slots: &mut [u64]) {
        let seed = splitmix64(self.seed);
        let len = self.len as u128;
        for &v in values {
            let h = splitmix64(v ^ seed);
            let bin = ((h as u128 * len) >> 64) as usize;
            if h < slots[bin] {
                slots[bin] = h;
            }
        }
        densify_rotation(slots);
    }

    /// Sign every sample of a collection, one signature per column of the
    /// indicator matrix, in parallel: the output array is pre-allocated
    /// and filled in place over contiguous runs of samples
    /// (`par_chunks_mut`), so the hashing and the densification pass of
    /// every row run inside the parallel fill and no second copy of the
    /// signature matrix is ever materialized.
    pub fn sign_collection(&self, collection: &SampleCollection) -> Vec<MinHashSignature> {
        self.sign_batch_by(collection.n(), |i| collection.sample(i))
    }

    /// Sign a *delta batch* of raw sets under this (already fixed)
    /// scheme: the incremental-indexing path, where newly arriving
    /// samples must be signed exactly as the existing corpus was (same
    /// signer kind, length and seed) without rebuilding a
    /// [`SampleCollection`] around them. Cost is proportional to the
    /// batch, not the corpus; signatures are bit-identical to signing
    /// the same sets through [`Self::sign_collection`].
    pub fn sign_batch(&self, sets: &[&[u64]]) -> Vec<MinHashSignature> {
        self.sign_batch_by(sets.len(), |i| sets[i])
    }

    /// Shared parallel fill of `n` signatures drawn through `set_of`.
    fn sign_batch_by<'a, F>(&self, n: usize, set_of: F) -> Vec<MinHashSignature>
    where
        F: Fn(usize) -> &'a [u64] + Sync,
    {
        use rayon::prelude::*;
        const RUN: usize = 16;
        let mut signatures = vec![MinHashSignature { mins: Vec::new() }; n];
        signatures.par_chunks_mut(RUN).enumerate().for_each(|(run, group)| {
            for (j, sig) in group.iter_mut().enumerate() {
                let mut mins = vec![EMPTY_SET_SENTINEL; self.len];
                self.sign_into(set_of(run * RUN + j), &mut mins);
                sig.mins = mins;
            }
        });
        signatures
    }
}

/// Rotation densification: every empty bin takes the value of the
/// nearest filled bin to its right, wrapping circularly (Shrivastava &
/// Li's densified one-permutation hashing). A signature that is entirely
/// [`EMPTY_SET_SENTINEL`] (the empty set) is left untouched, preserving
/// the `J(∅, ∅) = 1` convention.
fn densify_rotation(slots: &mut [u64]) {
    let Some(first_filled) = slots.iter().position(|&v| v != EMPTY_SET_SENTINEL) else {
        return;
    };
    // Walk right-to-left carrying the nearest filled value to the right;
    // bins past the last filled one wrap around to the first filled bin.
    let mut carry = slots[first_filled];
    for slot in slots.iter_mut().rev() {
        if *slot == EMPTY_SET_SENTINEL {
            *slot = carry;
        } else {
            carry = *slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jaccard::jaccard_exact_pairwise;

    fn overlapping_sets(size: usize, overlap: usize) -> (Vec<u64>, Vec<u64>) {
        let a: Vec<u64> = (0..size as u64).collect();
        let b: Vec<u64> =
            (size as u64 - overlap as u64..2 * size as u64 - overlap as u64).collect();
        (a, b)
    }

    #[test]
    fn splitmix_is_deterministic_and_spreads_bits() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
        // Low-entropy inputs produce well-spread outputs.
        let outputs: Vec<u64> = (0..100).map(splitmix64).collect();
        let high_bits_set = outputs.iter().filter(|&&v| v >> 63 == 1).count();
        assert!(high_bits_set > 20 && high_bits_set < 80);
    }

    #[test]
    fn identical_sets_estimate_one() {
        let hasher = MinHasher::new(64).unwrap();
        let s = hasher.sketch(&(0..1000u64).collect::<Vec<_>>());
        assert_eq!(s.jaccard_estimate(&s), 1.0);
        assert_eq!(s.mash_distance(&s, 21), 0.0);
        assert_eq!(s.sketch_size(), 64);
        assert_eq!(s.set_size(), 1000);
        assert_eq!(s.hashes().len(), 64);
    }

    #[test]
    fn disjoint_sets_estimate_zero() {
        let hasher = MinHasher::new(128).unwrap();
        let a = hasher.sketch(&(0..1000u64).collect::<Vec<_>>());
        let b = hasher.sketch(&(10_000..11_000u64).collect::<Vec<_>>());
        assert_eq!(a.jaccard_estimate(&b), 0.0);
        assert_eq!(a.mash_distance(&b, 21), 1.0);
    }

    #[test]
    fn estimate_improves_with_sketch_size() {
        // True J = 0.5 (overlap of 2/3 of each set of 30k elements).
        let (a, b) = overlapping_sets(30_000, 20_000);
        let true_j = 20_000.0 / 40_000.0;
        let mut errors = Vec::new();
        for s in [16usize, 256, 4096] {
            let hasher = MinHasher::new(s).unwrap();
            let est = hasher.sketch(&a).jaccard_estimate(&hasher.sketch(&b));
            errors.push((est - true_j).abs());
        }
        // Larger sketches give (weakly) better estimates.
        assert!(errors[2] <= errors[0] + 0.02, "errors: {errors:?}");
        assert!(errors[2] < 0.05);
    }

    #[test]
    fn small_sketches_are_unreliable_for_similar_pairs() {
        // Two nearly identical sets (J ≈ 0.999): a small sketch cannot
        // distinguish them from identical — the paper's motivating issue.
        let a: Vec<u64> = (0..50_000u64).collect();
        let b: Vec<u64> = (0..50_000u64).map(|v| if v == 0 { 1_000_000 } else { v }).collect();
        let small = MinHasher::new(16).unwrap();
        let est = small.sketch(&a).jaccard_estimate(&small.sketch(&b));
        // The estimate quantizes to multiples of 1/16 and typically reads
        // exactly 1.0, hiding the difference.
        assert!(est >= 1.0 - 1.0 / 16.0);
    }

    #[test]
    fn empty_sets_behave() {
        let hasher = MinHasher::new(8).unwrap();
        let e = hasher.sketch(&[]);
        let f = hasher.sketch(&[1, 2, 3]);
        assert_eq!(e.jaccard_estimate(&e), 1.0);
        assert_eq!(e.jaccard_estimate(&f), 0.0);
    }

    #[test]
    fn invalid_sketch_size_rejected() {
        assert!(MinHasher::new(0).is_err());
    }

    #[test]
    fn approximate_similarity_is_close_to_exact_for_large_sketches() {
        let collection = SampleCollection::from_sorted_sets(vec![
            (0..2000u64).collect(),
            (1000..3000u64).collect(),
            (5000..6000u64).collect(),
        ])
        .unwrap();
        let exact = jaccard_exact_pairwise(&collection);
        let approx = MinHasher::new(512).unwrap().approximate_similarity(&collection);
        let max_err = exact.similarity().max_abs_diff(&approx).unwrap();
        assert!(max_err < 0.1, "max error {max_err}");
        assert!(approx.is_symmetric(0.0));
    }

    #[test]
    fn signature_estimate_tracks_exact_jaccard() {
        // True J = 0.5; a 512-position signature estimates it within a
        // few percentage points (binomial stddev ≈ 0.022).
        let (a, b) = overlapping_sets(3_000, 2_000);
        let scheme = SignatureScheme::new(512).unwrap();
        let (sa, sb) = (scheme.sign(&a), scheme.sign(&b));
        assert!((sa.jaccard_estimate(&sb) - 0.5).abs() < 0.1);
        assert_eq!(sa.jaccard_estimate(&sa), 1.0);
        assert_eq!(sa.len(), 512);
        assert!(!sa.is_empty());
    }

    #[test]
    fn signature_positions_are_independent_min_hashes() {
        // Disjoint sets agree (essentially) nowhere; identical sets
        // everywhere; empty sets sign to the sentinel.
        let scheme = SignatureScheme::new(64).unwrap();
        let a = scheme.sign(&(0..500u64).collect::<Vec<_>>());
        let b = scheme.sign(&(10_000..10_500u64).collect::<Vec<_>>());
        assert_eq!(a.agreement(&b), 0);
        assert_eq!(a.agreement(&a), 64);
        let e = scheme.sign(&[]);
        assert!(e.values().iter().all(|&v| v == EMPTY_SET_SENTINEL));
        assert_eq!(e.jaccard_estimate(&e), 1.0);
        assert_eq!(e.agreement(&a), 0);
    }

    #[test]
    fn signature_schemes_are_seeded_and_deterministic() {
        let values: Vec<u64> = (0..800).collect();
        let s1 = SignatureScheme::new(32).unwrap().with_seed(7);
        let s2 = SignatureScheme::new(32).unwrap().with_seed(8);
        assert_eq!(s1.sign(&values), s1.sign(&values));
        assert_ne!(s1.sign(&values).values(), s2.sign(&values).values());
        assert_eq!(s1.seed(), 7);
        assert_eq!(s1.len(), 32);
        assert!(SignatureScheme::new(0).is_err());
        let round = MinHashSignature::from_values(s1.sign(&values).values().to_vec());
        assert_eq!(round, s1.sign(&values));
    }

    #[test]
    fn sign_collection_matches_per_sample_signing() {
        let collection = SampleCollection::from_sorted_sets(vec![
            (0..300u64).collect(),
            (150..450u64).collect(),
            vec![],
            vec![9_999],
        ])
        .unwrap();
        let scheme = SignatureScheme::new(48).unwrap();
        let signed = scheme.sign_collection(&collection);
        assert_eq!(signed.len(), 4);
        for (i, sig) in signed.iter().enumerate() {
            assert_eq!(sig, &scheme.sign(collection.sample(i)));
        }
    }

    #[test]
    #[should_panic]
    fn mismatched_signature_lengths_panic() {
        let a = SignatureScheme::new(8).unwrap().sign(&[1, 2]);
        let b = SignatureScheme::new(16).unwrap().sign(&[1, 2]);
        let _ = a.agreement(&b);
    }

    #[test]
    fn oph_estimate_tracks_exact_jaccard() {
        // True J = 0.5; a 512-bin OPH signature (sets much larger than
        // the bin count, so nearly every bin is genuinely filled) matches
        // the k-mins tolerance.
        let (a, b) = overlapping_sets(3_000, 2_000);
        let scheme = SignatureScheme::new(512).unwrap().with_kind(SignerKind::Oph);
        let (sa, sb) = (scheme.sign(&a), scheme.sign(&b));
        assert!((sa.jaccard_estimate(&sb) - 0.5).abs() < 0.1);
        assert_eq!(sa.jaccard_estimate(&sa), 1.0);
        assert_eq!(sa.len(), 512);
        assert_eq!(scheme.kind(), SignerKind::Oph);
    }

    #[test]
    fn oph_signs_in_one_pass_worth_of_hashes() {
        // Identical sets sign identically; disjoint sets agree nowhere
        // (whp) — the same per-position statistics as k-mins.
        let scheme = SignatureScheme::new(64).unwrap().with_kind(SignerKind::Oph);
        let a = scheme.sign(&(0..2_000u64).collect::<Vec<_>>());
        let b = scheme.sign(&(100_000..102_000u64).collect::<Vec<_>>());
        assert_eq!(a.agreement(&a), 64);
        assert_eq!(a.agreement(&b), 0);
        // OPH and k-mins are different hash families over the same seed.
        let kmins = SignatureScheme::new(64).unwrap();
        assert_ne!(
            scheme.sign(&(0..2_000u64).collect::<Vec<_>>()).values(),
            kmins.sign(&(0..2_000u64).collect::<Vec<_>>()).values()
        );
    }

    #[test]
    fn oph_empty_set_signs_to_sentinel_everywhere() {
        let scheme = SignatureScheme::new(32).unwrap().with_kind(SignerKind::Oph);
        let e = scheme.sign(&[]);
        assert!(e.values().iter().all(|&v| v == EMPTY_SET_SENTINEL));
        assert_eq!(e.jaccard_estimate(&e), 1.0);
        let f = scheme.sign(&[7]);
        assert_eq!(e.agreement(&f), 0, "empty vs non-empty must not alias after densification");
    }

    #[test]
    fn oph_singleton_densifies_to_a_constant_signature() {
        // One element fills one bin; rotation densification propagates
        // that single min-wise value to every other bin.
        let scheme = SignatureScheme::new(48).unwrap().with_kind(SignerKind::Oph);
        let s = scheme.sign(&[42]);
        assert!(s.values().iter().all(|&v| v == s.values()[0]));
        assert_ne!(s.values()[0], EMPTY_SET_SENTINEL);
        // Two identical singletons collide everywhere (J = 1); disjoint
        // singletons collide nowhere (J = 0).
        assert_eq!(s.jaccard_estimate(&scheme.sign(&[42])), 1.0);
        assert_eq!(s.jaccard_estimate(&scheme.sign(&[43])), 0.0);
    }

    #[test]
    fn densify_rotation_borrows_from_the_nearest_filled_bin_to_the_right() {
        let e = EMPTY_SET_SENTINEL;
        let mut slots = [e, 10, e, e, 20, e];
        densify_rotation(&mut slots);
        // Bin 0 borrows from bin 1; bins 2 and 3 from bin 4; bin 5 wraps
        // around to bin 1.
        assert_eq!(slots, [10, 10, 20, 20, 20, 10]);
        let mut all_empty = [e, e, e];
        densify_rotation(&mut all_empty);
        assert_eq!(all_empty, [e, e, e]);
        let mut full = [3u64, 2, 1];
        densify_rotation(&mut full);
        assert_eq!(full, [3, 2, 1]);
    }

    #[test]
    fn oph_sign_collection_matches_per_sample_signing() {
        let collection = SampleCollection::from_sorted_sets(vec![
            (0..300u64).collect(),
            (150..450u64).collect(),
            vec![],
            vec![9_999],
        ])
        .unwrap();
        let scheme = SignatureScheme::new(48).unwrap().with_kind(SignerKind::Oph);
        let signed = scheme.sign_collection(&collection);
        assert_eq!(signed.len(), 4);
        for (i, sig) in signed.iter().enumerate() {
            assert_eq!(sig, &scheme.sign(collection.sample(i)));
        }
    }

    #[test]
    fn sign_batch_matches_per_sample_signing_for_both_signers() {
        // The incremental-index path signs delta batches of raw sets; the
        // result must be bit-identical to signing the same sets one by
        // one (and hence to a full `sign_collection` over them).
        let sets: Vec<Vec<u64>> = vec![
            (0..300u64).collect(),
            (150..450u64).collect(),
            Vec::new(),
            vec![9_999],
            (7..777u64).step_by(3).collect(),
        ];
        let refs: Vec<&[u64]> = sets.iter().map(Vec::as_slice).collect();
        for kind in [SignerKind::KMins, SignerKind::Oph] {
            let scheme = SignatureScheme::new(48).unwrap().with_kind(kind).with_seed(11);
            let batch = scheme.sign_batch(&refs);
            assert_eq!(batch.len(), sets.len());
            for (set, sig) in sets.iter().zip(&batch) {
                assert_eq!(sig, &scheme.sign(set), "signer {kind}");
            }
            assert!(scheme.sign_batch(&[]).is_empty());
        }
    }

    #[test]
    fn signer_kind_codes_round_trip() {
        for kind in [SignerKind::KMins, SignerKind::Oph] {
            assert_eq!(SignerKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(SignerKind::from_code(99), None);
        assert_eq!(SignerKind::KMins.to_string(), "kmins");
        assert_eq!(SignerKind::Oph.to_string(), "oph");
        let scheme = SignatureScheme::new(16).unwrap().with_kind(SignerKind::Oph).with_seed(3);
        assert!(scheme.describe().contains("oph") && scheme.describe().contains("len=16"));
    }

    #[test]
    fn signature_agreement_slice_form_matches_method() {
        let scheme = SignatureScheme::new(32).unwrap();
        let a = scheme.sign(&(0..500u64).collect::<Vec<_>>());
        let b = scheme.sign(&(250..750u64).collect::<Vec<_>>());
        assert_eq!(signature_agreement(a.values(), b.values()), a.agreement(&b));
    }

    #[test]
    fn seeded_hashers_differ_but_are_internally_consistent() {
        let a = MinHasher::new(32).unwrap().with_seed(1);
        let b = MinHasher::new(32).unwrap().with_seed(2);
        let values: Vec<u64> = (0..1000).collect();
        assert_ne!(a.sketch(&values).hashes(), b.sketch(&values).hashes());
        assert_eq!(a.sketch(&values), a.sketch(&values));
        assert_eq!(a.sketch_size(), 32);
    }
}
