//! Configuration of the SimilarityAtScale pipeline.

use serde::{Deserialize, Serialize};

use crate::error::{CoreError, CoreResult};

/// How the indicator matrix is split into batches (Eq. 3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BatchPolicy {
    /// Use exactly this many batches.
    FixedCount(usize),
    /// Use batches of (at most) this many attribute rows each.
    FixedRows(u64),
    /// Choose the batch size so one batch's filtered + packed block plus
    /// the output matrices fit in the given per-rank memory budget
    /// (bytes) — "we pick the batch size to use all available memory"
    /// (Section III-C).
    MemoryBudget(usize),
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy::FixedCount(1)
    }
}

/// Configuration of a SimilarityAtScale run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimilarityConfig {
    /// Batch policy (how many row batches the indicator matrix is split
    /// into).
    pub batch_policy: BatchPolicy,
    /// Replication factor `c` of the 2.5D distributed product (ignored by
    /// the shared-memory driver).
    pub replication: usize,
    /// Whether to compress filtered batches into 64-bit masks before the
    /// product. Disabling this is only useful for ablation experiments —
    /// the paper always masks.
    pub use_bitmask: bool,
    /// Whether to remove all-zero rows per batch before compression.
    /// Disabling this is only useful for ablation experiments.
    pub use_zero_row_filter: bool,
}

impl Default for SimilarityConfig {
    fn default() -> Self {
        SimilarityConfig {
            batch_policy: BatchPolicy::default(),
            replication: 1,
            use_bitmask: true,
            use_zero_row_filter: true,
        }
    }
}

impl SimilarityConfig {
    /// Configuration with a fixed number of batches.
    pub fn with_batches(batch_count: usize) -> Self {
        SimilarityConfig {
            batch_policy: BatchPolicy::FixedCount(batch_count),
            ..Default::default()
        }
    }

    /// Configuration with a fixed batch size in rows.
    pub fn with_batch_rows(rows: u64) -> Self {
        SimilarityConfig { batch_policy: BatchPolicy::FixedRows(rows), ..Default::default() }
    }

    /// Configuration that sizes batches from a per-rank memory budget.
    pub fn with_memory_budget(bytes: usize) -> Self {
        SimilarityConfig { batch_policy: BatchPolicy::MemoryBudget(bytes), ..Default::default() }
    }

    /// Set the 2.5D replication factor.
    pub fn with_replication(mut self, c: usize) -> Self {
        self.replication = c;
        self
    }

    /// Validate the configuration.
    pub fn validate(&self) -> CoreResult<()> {
        match self.batch_policy {
            BatchPolicy::FixedCount(0) => {
                return Err(CoreError::InvalidConfig("batch count must be positive".to_string()))
            }
            BatchPolicy::FixedRows(0) => {
                return Err(CoreError::InvalidConfig("batch rows must be positive".to_string()))
            }
            BatchPolicy::MemoryBudget(0) => {
                return Err(CoreError::InvalidConfig("memory budget must be positive".to_string()))
            }
            _ => {}
        }
        if self.replication == 0 {
            return Err(CoreError::InvalidConfig("replication must be at least 1".to_string()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_single_batch() {
        let c = SimilarityConfig::default();
        assert!(c.validate().is_ok());
        assert_eq!(c.batch_policy, BatchPolicy::FixedCount(1));
        assert!(c.use_bitmask);
        assert!(c.use_zero_row_filter);
    }

    #[test]
    fn constructors_set_policy() {
        assert_eq!(SimilarityConfig::with_batches(8).batch_policy, BatchPolicy::FixedCount(8));
        assert_eq!(
            SimilarityConfig::with_batch_rows(1024).batch_policy,
            BatchPolicy::FixedRows(1024)
        );
        assert_eq!(
            SimilarityConfig::with_memory_budget(1 << 20).batch_policy,
            BatchPolicy::MemoryBudget(1 << 20)
        );
        assert_eq!(SimilarityConfig::default().with_replication(4).replication, 4);
    }

    #[test]
    fn degenerate_configs_rejected() {
        assert!(SimilarityConfig::with_batches(0).validate().is_err());
        assert!(SimilarityConfig::with_batch_rows(0).validate().is_err());
        assert!(SimilarityConfig::with_memory_budget(0).validate().is_err());
        assert!(SimilarityConfig::default().with_replication(0).validate().is_err());
    }
}
