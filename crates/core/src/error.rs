//! Error types for the SimilarityAtScale core crate.

use std::fmt;

/// Result alias for core-algorithm operations.
pub type CoreResult<T> = Result<T, CoreError>;

/// Errors produced by the SimilarityAtScale pipeline.
#[derive(Debug)]
pub enum CoreError {
    /// The sample collection is malformed (unsorted values, empty, ...).
    InvalidInput(String),
    /// The configuration is unusable (zero batches, zero ranks, ...).
    InvalidConfig(String),
    /// An error from the sparse linear-algebra layer.
    Sparse(gas_sparse::SparseError),
    /// An error from the simulated distributed runtime.
    Sim(gas_dstsim::SimError),
    /// An error from the genomics layer.
    Genomics(gas_genomics::GenomicsError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            CoreError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CoreError::Sparse(e) => write!(f, "sparse algebra error: {e}"),
            CoreError::Sim(e) => write!(f, "distributed runtime error: {e}"),
            CoreError::Genomics(e) => write!(f, "genomics error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Sparse(e) => Some(e),
            CoreError::Sim(e) => Some(e),
            CoreError::Genomics(e) => Some(e),
            _ => None,
        }
    }
}

impl From<gas_sparse::SparseError> for CoreError {
    fn from(e: gas_sparse::SparseError) -> Self {
        CoreError::Sparse(e)
    }
}

impl From<gas_dstsim::SimError> for CoreError {
    fn from(e: gas_dstsim::SimError) -> Self {
        CoreError::Sim(e)
    }
}

impl From<gas_genomics::GenomicsError> for CoreError {
    fn from(e: gas_genomics::GenomicsError) -> Self {
        CoreError::Genomics(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e = CoreError::InvalidInput("unsorted".into());
        assert!(e.to_string().contains("unsorted"));
        let e = CoreError::InvalidConfig("zero batches".into());
        assert!(e.to_string().contains("zero batches"));
        let e: CoreError = gas_sparse::SparseError::ShapeMismatch { context: "x".into() }.into();
        assert!(e.to_string().contains("sparse"));
        let e: CoreError = gas_dstsim::SimError::InvalidWorldSize(0).into();
        assert!(e.to_string().contains("runtime"));
        let e: CoreError = gas_genomics::GenomicsError::InvalidK(99).into();
        assert!(e.to_string().contains("99"));
    }
}
