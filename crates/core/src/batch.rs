//! Batch planning (Eq. 3 — splitting the indicator matrix into row
//! batches).
//!
//! The indicator matrix of a genomic workload does not fit in memory —
//! the k-mer universe extends to `m = 4³¹` — so SimilarityAtScale
//! processes it in row batches `A^(1) … A^(r)` and accumulates each
//! batch's contribution to `B` and `ĉ`. The batch size is normally chosen
//! to "use all available memory" (Section III-C); the batch-sensitivity
//! experiments (Fig. 2c/2d) sweep it explicitly.

use serde::{Deserialize, Serialize};

use crate::config::{BatchPolicy, SimilarityConfig};
use crate::error::{CoreError, CoreResult};
use crate::indicator::SampleCollection;

/// A concrete batching of the row range `0..m` into contiguous batches.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchPlan {
    m: u64,
    batch_rows: u64,
}

impl BatchPlan {
    /// Plan batches of exactly `batch_rows` rows each (the last batch may
    /// be shorter).
    pub fn with_rows(m: u64, batch_rows: u64) -> CoreResult<Self> {
        if batch_rows == 0 {
            return Err(CoreError::InvalidConfig("batch rows must be positive".to_string()));
        }
        Ok(BatchPlan { m, batch_rows })
    }

    /// Plan `batch_count` equal batches covering `0..m`.
    pub fn with_count(m: u64, batch_count: usize) -> CoreResult<Self> {
        if batch_count == 0 {
            return Err(CoreError::InvalidConfig("batch count must be positive".to_string()));
        }
        let rows = m.div_ceil(batch_count as u64).max(1);
        BatchPlan::with_rows(m, rows)
    }

    /// Derive a plan from a [`SimilarityConfig`] and the collection it will
    /// process. `ranks` is the number of processes sharing the work (used
    /// by the memory-budget policy: the batch's nonzeros are spread over
    /// all ranks, so more ranks allow proportionally larger batches —
    /// "as we double the number of nodes, we also double the batch size").
    pub fn from_config(
        config: &SimilarityConfig,
        collection: &SampleCollection,
        ranks: usize,
    ) -> CoreResult<Self> {
        config.validate()?;
        let m = collection.m();
        match config.batch_policy {
            BatchPolicy::FixedCount(count) => BatchPlan::with_count(m, count),
            BatchPolicy::FixedRows(rows) => BatchPlan::with_rows(m, rows),
            BatchPolicy::MemoryBudget(bytes) => {
                let ranks = ranks.max(1);
                // Memory per batch ≈ packed nonzeros (≤ 16 bytes per
                // nonzero: word + row index) spread over ranks, plus the
                // resident dense blocks which do not depend on the batch
                // size. Estimate rows per batch from the average density.
                let nnz_per_row = (collection.nnz() as f64 / m.max(1) as f64).max(1e-12);
                let bytes_per_row = nnz_per_row * 16.0;
                let budget_rows = (bytes as f64 * ranks as f64 * 0.5 / bytes_per_row).floor();
                let rows = budget_rows.clamp(1.0, m.max(1) as f64) as u64;
                BatchPlan::with_rows(m, rows)
            }
        }
    }

    /// Number of rows of the full indicator matrix.
    pub fn m(&self) -> u64 {
        self.m
    }

    /// Rows per batch (`m̃`).
    pub fn batch_rows(&self) -> u64 {
        self.batch_rows
    }

    /// Number of batches `r = ⌈m / m̃⌉`.
    pub fn batch_count(&self) -> usize {
        if self.m == 0 {
            return 1;
        }
        self.m.div_ceil(self.batch_rows) as usize
    }

    /// The half-open row range of batch `l`.
    pub fn range(&self, l: usize) -> (u64, u64) {
        let lo = (l as u64) * self.batch_rows;
        let hi = (lo + self.batch_rows).min(self.m.max(1));
        (lo, hi)
    }

    /// Iterate over all batch ranges in order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        (0..self.batch_count()).map(move |l| self.range(l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collection(m_hint: u64) -> SampleCollection {
        SampleCollection::from_sorted_sets(vec![vec![0, 1, 2], vec![m_hint - 1]]).unwrap()
    }

    #[test]
    fn fixed_count_tiles_rows_exactly() {
        let plan = BatchPlan::with_count(100, 3).unwrap();
        assert_eq!(plan.batch_count(), 3);
        let ranges: Vec<_> = plan.iter().collect();
        assert_eq!(ranges, vec![(0, 34), (34, 68), (68, 100)]);
        // Coverage: contiguous and complete.
        assert_eq!(ranges.first().unwrap().0, 0);
        assert_eq!(ranges.last().unwrap().1, 100);
        for w in ranges.windows(2) {
            assert_eq!(w[0].1, w[1].0);
        }
    }

    #[test]
    fn fixed_rows_computes_count() {
        let plan = BatchPlan::with_rows(1000, 256).unwrap();
        assert_eq!(plan.batch_count(), 4);
        assert_eq!(plan.range(3), (768, 1000));
        assert_eq!(plan.batch_rows(), 256);
        assert_eq!(plan.m(), 1000);
    }

    #[test]
    fn degenerate_plans_rejected() {
        assert!(BatchPlan::with_rows(10, 0).is_err());
        assert!(BatchPlan::with_count(10, 0).is_err());
    }

    #[test]
    fn single_batch_covers_everything() {
        let plan = BatchPlan::with_count(37, 1).unwrap();
        assert_eq!(plan.batch_count(), 1);
        assert_eq!(plan.range(0), (0, 37));
    }

    #[test]
    fn from_config_fixed_policies() {
        let c = collection(1000);
        let plan = BatchPlan::from_config(&SimilarityConfig::with_batches(4), &c, 1).unwrap();
        assert_eq!(plan.batch_count(), 4);
        let plan = BatchPlan::from_config(&SimilarityConfig::with_batch_rows(100), &c, 1).unwrap();
        assert_eq!(plan.batch_rows(), 100);
    }

    #[test]
    fn memory_budget_scales_with_ranks() {
        let c = collection(1_000_000);
        let small =
            BatchPlan::from_config(&SimilarityConfig::with_memory_budget(1 << 10), &c, 1).unwrap();
        let large =
            BatchPlan::from_config(&SimilarityConfig::with_memory_budget(1 << 10), &c, 16).unwrap();
        assert!(large.batch_rows() >= small.batch_rows());
        assert!(small.batch_count() >= large.batch_count());
        // A huge budget collapses to a single batch.
        let one =
            BatchPlan::from_config(&SimilarityConfig::with_memory_budget(1 << 40), &c, 1).unwrap();
        assert_eq!(one.batch_count(), 1);
    }

    #[test]
    fn zero_m_still_produces_one_batch() {
        // A collection always has m >= 1, but the plan itself tolerates 0.
        let plan = BatchPlan::with_rows(0, 10).unwrap();
        assert_eq!(plan.batch_count(), 1);
        assert_eq!(plan.range(0), (0, 1));
    }
}
