//! Local sparse matrix–matrix multiplication kernels.
//!
//! The computational core of SimilarityAtScale is `B = AᵀA` where `A` is a
//! hypersparse batch of the indicator matrix and the output is dense
//! (Section III-A). After masking, the product runs over the popcount-AND
//! semiring on 64-bit words (Eq. 7). This module provides:
//!
//! * [`ata_dense`] — row-wise (Gustavson) `AᵀA` with a dense accumulator;
//! * [`ata_dense_parallel`] — the same product parallelized over output
//!   rows with Rayon (the on-node parallelism of a rank);
//! * [`atb_block_dense`] — the `C += AᵀB` block kernel used by the
//!   distributed SUMMA/2.5D algorithm;
//! * [`spgemm_csr`] — a general-purpose Gustavson SpGEMM with sparse
//!   output, used by the graph-framing applications and as a reference.

use rayon::prelude::*;

use crate::csc::CscMatrix;
use crate::csr::CsrMatrix;
use crate::dense::DenseMatrix;
use crate::error::{SparseError, SparseResult};
use crate::semiring::Semiring;

/// Compute the dense matrix `B = AᵀA` over semiring `S`, where `A` is
/// given in CSR form with `m` rows (attributes) and `n` columns (samples).
///
/// Gustavson-style: for every row `k` of `A`, every pair of entries
/// `(i, a_ki)`, `(j, a_kj)` contributes `mul(a_ki, a_kj)` to `B[i][j]`.
/// The cost is `Σ_k nnz(row k)²` multiplications, matching the paper's
/// observation that dense rows are what make the product expensive.
pub fn ata_dense<S>(a: &CsrMatrix<S::Left>) -> DenseMatrix<S::Out>
where
    S: Semiring,
    S::Left: Copy,
    S::Right: Copy + From<S::Left>,
    S::Out: Copy + Default,
{
    let n = a.ncols();
    let mut out = DenseMatrix::<S::Out>::zeros(n, n);
    let mut row_entries: Vec<(usize, S::Left)> = Vec::new();
    for k in 0..a.nrows() {
        row_entries.clear();
        row_entries.extend(a.row(k));
        for &(i, vi) in &row_entries {
            let out_row = out.row_mut(i);
            for &(j, vj) in &row_entries {
                out_row[j] = S::add(out_row[j], S::mul(vi, S::Right::from(vj)));
            }
        }
    }
    out
}

/// Parallel `B = AᵀA` over semiring `S`.
///
/// Requires both the CSC view (to enumerate the rows present in each
/// sample/column) and the CSR view (to enumerate the samples present in
/// each row). Output rows are computed independently — thread `i` owns
/// `B[i][:]` — so the parallelism is free of write conflicts while doing
/// the same `Σ_k nnz(row k)²` work as the sequential kernel.
pub fn ata_dense_parallel<S>(
    a_csc: &CscMatrix<S::Left>,
    a_csr: &CsrMatrix<S::Right>,
) -> SparseResult<DenseMatrix<S::Out>>
where
    S: Semiring,
    S::Left: Copy + Sync + Send,
    S::Right: Copy + Sync + Send,
    S::Out: Copy + Default + Sync + Send,
{
    if a_csc.nrows() != a_csr.nrows() || a_csc.ncols() != a_csr.ncols() {
        return Err(SparseError::ShapeMismatch {
            context: format!(
                "CSC view is {}x{} but CSR view is {}x{}",
                a_csc.nrows(),
                a_csc.ncols(),
                a_csr.nrows(),
                a_csr.ncols()
            ),
        });
    }
    let n = a_csc.ncols();
    let rows: Vec<Vec<S::Out>> = (0..n)
        .into_par_iter()
        .map(|i| {
            let mut out_row = vec![S::zero(); n];
            for (k, vi) in a_csc.col(i) {
                for (j, vj) in a_csr.row(k) {
                    out_row[j] = S::add(out_row[j], S::mul(vi, vj));
                }
            }
            out_row
        })
        .collect();
    let mut flat = Vec::with_capacity(n * n);
    for r in rows {
        flat.extend(r);
    }
    DenseMatrix::from_vec(n, n, flat)
}

/// Accumulate `out += AᵀB` over semiring `S`, where `A` (CSC, `m × na`)
/// and `B` (CSR, `m × nb`) share the same row dimension and `out` is the
/// dense `na × nb` block. This is the local kernel executed at every step
/// of the distributed SUMMA/2.5D product.
pub fn atb_block_dense<S>(
    a_csc: &CscMatrix<S::Left>,
    b_csr: &CsrMatrix<S::Right>,
    out: &mut DenseMatrix<S::Out>,
) -> SparseResult<u64>
where
    S: Semiring,
    S::Left: Copy,
    S::Right: Copy,
    S::Out: Copy + Default,
{
    if a_csc.nrows() != b_csr.nrows() {
        return Err(SparseError::ShapeMismatch {
            context: format!(
                "AᵀB with A having {} rows and B having {} rows",
                a_csc.nrows(),
                b_csr.nrows()
            ),
        });
    }
    if out.nrows() != a_csc.ncols() || out.ncols() != b_csr.ncols() {
        return Err(SparseError::ShapeMismatch {
            context: format!(
                "output block is {}x{} but AᵀB is {}x{}",
                out.nrows(),
                out.ncols(),
                a_csc.ncols(),
                b_csr.ncols()
            ),
        });
    }
    let mut ops = 0u64;
    for i in 0..a_csc.ncols() {
        let out_row = out.row_mut(i);
        for (k, va) in a_csc.col(i) {
            for (j, vb) in b_csr.row(k) {
                out_row[j] = S::add(out_row[j], S::mul(va, vb));
                ops += 1;
            }
        }
    }
    Ok(ops)
}

/// General sparse × sparse multiplication `C = A · B` over semiring `S`
/// with sparse (CSR) output, using Gustavson's algorithm with a dense
/// accumulator per row.
///
/// Entries whose accumulated value equals `S::zero()` are dropped when
/// `S::Out: PartialEq`.
pub fn spgemm_csr<S>(
    a: &CsrMatrix<S::Left>,
    b: &CsrMatrix<S::Right>,
) -> SparseResult<CsrMatrix<S::Out>>
where
    S: Semiring,
    S::Left: Copy,
    S::Right: Copy,
    S::Out: Copy + Default + PartialEq,
{
    if a.ncols() != b.nrows() {
        return Err(SparseError::ShapeMismatch {
            context: format!(
                "A is {}x{} but B is {}x{}",
                a.nrows(),
                a.ncols(),
                b.nrows(),
                b.ncols()
            ),
        });
    }
    let n_out = b.ncols();
    let mut indptr = Vec::with_capacity(a.nrows() + 1);
    indptr.push(0usize);
    let mut indices = Vec::new();
    let mut data = Vec::new();
    let mut acc: Vec<S::Out> = vec![S::zero(); n_out];
    let mut touched: Vec<usize> = Vec::new();
    for i in 0..a.nrows() {
        touched.clear();
        for (k, va) in a.row(i) {
            for (j, vb) in b.row(k) {
                if acc[j] == S::zero() && !touched.contains(&j) {
                    touched.push(j);
                }
                acc[j] = S::add(acc[j], S::mul(va, vb));
            }
        }
        touched.sort_unstable();
        for &j in &touched {
            if acc[j] != S::zero() {
                indices.push(j);
                data.push(acc[j]);
            }
            acc[j] = S::zero();
        }
        indptr.push(indices.len());
    }
    CsrMatrix::from_raw_parts(a.nrows(), n_out, indptr, indices, data)
}

/// Number of scalar multiply-accumulate operations `AᵀA` performs, i.e.
/// `Σ_k nnz(row k)²`. Used by the cost model to charge γ-flops.
pub fn ata_flops<T: Copy>(a: &CsrMatrix<T>) -> u64 {
    (0..a.nrows()).map(|k| (a.row_nnz(k) as u64).pow(2)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitmat::BitMatrix;
    use crate::coo::CooMatrix;
    use crate::semiring::{PlusTimes, PopcountAnd};

    /// Indicator matrix for samples {0,1,2}, {1,2,3}, {5} over 6 attributes.
    fn indicator() -> CooMatrix<u64> {
        let mut m = CooMatrix::new(6, 3);
        for r in [0usize, 1, 2] {
            m.push(r, 0, 1).unwrap();
        }
        for r in [1usize, 2, 3] {
            m.push(r, 1, 1).unwrap();
        }
        m.push(5, 2, 1).unwrap();
        m
    }

    #[test]
    fn ata_dense_counts_intersections() {
        let b = ata_dense::<PlusTimes<u64>>(&indicator().to_csr());
        assert_eq!(b.get(0, 0), 3);
        assert_eq!(b.get(1, 1), 3);
        assert_eq!(b.get(2, 2), 1);
        assert_eq!(b.get(0, 1), 2);
        assert_eq!(b.get(1, 0), 2);
        assert_eq!(b.get(0, 2), 0);
    }

    #[test]
    fn parallel_ata_matches_sequential() {
        let coo = indicator();
        let seq = ata_dense::<PlusTimes<u64>>(&coo.to_csr());
        let par = ata_dense_parallel::<PlusTimes<u64>>(&coo.to_csc(), &coo.to_csr()).unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn parallel_ata_rejects_mismatched_views() {
        let coo = indicator();
        let other = CooMatrix::<u64>::new(4, 3).to_csr();
        assert!(ata_dense_parallel::<PlusTimes<u64>>(&coo.to_csc(), &other).is_err());
    }

    #[test]
    fn popcount_ata_on_bitpacked_matches_boolean_ata() {
        // Pack the same indicator matrix and verify the popcount-AND
        // product equals the plus-times product on the unpacked matrix.
        let coo = indicator();
        let expected = ata_dense::<PlusTimes<u64>>(&coo.to_csr());
        let bm = BitMatrix::from_columns(6, &[vec![0, 1, 2], vec![1, 2, 3], vec![5]]).unwrap();
        let packed = ata_dense_parallel::<PopcountAnd>(bm.as_csc(), &bm.to_csr()).unwrap();
        assert_eq!(expected, packed);
    }

    #[test]
    fn atb_block_accumulates_and_counts_ops() {
        let coo = indicator();
        let csc = coo.to_csc();
        let csr = coo.to_csr();
        let mut out = DenseMatrix::<u64>::zeros(3, 3);
        let ops1 = atb_block_dense::<PlusTimes<u64>>(&csc, &csr, &mut out).unwrap();
        assert!(ops1 > 0);
        let expected = ata_dense::<PlusTimes<u64>>(&csr);
        assert_eq!(out, expected);
        // Accumulating again doubles every entry.
        atb_block_dense::<PlusTimes<u64>>(&csc, &csr, &mut out).unwrap();
        assert_eq!(out.get(0, 1), 2 * expected.get(0, 1));
    }

    #[test]
    fn atb_block_validates_shapes() {
        let coo = indicator();
        let csc = coo.to_csc();
        let csr = coo.to_csr();
        let mut wrong_out = DenseMatrix::<u64>::zeros(2, 3);
        assert!(atb_block_dense::<PlusTimes<u64>>(&csc, &csr, &mut wrong_out).is_err());
        let short = CooMatrix::<u64>::new(4, 3).to_csr();
        let mut out = DenseMatrix::<u64>::zeros(3, 3);
        assert!(atb_block_dense::<PlusTimes<u64>>(&csc, &short, &mut out).is_err());
    }

    #[test]
    fn spgemm_csr_matches_dense_reference() {
        // A = [[1,2],[0,3]], B = [[4,0],[5,6]] -> C = [[14,12],[15,18]]
        let a = CooMatrix::from_triples(2, 2, vec![(0, 0, 1u64), (0, 1, 2), (1, 1, 3)])
            .unwrap()
            .to_csr();
        let b = CooMatrix::from_triples(2, 2, vec![(0, 0, 4u64), (1, 0, 5), (1, 1, 6)])
            .unwrap()
            .to_csr();
        let c = spgemm_csr::<PlusTimes<u64>>(&a, &b).unwrap();
        let d = c.to_dense();
        assert_eq!(d.get(0, 0), 14);
        assert_eq!(d.get(0, 1), 12);
        assert_eq!(d.get(1, 0), 15);
        assert_eq!(d.get(1, 1), 18);
    }

    #[test]
    fn spgemm_csr_rejects_mismatched_inner_dims() {
        let a = CooMatrix::<u64>::new(2, 3).to_csr();
        let b = CooMatrix::<u64>::new(2, 2).to_csr();
        assert!(spgemm_csr::<PlusTimes<u64>>(&a, &b).is_err());
    }

    #[test]
    fn spgemm_drops_explicit_zero_results() {
        // Over i64, 1*1 + (-1)*1 = 0 should not be stored.
        let a = CooMatrix::from_triples(1, 2, vec![(0, 0, 1i64), (0, 1, -1)]).unwrap().to_csr();
        let b = CooMatrix::from_triples(2, 1, vec![(0, 0, 1i64), (1, 0, 1)]).unwrap().to_csr();
        let c = spgemm_csr::<PlusTimes<i64>>(&a, &b).unwrap();
        assert_eq!(c.nnz(), 0);
    }

    #[test]
    fn ata_flops_is_sum_of_squared_row_counts() {
        let csr = indicator().to_csr();
        // Row nnz: row0:1, row1:2, row2:2, row3:1, row4:0, row5:1.
        assert_eq!(ata_flops(&csr), 11); // 1 + 4 + 4 + 1 + 0 + 1
    }

    #[test]
    fn empty_inputs_produce_zero_outputs() {
        let empty = CooMatrix::<u64>::new(5, 3);
        let b = ata_dense::<PlusTimes<u64>>(&empty.to_csr());
        assert_eq!(b.count_nonzero(), 0);
        let par = ata_dense_parallel::<PlusTimes<u64>>(&empty.to_csc(), &empty.to_csr()).unwrap();
        assert_eq!(par.count_nonzero(), 0);
        assert_eq!(ata_flops(&empty.to_csr()), 0);
    }
}
