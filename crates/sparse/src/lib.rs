//! # gas-sparse — sparse linear algebra for SimilarityAtScale
//!
//! The paper implements its algebraic Jaccard formulation on top of the
//! Cyclops Tensor Framework: distributed sparse matrices with arbitrary
//! element types, user-defined semirings (the popcount-AND kernel), and a
//! sparse × sparse product with a **dense** output. This crate provides
//! the same building blocks in pure Rust:
//!
//! * local formats — [`coo::CooMatrix`], [`csr::CsrMatrix`],
//!   [`csc::CscMatrix`], [`dense::DenseMatrix`], and the bit-packed
//!   [`bitmat::BitMatrix`] used after the paper's masking step;
//! * algebraic structures — [`semiring::Semiring`] with the
//!   plus-times, or-and and popcount-AND instances used by the algorithm;
//! * local kernels — Gustavson SpGEMM and the `AᵀA`-with-dense-output
//!   kernels in [`spgemm`], including Rayon-parallel variants for on-node
//!   (intra-rank) parallelism;
//! * distributed objects — block-distributed matrices, the
//!   accumulate-write distributed sparse vector used for the zero-row
//!   filter, and SUMMA / 2.5D distributed `AᵀA` over a
//!   [`gas_dstsim::ProcessorGrid`] in [`dist`].
//!
//! ```
//! use gas_sparse::coo::CooMatrix;
//! use gas_sparse::semiring::PlusTimes;
//! use gas_sparse::spgemm::ata_dense;
//!
//! // A 3x2 boolean indicator matrix with samples {0,1} and {1,2}.
//! let mut a = CooMatrix::<u64>::new(3, 2);
//! a.push(0, 0, 1).unwrap();
//! a.push(1, 0, 1).unwrap();
//! a.push(1, 1, 1).unwrap();
//! a.push(2, 1, 1).unwrap();
//! let csr = a.to_csr();
//! let b = ata_dense::<PlusTimes<u64>>(&csr);
//! assert_eq!(b.get(0, 0), 2); // |X0| = 2
//! assert_eq!(b.get(0, 1), 1); // |X0 ∩ X1| = 1
//! assert_eq!(b.get(1, 1), 2); // |X1| = 2
//! ```

pub mod bitmat;
pub mod coo;
pub mod csc;
pub mod csr;
pub mod dense;
pub mod dist;
pub mod error;
pub mod semiring;
pub mod spgemm;

pub use bitmat::BitMatrix;
pub use coo::CooMatrix;
pub use csc::CscMatrix;
pub use csr::CsrMatrix;
pub use dense::DenseMatrix;
pub use error::{SparseError, SparseResult};
