//! Compressed Sparse Column (CSC) matrices.
//!
//! The indicator matrix `A` has one column per data sample, and several
//! stages of the algorithm are naturally column-oriented: reading each
//! sample's k-mers, bit-packing the column segments, and the
//! column-against-row kernel inside the distributed `AᵀA`. CSC stores the
//! entries of each column contiguously with row indices in increasing
//! order.

use serde::{Deserialize, Serialize};

use crate::csr::CsrMatrix;
use crate::error::{SparseError, SparseResult};

/// A sparse matrix in CSC form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CscMatrix<T> {
    nrows: usize,
    ncols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    data: Vec<T>,
}

impl<T: Copy> CscMatrix<T> {
    /// Construct from raw CSC arrays, validating their consistency.
    pub fn from_raw_parts(
        nrows: usize,
        ncols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        data: Vec<T>,
    ) -> SparseResult<Self> {
        if indptr.len() != ncols + 1 {
            return Err(SparseError::ShapeMismatch {
                context: format!("indptr has length {} for {} columns", indptr.len(), ncols),
            });
        }
        if indices.len() != data.len() {
            return Err(SparseError::ShapeMismatch {
                context: "indices and data lengths differ".to_string(),
            });
        }
        if *indptr.last().unwrap_or(&0) != indices.len() {
            return Err(SparseError::ShapeMismatch {
                context: "indptr does not terminate at nnz".to_string(),
            });
        }
        if indptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(SparseError::ShapeMismatch {
                context: "indptr must be non-decreasing".to_string(),
            });
        }
        if let Some(&bad) = indices.iter().find(|&&r| r >= nrows) {
            return Err(SparseError::IndexOutOfBounds { row: bad, col: 0, nrows, ncols });
        }
        Ok(CscMatrix { nrows, ncols, indptr, indices, data })
    }

    /// An empty matrix with no stored entries.
    pub fn empty(nrows: usize, ncols: usize) -> Self {
        CscMatrix {
            nrows,
            ncols,
            indptr: vec![0; ncols + 1],
            indices: Vec::new(),
            data: Vec::new(),
        }
    }

    /// Interpret a CSR matrix as the CSC representation of its transpose
    /// stored untransposed — i.e. reuse the arrays of `csr(Aᵀ)` as
    /// `csc(A)`.
    pub fn from_transposed_csr(csr_of_transpose: CsrMatrix<T>) -> Self {
        let ncols = csr_of_transpose.nrows();
        let nrows = csr_of_transpose.ncols();
        CscMatrix {
            nrows,
            ncols,
            indptr: csr_of_transpose.indptr().to_vec(),
            indices: csr_of_transpose.indices().to_vec(),
            data: csr_of_transpose.data().to_vec(),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Column pointers (length `ncols + 1`).
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Row indices of stored entries.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Values of stored entries.
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Number of stored entries in column `j`.
    #[inline]
    pub fn col_nnz(&self, j: usize) -> usize {
        self.indptr[j + 1] - self.indptr[j]
    }

    /// Iterate over `(row, value)` pairs of column `j`.
    #[inline]
    pub fn col(&self, j: usize) -> impl Iterator<Item = (usize, T)> + '_ {
        let start = self.indptr[j];
        let end = self.indptr[j + 1];
        self.indices[start..end].iter().zip(self.data[start..end].iter()).map(|(&r, &v)| (r, v))
    }

    /// Iterate over all `(row, column, value)` triples in column-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        (0..self.ncols).flat_map(move |j| self.col(j).map(move |(r, v)| (r, j, v)))
    }

    /// Convert to CSR.
    pub fn to_csr(&self) -> CsrMatrix<T> {
        let mut triples: Vec<(usize, usize, T)> = self.iter().collect();
        triples.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut indptr = vec![0usize; self.nrows + 1];
        let mut indices = Vec::with_capacity(triples.len());
        let mut data = Vec::with_capacity(triples.len());
        for (r, c, v) in triples {
            indptr[r + 1] += 1;
            indices.push(c);
            data.push(v);
        }
        for i in 0..self.nrows {
            indptr[i + 1] += indptr[i];
        }
        CsrMatrix::from_raw_parts(self.nrows, self.ncols, indptr, indices, data)
            .expect("CSC conversion produces consistent CSR")
    }

    /// Restrict to the columns listed in `keep` (in order), producing a
    /// matrix with `keep.len()` columns.
    pub fn select_cols(&self, keep: &[usize]) -> SparseResult<CscMatrix<T>> {
        let mut indptr = Vec::with_capacity(keep.len() + 1);
        indptr.push(0);
        let mut indices = Vec::new();
        let mut data = Vec::new();
        for &j in keep {
            if j >= self.ncols {
                return Err(SparseError::IndexOutOfBounds {
                    row: 0,
                    col: j,
                    nrows: self.nrows,
                    ncols: self.ncols,
                });
            }
            for (r, v) in self.col(j) {
                indices.push(r);
                data.push(v);
            }
            indptr.push(indices.len());
        }
        Ok(CscMatrix { nrows: self.nrows, ncols: keep.len(), indptr, indices, data })
    }

    /// Per-column entry counts (used for density/load-balance diagnostics;
    /// the BIGSI dataset has highly variable per-column density).
    pub fn col_counts(&self) -> Vec<usize> {
        (0..self.ncols).map(|j| self.col_nnz(j)).collect()
    }

    /// Remap row indices through `map` (e.g. the prefix-sum of the zero-row
    /// filter, Eq. 6), producing a matrix with `new_nrows` rows.
    pub fn remap_rows(&self, map: &[usize], new_nrows: usize) -> SparseResult<CscMatrix<T>> {
        if map.len() != self.nrows {
            return Err(SparseError::ShapeMismatch {
                context: format!("row map has {} entries for {} rows", map.len(), self.nrows),
            });
        }
        let mut indices = Vec::with_capacity(self.nnz());
        for &r in &self.indices {
            let nr = map[r];
            if nr >= new_nrows {
                return Err(SparseError::IndexOutOfBounds {
                    row: nr,
                    col: 0,
                    nrows: new_nrows,
                    ncols: self.ncols,
                });
            }
            indices.push(nr);
        }
        Ok(CscMatrix {
            nrows: new_nrows,
            ncols: self.ncols,
            indptr: self.indptr.clone(),
            indices,
            data: self.data.clone(),
        })
    }
}

impl<T: Copy + Default + PartialEq> CscMatrix<T> {
    /// Convert to a dense matrix (for tests and small examples).
    pub fn to_dense(&self) -> crate::dense::DenseMatrix<T> {
        let mut d = crate::dense::DenseMatrix::zeros(self.nrows, self.ncols);
        for (r, c, v) in self.iter() {
            d.set(r, c, v);
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn sample() -> CscMatrix<u64> {
        // [ 1 0 ]
        // [ 2 3 ]
        // [ 0 4 ]
        CooMatrix::from_triples(3, 2, vec![(0, 0, 1u64), (1, 0, 2), (1, 1, 3), (2, 1, 4)])
            .unwrap()
            .to_csc()
    }

    #[test]
    fn raw_parts_validation() {
        assert!(CscMatrix::<u8>::from_raw_parts(2, 2, vec![0, 1], vec![0], vec![1]).is_err());
        assert!(
            CscMatrix::<u8>::from_raw_parts(2, 2, vec![0, 1, 1], vec![0, 1], vec![1, 1]).is_err()
        );
        assert!(
            CscMatrix::<u8>::from_raw_parts(2, 2, vec![0, 1, 2], vec![0, 9], vec![1, 1]).is_err()
        );
        assert!(
            CscMatrix::<u8>::from_raw_parts(2, 2, vec![0, 2, 1], vec![0, 1], vec![1, 1]).is_err()
        );
        assert!(
            CscMatrix::<u8>::from_raw_parts(2, 2, vec![0, 1, 2], vec![0, 1], vec![1, 1]).is_ok()
        );
    }

    #[test]
    fn column_access() {
        let m = sample();
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.col_nnz(0), 2);
        assert_eq!(m.col(1).collect::<Vec<_>>(), vec![(1, 3), (2, 4)]);
        assert_eq!(m.col_counts(), vec![2, 2]);
    }

    #[test]
    fn csr_roundtrip_preserves_entries() {
        let m = sample();
        let csr = m.to_csr();
        assert_eq!(csr.to_dense(), m.to_dense());
    }

    #[test]
    fn select_cols_picks_subset() {
        let m = sample();
        let s = m.select_cols(&[1]).unwrap();
        assert_eq!(s.ncols(), 1);
        assert_eq!(s.col(0).collect::<Vec<_>>(), vec![(1, 3), (2, 4)]);
        assert!(m.select_cols(&[5]).is_err());
    }

    #[test]
    fn remap_rows_applies_prefix_sum_style_map() {
        let m = sample();
        // Collapse rows {0,1,2} -> {0,0,1}: row 1 becomes 0, row 2 becomes 1.
        let remapped = m.remap_rows(&[0, 0, 1], 2).unwrap();
        assert_eq!(remapped.nrows(), 2);
        assert_eq!(remapped.col(1).collect::<Vec<_>>(), vec![(0, 3), (1, 4)]);
        assert!(m.remap_rows(&[0, 0], 2).is_err());
        assert!(m.remap_rows(&[0, 0, 9], 2).is_err());
    }

    #[test]
    fn from_transposed_csr_reuses_layout() {
        let csr = CooMatrix::from_triples(2, 3, vec![(0, 1, 5u32), (1, 2, 6)]).unwrap().to_csr();
        // csr is a 2x3 matrix; reinterpreting it as CSC of its transpose
        // gives a 3x2 matrix whose column j is csr's row j.
        let csc = CscMatrix::from_transposed_csr(csr);
        assert_eq!(csc.nrows(), 3);
        assert_eq!(csc.ncols(), 2);
        assert_eq!(csc.col(0).collect::<Vec<_>>(), vec![(1, 5)]);
        assert_eq!(csc.col(1).collect::<Vec<_>>(), vec![(2, 6)]);
    }

    #[test]
    fn empty_matrix() {
        let m = CscMatrix::<u16>::empty(3, 4);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.col_counts(), vec![0, 0, 0, 0]);
        assert_eq!(m.to_csr().nnz(), 0);
    }
}
