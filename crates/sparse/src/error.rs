//! Error types for the sparse linear-algebra crate.

use std::fmt;

/// Result alias for sparse-matrix operations.
pub type SparseResult<T> = Result<T, SparseError>;

/// Errors produced by sparse-matrix construction and kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// An entry was outside the matrix bounds.
    IndexOutOfBounds {
        /// Row of the offending entry.
        row: usize,
        /// Column of the offending entry.
        col: usize,
        /// Number of rows of the matrix.
        nrows: usize,
        /// Number of columns of the matrix.
        ncols: usize,
    },
    /// Two operands have incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the mismatch.
        context: String,
    },
    /// A distributed operation was invoked with an invalid grid or
    /// distribution.
    InvalidDistribution(String),
    /// An underlying communication error from the simulated runtime.
    Comm(String),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::IndexOutOfBounds { row, col, nrows, ncols } => {
                write!(f, "entry ({row}, {col}) is outside a {nrows}x{ncols} matrix")
            }
            SparseError::ShapeMismatch { context } => write!(f, "shape mismatch: {context}"),
            SparseError::InvalidDistribution(msg) => write!(f, "invalid distribution: {msg}"),
            SparseError::Comm(msg) => write!(f, "communication error: {msg}"),
        }
    }
}

impl std::error::Error for SparseError {}

impl From<gas_dstsim::SimError> for SparseError {
    fn from(e: gas_dstsim::SimError) -> Self {
        SparseError::Comm(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SparseError::IndexOutOfBounds { row: 5, col: 6, nrows: 2, ncols: 3 };
        assert!(e.to_string().contains("(5, 6)"));
        assert!(e.to_string().contains("2x3"));
        let e = SparseError::ShapeMismatch { context: "a.cols != b.rows".into() };
        assert!(e.to_string().contains("a.cols"));
        let e = SparseError::InvalidDistribution("empty grid".into());
        assert!(e.to_string().contains("empty grid"));
    }

    #[test]
    fn sim_errors_convert() {
        let e: SparseError = gas_dstsim::SimError::InvalidWorldSize(0).into();
        assert!(matches!(e, SparseError::Comm(_)));
    }
}
