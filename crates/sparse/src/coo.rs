//! Coordinate-format (COO) sparse matrices.
//!
//! COO is the construction format: the preprocessing stages of
//! SimilarityAtScale generate `(row, column, value)` triples — k-mer
//! presence bits, filtered row indices, bit-packed words — which are then
//! converted to CSR/CSC for the compute kernels, mirroring how the
//! Cyclops `write()` primitive assembles distributed tensors from
//! per-process triples.

use serde::{Deserialize, Serialize};

use crate::csc::CscMatrix;
use crate::csr::CsrMatrix;
use crate::error::{SparseError, SparseResult};

/// A sparse matrix stored as unsorted `(row, col, value)` triples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CooMatrix<T> {
    nrows: usize,
    ncols: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<T>,
}

impl<T: Copy> CooMatrix<T> {
    /// Create an empty `nrows × ncols` COO matrix.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        CooMatrix { nrows, ncols, rows: Vec::new(), cols: Vec::new(), vals: Vec::new() }
    }

    /// Create an empty matrix with preallocated capacity for `cap` entries.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries (duplicates counted separately).
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Append an entry.
    pub fn push(&mut self, row: usize, col: usize, val: T) -> SparseResult<()> {
        if row >= self.nrows || col >= self.ncols {
            return Err(SparseError::IndexOutOfBounds {
                row,
                col,
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(val);
        Ok(())
    }

    /// Build from parallel triple arrays.
    pub fn from_triples(
        nrows: usize,
        ncols: usize,
        triples: impl IntoIterator<Item = (usize, usize, T)>,
    ) -> SparseResult<Self> {
        let mut m = CooMatrix::new(nrows, ncols);
        for (r, c, v) in triples {
            m.push(r, c, v)?;
        }
        Ok(m)
    }

    /// Iterate over stored entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        self.rows.iter().zip(self.cols.iter()).zip(self.vals.iter()).map(|((&r, &c), &v)| (r, c, v))
    }

    /// Convert to CSR, summing duplicate entries with `combine`.
    pub fn to_csr_with(&self, combine: impl Fn(T, T) -> T) -> CsrMatrix<T> {
        // Counting sort by row, then sort each row segment by column.
        let mut row_counts = vec![0usize; self.nrows + 1];
        for &r in &self.rows {
            row_counts[r + 1] += 1;
        }
        for i in 0..self.nrows {
            row_counts[i + 1] += row_counts[i];
        }
        let mut order: Vec<usize> = (0..self.nnz()).collect();
        order.sort_unstable_by_key(|&k| (self.rows[k], self.cols[k]));

        let mut indptr = vec![0usize; self.nrows + 1];
        let mut indices = Vec::with_capacity(self.nnz());
        let mut data: Vec<T> = Vec::with_capacity(self.nnz());
        let mut last: Option<(usize, usize)> = None;
        for &k in &order {
            let (r, c, v) = (self.rows[k], self.cols[k], self.vals[k]);
            if last == Some((r, c)) {
                let d = data.last_mut().expect("duplicate follows an entry");
                *d = combine(*d, v);
            } else {
                indices.push(c);
                data.push(v);
                indptr[r + 1] += 1;
                last = Some((r, c));
            }
        }
        for i in 0..self.nrows {
            indptr[i + 1] += indptr[i];
        }
        CsrMatrix::from_raw_parts(self.nrows, self.ncols, indptr, indices, data)
            .expect("COO conversion produces consistent CSR")
    }

    /// Convert to CSC, summing duplicate entries with `combine`.
    pub fn to_csc_with(&self, combine: impl Fn(T, T) -> T) -> CscMatrix<T> {
        let transposed = CooMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            rows: self.cols.clone(),
            cols: self.rows.clone(),
            vals: self.vals.clone(),
        };
        let csr_t = transposed.to_csr_with(combine);
        CscMatrix::from_transposed_csr(csr_t)
    }
}

impl<T: Copy + std::ops::Add<Output = T>> CooMatrix<T> {
    /// Convert to CSR, summing duplicates with `+`.
    pub fn to_csr(&self) -> CsrMatrix<T> {
        self.to_csr_with(|a, b| a + b)
    }

    /// Convert to CSC, summing duplicates with `+`.
    pub fn to_csc(&self) -> CscMatrix<T> {
        self.to_csc_with(|a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_validates_bounds() {
        let mut m = CooMatrix::<u32>::new(2, 2);
        assert!(m.push(0, 0, 1).is_ok());
        assert!(m.push(2, 0, 1).is_err());
        assert!(m.push(0, 2, 1).is_err());
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn to_csr_sorts_and_merges_duplicates() {
        let m = CooMatrix::from_triples(
            3,
            3,
            vec![(2, 1, 1u32), (0, 2, 5), (0, 0, 1), (2, 1, 3), (1, 1, 2)],
        )
        .unwrap();
        let csr = m.to_csr();
        assert_eq!(csr.nnz(), 4);
        assert_eq!(csr.row(0).collect::<Vec<_>>(), vec![(0, 1), (2, 5)]);
        assert_eq!(csr.row(1).collect::<Vec<_>>(), vec![(1, 2)]);
        assert_eq!(csr.row(2).collect::<Vec<_>>(), vec![(1, 4)]);
    }

    #[test]
    fn to_csc_groups_by_column() {
        let m = CooMatrix::from_triples(3, 2, vec![(0, 0, 1u64), (2, 0, 2), (1, 1, 3)]).unwrap();
        let csc = m.to_csc();
        assert_eq!(csc.col(0).collect::<Vec<_>>(), vec![(0, 1), (2, 2)]);
        assert_eq!(csc.col(1).collect::<Vec<_>>(), vec![(1, 3)]);
    }

    #[test]
    fn custom_combine_uses_max() {
        let m = CooMatrix::from_triples(1, 1, vec![(0, 0, 3u32), (0, 0, 7), (0, 0, 5)]).unwrap();
        let csr = m.to_csr_with(|a, b| a.max(b));
        assert_eq!(csr.row(0).collect::<Vec<_>>(), vec![(0, 7)]);
    }

    #[test]
    fn iter_yields_all_entries() {
        let m = CooMatrix::from_triples(2, 2, vec![(0, 1, 9u8), (1, 0, 8)]).unwrap();
        let collected: Vec<_> = m.iter().collect();
        assert_eq!(collected, vec![(0, 1, 9), (1, 0, 8)]);
    }

    #[test]
    fn empty_matrix_converts_cleanly() {
        let m = CooMatrix::<u64>::new(4, 3);
        let csr = m.to_csr();
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.nrows(), 4);
        let csc = m.to_csc();
        assert_eq!(csc.nnz(), 0);
        assert_eq!(csc.ncols(), 3);
    }
}
