//! Distributed sparse objects over the simulated runtime.
//!
//! This is the Cyclops-equivalent layer of the reproduction: the
//! distributed zero-row [`filter`] (the paper's `(max, ×)`
//! accumulate-write formulation of Eqs. 5–6, realized as an OR-allreduce
//! of packed row bitmaps) and the rectangular-grid 2.5D SUMMA `AᵀA`
//! product ([`ata::DistAta`], Section III-C of the paper) that computes
//! the intersection-count matrix `B` over the popcount-AND semiring on
//! bit-packed batches, using every rank for every rank count.

pub mod ata;
pub mod filter;

pub use ata::DistAta;
pub use filter::{dist_row_filter, dist_row_filter_indexed, RowFilter};
