//! Distributed sparse objects over the simulated runtime.
//!
//! This is the Cyclops-equivalent layer of the reproduction: the
//! distributed zero-row [`filter`] (the `(max, ×)` accumulate-write +
//! allgather pattern of Eqs. 5–6) and the 2.5D SUMMA `AᵀA` product
//! ([`ata::DistAta`], Section III-C of the paper) that computes the
//! intersection-count matrix `B` over the popcount-AND semiring on
//! bit-packed batches.

pub mod ata;
pub mod filter;

pub use ata::DistAta;
pub use filter::{dist_row_filter, RowFilter};
