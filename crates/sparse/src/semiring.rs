//! Algebraic structures for sparse kernels.
//!
//! Cyclops lets the user attach a monoid or semiring to each tensor and
//! contraction; the paper uses this to express the Jaccard intersection
//! counts as `B["ij"] = popcount(A["ki"] & A["kj"])` — a matrix product
//! over the **popcount-AND semiring** on bit-packed words — and the filter
//! vector accumulation over a `(max, ×)` monoid. This module provides the
//! same abstraction: a [`Semiring`] describes the element-wise multiply
//! and the additive accumulation of a (possibly mixed-type) matrix
//! product.

use std::marker::PhantomData;

/// A commutative monoid: an associative binary operation with identity.
pub trait Monoid {
    /// Element type the monoid operates on.
    type Elem: Copy;
    /// The identity element.
    fn identity() -> Self::Elem;
    /// The associative combination.
    fn combine(a: Self::Elem, b: Self::Elem) -> Self::Elem;
}

/// Addition monoid over a numeric type.
#[derive(Debug, Clone, Copy, Default)]
pub struct SumMonoid<T>(PhantomData<T>);

macro_rules! impl_sum_monoid {
    ($($t:ty),*) => {$(
        impl Monoid for SumMonoid<$t> {
            type Elem = $t;
            fn identity() -> $t { 0 as $t }
            fn combine(a: $t, b: $t) -> $t { a + b }
        }
    )*};
}
impl_sum_monoid!(u8, u16, u32, u64, usize, i32, i64, f32, f64);

/// Maximum monoid over a numeric type (the `(max, ×)` structure used for
/// the filter-vector writes: an entry is 1 if *any* rank wrote 1).
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxMonoid<T>(PhantomData<T>);

macro_rules! impl_max_monoid {
    ($($t:ty),*) => {$(
        impl Monoid for MaxMonoid<$t> {
            type Elem = $t;
            fn identity() -> $t { <$t>::MIN }
            fn combine(a: $t, b: $t) -> $t { if a >= b { a } else { b } }
        }
    )*};
}
impl_max_monoid!(u8, u16, u32, u64, usize, i32, i64);

/// Logical-or monoid over booleans.
#[derive(Debug, Clone, Copy, Default)]
pub struct OrMonoid;

impl Monoid for OrMonoid {
    type Elem = bool;
    fn identity() -> bool {
        false
    }
    fn combine(a: bool, b: bool) -> bool {
        a || b
    }
}

/// A semiring for a matrix product `C[i][j] ⊕= A[i][k] ⊗ B[k][j]` with
/// possibly different input and output element types.
pub trait Semiring {
    /// Element type of the left operand.
    type Left: Copy;
    /// Element type of the right operand.
    type Right: Copy;
    /// Element type of the accumulator / output.
    type Out: Copy;

    /// Additive identity of the output type.
    fn zero() -> Self::Out;
    /// The "multiplication" of the semiring.
    fn mul(a: Self::Left, b: Self::Right) -> Self::Out;
    /// The "addition" (accumulation) of the semiring.
    fn add(acc: Self::Out, x: Self::Out) -> Self::Out;
}

/// The ordinary `(+, ×)` semiring over a single numeric type.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlusTimes<T>(PhantomData<T>);

macro_rules! impl_plus_times {
    ($($t:ty),*) => {$(
        impl Semiring for PlusTimes<$t> {
            type Left = $t;
            type Right = $t;
            type Out = $t;
            fn zero() -> $t { 0 as $t }
            fn mul(a: $t, b: $t) -> $t { a * b }
            fn add(acc: $t, x: $t) -> $t { acc + x }
        }
    )*};
}
impl_plus_times!(u8, u16, u32, u64, usize, i32, i64, f32, f64);

/// The boolean `(∨, ∧)` semiring.
#[derive(Debug, Clone, Copy, Default)]
pub struct OrAnd;

impl Semiring for OrAnd {
    type Left = bool;
    type Right = bool;
    type Out = bool;
    fn zero() -> bool {
        false
    }
    fn mul(a: bool, b: bool) -> bool {
        a && b
    }
    fn add(acc: bool, x: bool) -> bool {
        acc || x
    }
}

/// The popcount-AND semiring used by SimilarityAtScale on bit-packed rows:
/// inputs are `b`-bit masks (here `u64` words), the product of two masks is
/// the number of bit positions set in both, and products are accumulated
/// with ordinary addition (Eq. 7 of the paper).
#[derive(Debug, Clone, Copy, Default)]
pub struct PopcountAnd;

impl Semiring for PopcountAnd {
    type Left = u64;
    type Right = u64;
    type Out = u64;
    fn zero() -> u64 {
        0
    }
    fn mul(a: u64, b: u64) -> u64 {
        (a & b).count_ones() as u64
    }
    fn add(acc: u64, x: u64) -> u64 {
        acc + x
    }
}

/// Fold an iterator of elements with a monoid.
pub fn fold_monoid<M: Monoid>(iter: impl IntoIterator<Item = M::Elem>) -> M::Elem {
    iter.into_iter().fold(M::identity(), M::combine)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_and_max_monoids() {
        assert_eq!(SumMonoid::<u64>::identity(), 0);
        assert_eq!(SumMonoid::<u64>::combine(3, 4), 7);
        assert_eq!(MaxMonoid::<u8>::combine(3, 4), 4);
        assert_eq!(MaxMonoid::<i64>::identity(), i64::MIN);
        assert!(OrMonoid::combine(false, true));
        assert!(!OrMonoid::identity());
    }

    #[test]
    fn fold_monoid_sums() {
        assert_eq!(fold_monoid::<SumMonoid<u32>>([1, 2, 3, 4]), 10);
        assert_eq!(fold_monoid::<MaxMonoid<u32>>([1, 7, 3]), 7);
        assert!(fold_monoid::<OrMonoid>([false, false, true]));
    }

    #[test]
    fn plus_times_is_ordinary_arithmetic() {
        assert_eq!(PlusTimes::<f64>::mul(2.0, 3.0), 6.0);
        assert_eq!(PlusTimes::<f64>::add(1.0, 6.0), 7.0);
        assert_eq!(PlusTimes::<u64>::zero(), 0);
    }

    #[test]
    fn or_and_semiring() {
        assert!(OrAnd::mul(true, true));
        assert!(!OrAnd::mul(true, false));
        assert!(OrAnd::add(false, true));
        assert!(!OrAnd::zero());
    }

    #[test]
    fn popcount_and_counts_shared_bits() {
        // 0b1011 & 0b1110 = 0b1010 -> 2 bits.
        assert_eq!(PopcountAnd::mul(0b1011, 0b1110), 2);
        assert_eq!(PopcountAnd::mul(u64::MAX, u64::MAX), 64);
        assert_eq!(PopcountAnd::mul(0, u64::MAX), 0);
        assert_eq!(PopcountAnd::add(5, 7), 12);
        assert_eq!(PopcountAnd::zero(), 0);
    }
}
