//! Compressed Sparse Row (CSR) matrices.
//!
//! CSR is the row-major compute format: the `AᵀA` kernels iterate over the
//! rows of a batch (k-mer rows, or bit-packed word rows after masking) and
//! combine the samples appearing in each row. The paper's hypersparsity
//! discussion (Section III-B) notes that per-row metadata is what the
//! bitmask compression reduces — a CSR row pointer costs as much as a
//! nonzero, so shrinking the number of rows by `b` matters.

use serde::{Deserialize, Serialize};

use crate::error::{SparseError, SparseResult};

/// A sparse matrix in CSR form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix<T> {
    nrows: usize,
    ncols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    data: Vec<T>,
}

impl<T: Copy> CsrMatrix<T> {
    /// Construct from raw CSR arrays, validating their consistency.
    pub fn from_raw_parts(
        nrows: usize,
        ncols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        data: Vec<T>,
    ) -> SparseResult<Self> {
        if indptr.len() != nrows + 1 {
            return Err(SparseError::ShapeMismatch {
                context: format!("indptr has length {} for {} rows", indptr.len(), nrows),
            });
        }
        if indices.len() != data.len() {
            return Err(SparseError::ShapeMismatch {
                context: "indices and data lengths differ".to_string(),
            });
        }
        if *indptr.last().unwrap_or(&0) != indices.len() {
            return Err(SparseError::ShapeMismatch {
                context: "indptr does not terminate at nnz".to_string(),
            });
        }
        if indptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(SparseError::ShapeMismatch {
                context: "indptr must be non-decreasing".to_string(),
            });
        }
        if let Some(&bad) = indices.iter().find(|&&c| c >= ncols) {
            return Err(SparseError::IndexOutOfBounds { row: 0, col: bad, nrows, ncols });
        }
        Ok(CsrMatrix { nrows, ncols, indptr, indices, data })
    }

    /// An empty matrix with no stored entries.
    pub fn empty(nrows: usize, ncols: usize) -> Self {
        CsrMatrix {
            nrows,
            ncols,
            indptr: vec![0; nrows + 1],
            indices: Vec::new(),
            data: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Row pointers (length `nrows + 1`).
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Column indices of stored entries.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Values of stored entries.
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Number of stored entries in row `i`.
    #[inline]
    pub fn row_nnz(&self, i: usize) -> usize {
        self.indptr[i + 1] - self.indptr[i]
    }

    /// Iterate over `(column, value)` pairs of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> impl Iterator<Item = (usize, T)> + '_ {
        let start = self.indptr[i];
        let end = self.indptr[i + 1];
        self.indices[start..end].iter().zip(self.data[start..end].iter()).map(|(&c, &v)| (c, v))
    }

    /// Iterate over all `(row, column, value)` triples in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        (0..self.nrows).flat_map(move |i| self.row(i).map(move |(c, v)| (i, c, v)))
    }

    /// Density `nnz / (nrows * ncols)`.
    pub fn density(&self) -> f64 {
        if self.nrows == 0 || self.ncols == 0 {
            return 0.0;
        }
        self.nnz() as f64 / (self.nrows as f64 * self.ncols as f64)
    }

    /// Number of rows that contain at least one stored entry. The paper's
    /// zero-row filter exists precisely because for genomic data this is a
    /// tiny fraction of `nrows`.
    pub fn num_nonzero_rows(&self) -> usize {
        (0..self.nrows).filter(|&i| self.row_nnz(i) > 0).count()
    }

    /// Transpose into a new CSR matrix.
    pub fn transpose(&self) -> CsrMatrix<T> {
        let mut triples: Vec<(usize, usize, T)> = self.iter().map(|(r, c, v)| (c, r, v)).collect();
        triples.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut indptr = vec![0usize; self.ncols + 1];
        let mut indices = Vec::with_capacity(triples.len());
        let mut data = Vec::with_capacity(triples.len());
        for (r, c, v) in triples {
            indptr[r + 1] += 1;
            indices.push(c);
            data.push(v);
        }
        for i in 0..self.ncols {
            indptr[i + 1] += indptr[i];
        }
        CsrMatrix { nrows: self.ncols, ncols: self.nrows, indptr, indices, data }
    }

    /// Restrict the matrix to the rows in `keep` (in order), producing a
    /// matrix with `keep.len()` rows — the "remove zero rows" operation of
    /// Eq. (6) when `keep` lists the nonzero rows.
    pub fn select_rows(&self, keep: &[usize]) -> SparseResult<CsrMatrix<T>> {
        let mut indptr = Vec::with_capacity(keep.len() + 1);
        indptr.push(0);
        let mut indices = Vec::new();
        let mut data = Vec::new();
        for &r in keep {
            if r >= self.nrows {
                return Err(SparseError::IndexOutOfBounds {
                    row: r,
                    col: 0,
                    nrows: self.nrows,
                    ncols: self.ncols,
                });
            }
            for (c, v) in self.row(r) {
                indices.push(c);
                data.push(v);
            }
            indptr.push(indices.len());
        }
        Ok(CsrMatrix { nrows: keep.len(), ncols: self.ncols, indptr, indices, data })
    }

    /// Column sums evaluated with `add`, starting from `zero` — used for
    /// the per-sample cardinalities `ĉ_i = Σ_k a_ki`.
    pub fn col_fold<U: Copy>(&self, zero: U, add: impl Fn(U, T) -> U) -> Vec<U> {
        let mut out = vec![zero; self.ncols];
        for (_, c, v) in self.iter() {
            out[c] = add(out[c], v);
        }
        out
    }
}

impl<T: Copy + Default + PartialEq> CsrMatrix<T> {
    /// Convert to a dense matrix (for tests and small examples).
    pub fn to_dense(&self) -> crate::dense::DenseMatrix<T> {
        let mut d = crate::dense::DenseMatrix::zeros(self.nrows, self.ncols);
        for (r, c, v) in self.iter() {
            d.set(r, c, v);
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn sample() -> CsrMatrix<u64> {
        // [ 1 0 2 ]
        // [ 0 0 0 ]
        // [ 3 4 0 ]
        CooMatrix::from_triples(3, 3, vec![(0, 0, 1u64), (0, 2, 2), (2, 0, 3), (2, 1, 4)])
            .unwrap()
            .to_csr()
    }

    #[test]
    fn raw_parts_validation() {
        assert!(CsrMatrix::<u8>::from_raw_parts(2, 2, vec![0, 1], vec![0], vec![1]).is_err());
        assert!(CsrMatrix::<u8>::from_raw_parts(2, 2, vec![0, 1, 1], vec![0, 1], vec![1]).is_err());
        assert!(
            CsrMatrix::<u8>::from_raw_parts(2, 2, vec![0, 2, 1], vec![0, 1], vec![1, 1]).is_err()
        );
        assert!(
            CsrMatrix::<u8>::from_raw_parts(2, 2, vec![0, 1, 2], vec![0, 5], vec![1, 1]).is_err()
        );
        assert!(
            CsrMatrix::<u8>::from_raw_parts(2, 2, vec![0, 1, 2], vec![0, 1], vec![1, 1]).is_ok()
        );
    }

    #[test]
    fn row_access_and_counts() {
        let m = sample();
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.row_nnz(0), 2);
        assert_eq!(m.row_nnz(1), 0);
        assert_eq!(m.num_nonzero_rows(), 2);
        assert_eq!(m.row(2).collect::<Vec<_>>(), vec![(0, 3), (1, 4)]);
        assert!((m.density() - 4.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.row(0).collect::<Vec<_>>(), vec![(0, 1), (2, 3)]);
        assert_eq!(t.row(1).collect::<Vec<_>>(), vec![(2, 4)]);
        let tt = t.transpose();
        assert_eq!(tt.to_dense(), m.to_dense());
    }

    #[test]
    fn select_rows_filters_zero_rows() {
        let m = sample();
        let filtered = m.select_rows(&[0, 2]).unwrap();
        assert_eq!(filtered.nrows(), 2);
        assert_eq!(filtered.nnz(), 4);
        assert_eq!(filtered.row(1).collect::<Vec<_>>(), vec![(0, 3), (1, 4)]);
        assert!(m.select_rows(&[7]).is_err());
    }

    #[test]
    fn col_fold_computes_column_sums() {
        let m = sample();
        let sums = m.col_fold(0u64, |acc, v| acc + v);
        assert_eq!(sums, vec![4, 4, 2]);
    }

    #[test]
    fn empty_matrix_behaves() {
        let m = CsrMatrix::<u64>::empty(3, 2);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.num_nonzero_rows(), 0);
        assert_eq!(m.transpose().nrows(), 2);
        assert_eq!(m.density(), 0.0);
        assert_eq!(CsrMatrix::<u64>::empty(0, 0).density(), 0.0);
    }

    #[test]
    fn to_dense_matches_entries() {
        let m = sample();
        let d = m.to_dense();
        assert_eq!(d.get(0, 2), 2);
        assert_eq!(d.get(1, 1), 0);
        assert_eq!(d.get(2, 1), 4);
    }
}
