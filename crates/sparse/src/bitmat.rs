//! Bit-packed ("masked") matrices.
//!
//! After zero-row filtering, SimilarityAtScale compresses each batch by
//! encoding segments of `b` consecutive rows of every column into a
//! `b`-bit word (Section III-B). This shrinks the number of stored rows —
//! and therefore the per-row metadata of the CSR/CSC representation — by a
//! factor of `b`, and lets the matrix product use a hardware `popcount`
//! over `AND`-ed words (Eq. 7). A [`BitMatrix`] is a CSC matrix of `u64`
//! words: `word_rows = ⌈rows / b⌉` rows, one column per data sample.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::csc::CscMatrix;
use crate::csr::CsrMatrix;
use crate::error::{SparseError, SparseResult};

/// Number of rows packed into one machine word.
pub const WORD_BITS: usize = 64;

/// Pack row indices into a dense `⌈nrows / 64⌉`-word bitmap: bit `r` is
/// set iff `r` appears in `rows`. Indices `≥ nrows` are ignored (the same
/// clipping semantics as [`crate::dist::filter::RowFilter::from_local`]).
///
/// Large inputs are packed in parallel: the index list is split into
/// chunks, each chunk builds a partial bitmap, and the partials are
/// OR-merged — the shared-memory analogue of the paper's accumulate-write
/// filter construction over a `(max, ×)` monoid.
pub fn pack_row_bitmap(nrows: usize, rows: &[usize]) -> Vec<u64> {
    let nwords = nrows.div_ceil(WORD_BITS);
    let mut words = vec![0u64; nwords];
    if rows.is_empty() || nwords == 0 {
        return words;
    }
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let chunk_size = rows.len().div_ceil(threads).max(1 << 13);
    if chunk_size >= rows.len() {
        for &r in rows {
            if r < nrows {
                words[r / WORD_BITS] |= 1u64 << (r % WORD_BITS);
            }
        }
        return words;
    }
    let partials: Vec<Vec<u64>> = rows
        .par_chunks(chunk_size)
        .map(|chunk| {
            let mut partial = vec![0u64; nwords];
            for &r in chunk {
                if r < nrows {
                    partial[r / WORD_BITS] |= 1u64 << (r % WORD_BITS);
                }
            }
            partial
        })
        .collect();
    for partial in partials {
        for (w, p) in words.iter_mut().zip(partial) {
            *w |= p;
        }
    }
    words
}

/// The set bits of a packed bitmap as ascending row indices.
pub fn bitmap_rows(words: &[u64]) -> Vec<usize> {
    let mut out = Vec::with_capacity(bitmap_count_ones(words) as usize);
    for (wi, &word) in words.iter().enumerate() {
        let mut w = word;
        while w != 0 {
            let bit = w.trailing_zeros() as usize;
            out.push(wi * WORD_BITS + bit);
            w &= w - 1;
        }
    }
    out
}

/// Number of set bits in a packed bitmap.
pub fn bitmap_count_ones(words: &[u64]) -> u64 {
    words.iter().map(|w| w.count_ones() as u64).sum()
}

/// A boolean matrix with rows packed into 64-bit words, stored per column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BitMatrix {
    /// Packed words: `words.nrows() == word_rows`, one column per sample.
    words: CscMatrix<u64>,
    /// Number of boolean rows before packing.
    orig_rows: usize,
}

impl BitMatrix {
    /// Pack a boolean matrix given as "sorted row indices present in each
    /// column" (the natural output of the per-sample k-mer row lists).
    ///
    /// `nrows` is the number of boolean rows (after zero-row filtering);
    /// `columns[j]` lists the rows set in column `j`, in strictly
    /// increasing order.
    pub fn from_columns(nrows: usize, columns: &[Vec<usize>]) -> SparseResult<Self> {
        let word_rows = nrows.div_ceil(WORD_BITS);
        let ncols = columns.len();
        let mut indptr = Vec::with_capacity(ncols + 1);
        indptr.push(0usize);
        let mut indices = Vec::new();
        let mut data = Vec::new();
        for (j, rows) in columns.iter().enumerate() {
            let mut current_word: Option<(usize, u64)> = None;
            let mut last_row: Option<usize> = None;
            for &r in rows {
                if r >= nrows {
                    return Err(SparseError::IndexOutOfBounds { row: r, col: j, nrows, ncols });
                }
                if let Some(prev) = last_row {
                    if r <= prev {
                        return Err(SparseError::ShapeMismatch {
                            context: format!(
                                "column {j} row indices must be strictly increasing ({prev} then {r})"
                            ),
                        });
                    }
                }
                last_row = Some(r);
                let w = r / WORD_BITS;
                let bit = 1u64 << (r % WORD_BITS);
                match current_word {
                    Some((cw, mask)) if cw == w => current_word = Some((cw, mask | bit)),
                    Some((cw, mask)) => {
                        indices.push(cw);
                        data.push(mask);
                        current_word = Some((w, bit));
                    }
                    None => current_word = Some((w, bit)),
                }
            }
            if let Some((cw, mask)) = current_word {
                indices.push(cw);
                data.push(mask);
            }
            indptr.push(indices.len());
        }
        let words = CscMatrix::from_raw_parts(word_rows, ncols, indptr, indices, data)?;
        Ok(BitMatrix { words, orig_rows: nrows })
    }

    /// Pack an existing boolean CSC matrix (any nonzero value counts as
    /// "present").
    pub fn from_csc_bool<T: Copy>(csc: &CscMatrix<T>) -> SparseResult<Self> {
        let columns: Vec<Vec<usize>> =
            (0..csc.ncols()).map(|j| csc.col(j).map(|(r, _)| r).collect()).collect();
        BitMatrix::from_columns(csc.nrows(), &columns)
    }

    /// Number of boolean rows before packing.
    pub fn orig_rows(&self) -> usize {
        self.orig_rows
    }

    /// Number of packed word rows (`⌈orig_rows / 64⌉`).
    pub fn word_rows(&self) -> usize {
        self.words.nrows()
    }

    /// Number of columns (data samples).
    pub fn ncols(&self) -> usize {
        self.words.ncols()
    }

    /// Number of stored words.
    pub fn nnz_words(&self) -> usize {
        self.words.nnz()
    }

    /// Total number of set bits (the number of boolean nonzeros packed).
    pub fn count_ones(&self) -> u64 {
        self.words.data().iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Set bits per column — exactly the per-sample cardinalities
    /// `ĉ_i = Σ_k a_ki` of the packed batch.
    pub fn col_popcounts(&self) -> Vec<u64> {
        (0..self.ncols())
            .map(|j| self.words.col(j).map(|(_, w)| w.count_ones() as u64).sum())
            .collect()
    }

    /// The packed words as a CSC matrix (columns are samples).
    pub fn as_csc(&self) -> &CscMatrix<u64> {
        &self.words
    }

    /// The packed words converted to CSR (rows are word rows).
    pub fn to_csr(&self) -> CsrMatrix<u64> {
        self.words.to_csr()
    }

    /// Membership test for boolean entry `(row, col)`.
    pub fn contains(&self, row: usize, col: usize) -> bool {
        if row >= self.orig_rows || col >= self.ncols() {
            return false;
        }
        let w = row / WORD_BITS;
        let bit = 1u64 << (row % WORD_BITS);
        self.words.col(col).any(|(r, mask)| r == w && mask & bit != 0)
    }

    /// Popcount of the AND of two columns — the scalar popcount-AND
    /// kernel of Eq. (7) applied to a single column pair, i.e. the
    /// intersection cardinality `b_ab = Σ_w popcount(â_wa & â_wb)`.
    ///
    /// Both sparse columns are merge-joined on their word indices, so the
    /// cost is `O(nnz_words(a) + nnz_words(b))`. Runs where both columns
    /// store the same four consecutive word indices — the common case for
    /// k-mer batches, whose filtered rows pack densely — skip the per-word
    /// comparison ladder and AND+popcount four words per iteration. The
    /// `gas-index` query engine uses this to re-rank LSH candidates
    /// exactly without forming the full `AᵀA` product.
    #[inline]
    pub fn and_popcount(&self, a: usize, b: usize) -> u64 {
        let indptr = self.words.indptr();
        let indices = self.words.indices();
        let data = self.words.data();
        let (ia, da) = (&indices[indptr[a]..indptr[a + 1]], &data[indptr[a]..indptr[a + 1]]);
        let (ib, db) = (&indices[indptr[b]..indptr[b + 1]], &data[indptr[b]..indptr[b + 1]]);
        let (mut i, mut j) = (0usize, 0usize);
        let mut count = 0u64;
        while i < ia.len() && j < ib.len() {
            if i + 4 <= ia.len() && j + 4 <= ib.len() && ia[i..i + 4] == ib[j..j + 4] {
                count += (da[i] & db[j]).count_ones() as u64
                    + (da[i + 1] & db[j + 1]).count_ones() as u64
                    + (da[i + 2] & db[j + 2]).count_ones() as u64
                    + (da[i + 3] & db[j + 3]).count_ones() as u64;
                i += 4;
                j += 4;
                continue;
            }
            match ia[i].cmp(&ib[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += (da[i] & db[j]).count_ones() as u64;
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }

    /// The straightforward one-word-at-a-time merge join — the reference
    /// the unrolled [`Self::and_popcount`] is pinned against in tests.
    #[cfg(test)]
    fn and_popcount_scalar(&self, a: usize, b: usize) -> u64 {
        let mut ca = self.words.col(a);
        let mut cb = self.words.col(b);
        let (mut na, mut nb) = (ca.next(), cb.next());
        let mut count = 0u64;
        while let (Some((wa, ma)), Some((wb, mb))) = (na, nb) {
            match wa.cmp(&wb) {
                std::cmp::Ordering::Less => na = ca.next(),
                std::cmp::Ordering::Greater => nb = cb.next(),
                std::cmp::Ordering::Equal => {
                    count += (ma & mb).count_ones() as u64;
                    na = ca.next();
                    nb = cb.next();
                }
            }
        }
        count
    }

    /// Ratio of stored words to stored boolean nonzeros: the paper notes
    /// masking "increases the storage necessary for each nonzero by no
    /// more than 2–3×" while cutting row metadata by `b`.
    pub fn words_per_nonzero(&self) -> f64 {
        let ones = self.count_ones();
        if ones == 0 {
            return 0.0;
        }
        self.nnz_words() as f64 / ones as f64
    }

    /// Restrict to the columns listed in `keep` (in order).
    pub fn select_cols(&self, keep: &[usize]) -> SparseResult<BitMatrix> {
        Ok(BitMatrix { words: self.words.select_cols(keep)?, orig_rows: self.orig_rows })
    }

    /// Restrict to a contiguous range of word rows, re-basing word indices
    /// to start at zero. Used to split a packed batch into the row chunks
    /// of the 2.5D distribution.
    pub fn select_word_rows(&self, range: std::ops::Range<usize>) -> SparseResult<BitMatrix> {
        if range.end > self.word_rows() {
            return Err(SparseError::IndexOutOfBounds {
                row: range.end,
                col: 0,
                nrows: self.word_rows(),
                ncols: self.ncols(),
            });
        }
        let new_word_rows = range.end - range.start;
        let mut indptr = Vec::with_capacity(self.ncols() + 1);
        indptr.push(0usize);
        let mut indices = Vec::new();
        let mut data = Vec::new();
        for j in 0..self.ncols() {
            for (w, mask) in self.words.col(j) {
                if w >= range.start && w < range.end {
                    indices.push(w - range.start);
                    data.push(mask);
                }
            }
            indptr.push(indices.len());
        }
        let words = CscMatrix::from_raw_parts(new_word_rows, self.ncols(), indptr, indices, data)?;
        let orig_rows =
            (new_word_rows * WORD_BITS).min(self.orig_rows.saturating_sub(range.start * WORD_BITS));
        Ok(BitMatrix { words, orig_rows })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_round_trips_and_clips() {
        let rows = vec![0usize, 63, 64, 129, 500];
        let bm = pack_row_bitmap(130, &rows);
        assert_eq!(bm.len(), 3);
        assert_eq!(bitmap_rows(&bm), vec![0, 63, 64, 129]);
        assert_eq!(bitmap_count_ones(&bm), 4);
        // Duplicates and arbitrary order collapse into the same bitmap.
        let shuffled = pack_row_bitmap(130, &[129, 0, 64, 0, 63, 63]);
        assert_eq!(shuffled, bm);
        assert!(pack_row_bitmap(0, &rows).is_empty());
        assert_eq!(bitmap_rows(&pack_row_bitmap(64, &[])), Vec::<usize>::new());
    }

    #[test]
    fn large_bitmap_pack_matches_serial_reference() {
        // Big enough to take the parallel path (chunk floor is 8192).
        let nrows = 300_000;
        let rows: Vec<usize> = (0..40_000).map(|i| (i * 131) % nrows).collect();
        let bm = pack_row_bitmap(nrows, &rows);
        let mut reference = vec![0u64; nrows.div_ceil(WORD_BITS)];
        for &r in &rows {
            reference[r / WORD_BITS] |= 1u64 << (r % WORD_BITS);
        }
        assert_eq!(bm, reference);
        let mut sorted = rows.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(bitmap_rows(&bm), sorted);
    }

    #[test]
    fn packs_rows_into_words() {
        // Column 0 has rows {0, 1, 64}; column 1 has rows {63, 64}.
        let bm = BitMatrix::from_columns(70, &[vec![0, 1, 64], vec![63, 64]]).unwrap();
        assert_eq!(bm.orig_rows(), 70);
        assert_eq!(bm.word_rows(), 2);
        assert_eq!(bm.ncols(), 2);
        assert_eq!(bm.nnz_words(), 4);
        assert_eq!(bm.count_ones(), 5);
        assert_eq!(bm.col_popcounts(), vec![3, 2]);
        assert!(bm.contains(0, 0));
        assert!(bm.contains(64, 0));
        assert!(!bm.contains(2, 0));
        assert!(bm.contains(63, 1));
        assert!(!bm.contains(65, 1));
        assert!(!bm.contains(200, 0));
    }

    #[test]
    fn rejects_out_of_bounds_and_unsorted_rows() {
        assert!(BitMatrix::from_columns(10, &[vec![10]]).is_err());
        assert!(BitMatrix::from_columns(10, &[vec![3, 3]]).is_err());
        assert!(BitMatrix::from_columns(10, &[vec![5, 2]]).is_err());
    }

    #[test]
    fn from_csc_bool_matches_from_columns() {
        let csc =
            crate::coo::CooMatrix::from_triples(130, 2, vec![(0, 0, 1u8), (65, 0, 1), (129, 1, 1)])
                .unwrap()
                .to_csc();
        let bm = BitMatrix::from_csc_bool(&csc).unwrap();
        let direct = BitMatrix::from_columns(130, &[vec![0, 65], vec![129]]).unwrap();
        assert_eq!(bm, direct);
        assert_eq!(bm.word_rows(), 3);
    }

    #[test]
    fn and_popcount_matches_set_intersection() {
        // Columns over 200 rows with known overlaps (including rows that
        // share words and rows in different words).
        let c0: Vec<usize> = vec![0, 1, 5, 63, 64, 100, 150, 199];
        let c1: Vec<usize> = vec![1, 5, 64, 99, 150];
        let c2: Vec<usize> = vec![2, 66, 130];
        let bm = BitMatrix::from_columns(200, &[c0.clone(), c1.clone(), c2.clone()]).unwrap();
        let expected =
            |x: &[usize], y: &[usize]| -> u64 { x.iter().filter(|r| y.contains(r)).count() as u64 };
        assert_eq!(bm.and_popcount(0, 1), expected(&c0, &c1));
        assert_eq!(bm.and_popcount(1, 0), expected(&c0, &c1));
        assert_eq!(bm.and_popcount(0, 2), 0);
        assert_eq!(bm.and_popcount(0, 0), c0.len() as u64);
        assert_eq!(bm.and_popcount(1, 2), 0);
        // Against an empty column.
        let with_empty = BitMatrix::from_columns(200, &[c0, vec![]]).unwrap();
        assert_eq!(with_empty.and_popcount(0, 1), 0);
    }

    #[test]
    fn unrolled_and_popcount_matches_the_scalar_merge_join() {
        // Column shapes chosen to hit every path: long aligned runs (the
        // 4-wide fast path), misaligned overlaps (scalar merge steps),
        // ragged tails shorter than 4 words, and empty columns.
        let nrows = 64 * 40;
        let dense_a: Vec<usize> = (0..nrows).step_by(3).collect(); // every word present
        let dense_b: Vec<usize> = (0..nrows).step_by(5).collect(); // every word present
        let offset: Vec<usize> = (64 * 7..64 * 23).step_by(2).collect(); // contiguous word run
        let sparse: Vec<usize> = (0..40).map(|w| w * 64 + (w * 13) % 64).collect();
        let ragged: Vec<usize> = vec![0, 1, 70, 200]; // 3 stored words
        let columns = vec![dense_a, dense_b, offset, sparse, ragged, vec![], (0..nrows).collect()];
        let bm = BitMatrix::from_columns(nrows, &columns).unwrap();
        for a in 0..columns.len() {
            for b in 0..columns.len() {
                assert_eq!(
                    bm.and_popcount(a, b),
                    bm.and_popcount_scalar(a, b),
                    "columns ({a}, {b}) diverge from the scalar kernel"
                );
            }
        }
        // Cross-check one pair against the set-intersection definition.
        let inter = columns[0].iter().filter(|r| columns[1].contains(r)).count() as u64;
        assert_eq!(bm.and_popcount(0, 1), inter);
    }

    #[test]
    fn words_per_nonzero_reflects_clustering() {
        // Clustered rows share words: 64 rows in one word -> ratio 1/64.
        let clustered = BitMatrix::from_columns(64, &[(0..64).collect()]).unwrap();
        assert!((clustered.words_per_nonzero() - 1.0 / 64.0).abs() < 1e-12);
        // Spread rows: one word per nonzero -> ratio 1.
        let spread = BitMatrix::from_columns(256, &[vec![0, 64, 128, 192]]).unwrap();
        assert!((spread.words_per_nonzero() - 1.0).abs() < 1e-12);
        let empty = BitMatrix::from_columns(64, &[vec![]]).unwrap();
        assert_eq!(empty.words_per_nonzero(), 0.0);
    }

    #[test]
    fn select_cols_and_word_rows() {
        let bm = BitMatrix::from_columns(200, &[vec![0, 100], vec![150], vec![10, 199]]).unwrap();
        let cols = bm.select_cols(&[2, 0]).unwrap();
        assert_eq!(cols.ncols(), 2);
        assert_eq!(cols.col_popcounts(), vec![2, 2]);

        // Word rows: 200 bits -> 4 words (0..64, 64..128, 128..192, 192..200).
        assert_eq!(bm.word_rows(), 4);
        let top = bm.select_word_rows(0..2).unwrap();
        assert_eq!(top.word_rows(), 2);
        assert_eq!(top.col_popcounts(), vec![2, 0, 1]);
        let bottom = bm.select_word_rows(2..4).unwrap();
        assert_eq!(bottom.col_popcounts(), vec![0, 1, 1]);
        assert!(bm.select_word_rows(3..9).is_err());
    }

    #[test]
    fn csr_view_has_word_rows() {
        let bm = BitMatrix::from_columns(128, &[vec![0], vec![0, 64], vec![127]]).unwrap();
        let csr = bm.to_csr();
        assert_eq!(csr.nrows(), 2);
        assert_eq!(csr.ncols(), 3);
        assert_eq!(csr.row(0).count(), 2);
        assert_eq!(csr.row(1).count(), 2);
    }
}
