//! Dense row-major matrices.
//!
//! The output of SimilarityAtScale's sparse product is *dense*: the `n×n`
//! matrices `B` (intersection cardinalities), `C` (union cardinalities)
//! and `S` (similarities) are generally fully populated. This module
//! provides the dense accumulator used by the local and distributed
//! kernels, plus the small amount of element-wise arithmetic the algorithm
//! needs (`C −= B`, `S = B ⊘ C`).

use serde::{Deserialize, Serialize};

use crate::error::{SparseError, SparseResult};

/// A dense row-major matrix of `Copy` elements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseMatrix<T> {
    nrows: usize,
    ncols: usize,
    data: Vec<T>,
}

impl<T: Copy + Default> DenseMatrix<T> {
    /// Create an `nrows × ncols` matrix filled with `T::default()`.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        DenseMatrix { nrows, ncols, data: vec![T::default(); nrows * ncols] }
    }

    /// Create a matrix from a row-major vector of length `nrows * ncols`.
    pub fn from_vec(nrows: usize, ncols: usize, data: Vec<T>) -> SparseResult<Self> {
        if data.len() != nrows * ncols {
            return Err(SparseError::ShapeMismatch {
                context: format!(
                    "dense data length {} does not match {}x{}",
                    data.len(),
                    nrows,
                    ncols
                ),
            });
        }
        Ok(DenseMatrix { nrows, ncols, data })
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Element at `(i, j)` (panics if out of bounds, like indexing).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> T {
        debug_assert!(i < self.nrows && j < self.ncols);
        self.data[i * self.ncols + j]
    }

    /// Set element `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        debug_assert!(i < self.nrows && j < self.ncols);
        self.data[i * self.ncols + j] = v;
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[T] {
        &self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Mutably borrow row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [T] {
        &mut self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// The underlying row-major storage.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable access to the underlying row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume the matrix and return its row-major storage.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Apply `f` to every element, producing a new matrix of another type.
    pub fn map<U: Copy + Default>(&self, mut f: impl FnMut(T) -> U) -> DenseMatrix<U> {
        DenseMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Combine two equally-shaped matrices element-wise.
    pub fn zip_map<U: Copy + Default, V: Copy + Default>(
        &self,
        other: &DenseMatrix<U>,
        mut f: impl FnMut(T, U) -> V,
    ) -> SparseResult<DenseMatrix<V>> {
        if self.nrows != other.nrows || self.ncols != other.ncols {
            return Err(SparseError::ShapeMismatch {
                context: format!(
                    "zip_map of {}x{} with {}x{}",
                    self.nrows, self.ncols, other.nrows, other.ncols
                ),
            });
        }
        Ok(DenseMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            data: self.data.iter().zip(other.data.iter()).map(|(&a, &b)| f(a, b)).collect(),
        })
    }

    /// Transpose the matrix.
    pub fn transpose(&self) -> DenseMatrix<T> {
        let mut out = DenseMatrix::zeros(self.ncols, self.nrows);
        for i in 0..self.nrows {
            for j in 0..self.ncols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }
}

impl<T: Copy + Default + std::ops::AddAssign> DenseMatrix<T> {
    /// Element-wise `self += other`.
    pub fn add_assign(&mut self, other: &DenseMatrix<T>) -> SparseResult<()> {
        if self.nrows != other.nrows || self.ncols != other.ncols {
            return Err(SparseError::ShapeMismatch {
                context: format!(
                    "add_assign of {}x{} with {}x{}",
                    self.nrows, self.ncols, other.nrows, other.ncols
                ),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
        Ok(())
    }
}

impl<T: Copy + Default + PartialEq> DenseMatrix<T> {
    /// Number of entries different from `T::default()` (used in tests and
    /// density diagnostics).
    pub fn count_nonzero(&self) -> usize {
        let zero = T::default();
        self.data.iter().filter(|&&v| v != zero).count()
    }
}

impl DenseMatrix<f64> {
    /// Maximum absolute difference to another matrix of the same shape.
    pub fn max_abs_diff(&self, other: &DenseMatrix<f64>) -> SparseResult<f64> {
        if self.nrows != other.nrows || self.ncols != other.ncols {
            return Err(SparseError::ShapeMismatch {
                context: "max_abs_diff on different shapes".to_string(),
            });
        }
        Ok(self.data.iter().zip(other.data.iter()).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max))
    }

    /// Check symmetry within a tolerance.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        for i in 0..self.nrows {
            for j in (i + 1)..self.ncols {
                if (self.get(i, j) - self.get(j, i)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_get_set_roundtrip() {
        let mut m = DenseMatrix::<u64>::zeros(2, 3);
        assert_eq!(m.nrows(), 2);
        assert_eq!(m.ncols(), 3);
        assert_eq!(m.get(1, 2), 0);
        m.set(1, 2, 42);
        assert_eq!(m.get(1, 2), 42);
        assert_eq!(m.row(1), &[0, 0, 42]);
        assert_eq!(m.count_nonzero(), 1);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(DenseMatrix::from_vec(2, 2, vec![1u8, 2, 3]).is_err());
        let m = DenseMatrix::from_vec(2, 2, vec![1u8, 2, 3, 4]).unwrap();
        assert_eq!(m.get(1, 0), 3);
    }

    #[test]
    fn map_and_zip_map() {
        let a = DenseMatrix::from_vec(2, 2, vec![1u64, 2, 3, 4]).unwrap();
        let b = a.map(|v| v as f64 * 0.5);
        assert_eq!(b.get(1, 1), 2.0);
        let c = a.zip_map(&a, |x, y| x + y).unwrap();
        assert_eq!(c.get(0, 1), 4);
        let wrong = DenseMatrix::<u64>::zeros(3, 2);
        assert!(a.zip_map(&wrong, |x, y| x + y).is_err());
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = DenseMatrix::from_vec(2, 2, vec![1u64, 2, 3, 4]).unwrap();
        let b = DenseMatrix::from_vec(2, 2, vec![10u64, 20, 30, 40]).unwrap();
        a.add_assign(&b).unwrap();
        assert_eq!(a.as_slice(), &[11, 22, 33, 44]);
        let wrong = DenseMatrix::<u64>::zeros(1, 4);
        assert!(a.add_assign(&wrong).is_err());
    }

    #[test]
    fn transpose_swaps_indices() {
        let a = DenseMatrix::from_vec(2, 3, vec![1u8, 2, 3, 4, 5, 6]).unwrap();
        let t = a.transpose();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.ncols(), 2);
        assert_eq!(t.get(2, 0), 3);
        assert_eq!(t.get(0, 1), 4);
    }

    #[test]
    fn symmetry_and_diff_checks() {
        let a = DenseMatrix::from_vec(2, 2, vec![1.0, 0.5, 0.5, 1.0]).unwrap();
        assert!(a.is_symmetric(1e-12));
        let b = DenseMatrix::from_vec(2, 2, vec![1.0, 0.6, 0.5, 1.0]).unwrap();
        assert!(!b.is_symmetric(1e-3));
        assert!((a.max_abs_diff(&b).unwrap() - 0.1).abs() < 1e-12);
        let c = DenseMatrix::<f64>::zeros(3, 3);
        assert!(a.max_abs_diff(&c).is_err());
        assert!(!DenseMatrix::<f64>::zeros(2, 3).is_symmetric(1e-9));
    }
}
