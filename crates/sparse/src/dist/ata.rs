//! Distributed `B = AᵀA` over a 2.5D processor grid (Section III-C).
//!
//! The paper distributes the batched popcount-AND product over a
//! `√(p/c) × √(p/c) × c` grid: the samples (columns of `A`) are split
//! into `√(p/c)` blocks, the packed word rows of each batch are split
//! into `√(p/c)·c` chunks, and rank `(i, j, k)` holds the local block
//! `A[chunk(i, k), C_j]` while accumulating the output block
//! `B[C_i, C_j]`. Each layer `k` contracts its own chunks with a SUMMA
//! sweep (a column broadcast for the right operand and a
//! transpose-exchange plus row broadcast for the left operand), and the
//! `c` layer partials are reduced over the fiber communicators at the
//! end — the standard communication-avoiding 2.5D schedule.
//!
//! When `p` is not of the form `s²·c` the largest square subgrid is used
//! and the remaining ranks stay idle for the product (they still
//! participate in world-level collectives such as the distributed filter
//! and the final gather), mirroring how fixed grids are carved out of
//! arbitrary allocations in practice.

use std::ops::Range;

use gas_dstsim::comm::{Communicator, Msg};
use gas_dstsim::topology::ProcessorGrid;

use crate::bitmat::BitMatrix;
use crate::csc::CscMatrix;
use crate::dense::DenseMatrix;
use crate::error::{SparseError, SparseResult};
use crate::semiring::PopcountAnd;
use crate::spgemm::atb_block_dense;

/// Wire form of a bit-packed block: the raw CSC arrays of the word
/// matrix. `nbytes` reports what the block would occupy on a real
/// network, so the cost trackers see SUMMA's true traffic.
#[derive(Debug, Clone)]
struct WireBlock {
    word_rows: u64,
    ncols: u64,
    indptr: Vec<u64>,
    indices: Vec<u64>,
    data: Vec<u64>,
}

impl Msg for WireBlock {
    fn nbytes(&self) -> usize {
        16 + 8 * (self.indptr.len() + self.indices.len() + self.data.len())
    }
}

impl WireBlock {
    fn from_bitmat(b: &BitMatrix) -> WireBlock {
        let csc = b.as_csc();
        WireBlock {
            word_rows: csc.nrows() as u64,
            ncols: csc.ncols() as u64,
            indptr: csc.indptr().iter().map(|&v| v as u64).collect(),
            indices: csc.indices().iter().map(|&v| v as u64).collect(),
            data: csc.data().to_vec(),
        }
    }

    fn to_csc(&self) -> SparseResult<CscMatrix<u64>> {
        CscMatrix::from_raw_parts(
            self.word_rows as usize,
            self.ncols as usize,
            self.indptr.iter().map(|&v| v as usize).collect(),
            self.indices.iter().map(|&v| v as usize).collect(),
            self.data.clone(),
        )
    }
}

/// Contiguous block `idx` of `0..total` split into `parts` near-equal
/// pieces (the same arithmetic on every rank, so all ranks agree on the
/// distribution).
fn block_range(total: usize, parts: usize, idx: usize) -> Range<usize> {
    (idx * total / parts)..((idx + 1) * total / parts)
}

/// Per-rank handle for the distributed `AᵀA` of one run.
///
/// Constructed inside a rank closure from the world communicator; owns
/// the grid sub-communicators the SUMMA schedule needs.
pub struct DistAta {
    grid: ProcessorGrid,
    /// Side of the square layer grid.
    s: usize,
    /// Number of replication layers actually used.
    c: usize,
    /// Ranks participating in the product (`s² · c`).
    active: usize,
    /// Number of samples (order of `B`).
    n: usize,
    /// Grid coordinates of this rank, `None` when idle.
    coords: Option<[usize; 3]>,
    row_comm: Option<Communicator>,
    col_comm: Option<Communicator>,
    fiber_comm: Option<Communicator>,
    grid_comm: Option<Communicator>,
}

impl DistAta {
    /// Set up the 2.5D distribution over `world` for an `n`-sample run
    /// with requested replication factor `replication` (clamped to the
    /// world size; the largest square subgrid `s²·c ≤ p` is used).
    pub fn new(world: &Communicator, n: usize, replication: usize) -> SparseResult<DistAta> {
        let p = world.size();
        if replication == 0 {
            return Err(SparseError::InvalidDistribution(
                "replication must be at least 1".to_string(),
            ));
        }
        let c = replication.min(p);
        let layer = p / c;
        let mut s = (layer as f64).sqrt().floor() as usize;
        while s * s > layer {
            s -= 1;
        }
        while (s + 1) * (s + 1) <= layer {
            s += 1;
        }
        let s = s.max(1);
        let active = s * s * c;
        let grid = ProcessorGrid::explicit(&[s, s, c])?;
        let me = world.rank();
        let is_active = me < active;
        // Collective over the world: actives get the grid communicator
        // (their local ranks equal their world ranks, matching the grid
        // numbering), idle ranks get a communicator they never use.
        let member_comm = world.split(u64::from(!is_active))?;
        if !is_active {
            return Ok(DistAta {
                grid,
                s,
                c,
                active,
                n,
                coords: None,
                row_comm: None,
                col_comm: None,
                fiber_comm: None,
                grid_comm: None,
            });
        }
        let coords = grid.coords_of(me)?;
        let row_comm = grid.row_comm(&member_comm)?;
        let col_comm = grid.col_comm(&member_comm)?;
        let fiber_comm = grid.fiber_comm(&member_comm)?;
        Ok(DistAta {
            grid,
            s,
            c,
            active,
            n,
            coords: Some(coords),
            row_comm: Some(row_comm),
            col_comm: Some(col_comm),
            fiber_comm: Some(fiber_comm),
            grid_comm: Some(member_comm),
        })
    }

    /// The processor grid in use.
    pub fn grid(&self) -> &ProcessorGrid {
        &self.grid
    }

    /// Number of ranks participating in the product.
    pub fn active_ranks(&self) -> usize {
        self.active
    }

    /// Whether this rank takes part in the product.
    pub fn is_active(&self) -> bool {
        self.coords.is_some()
    }

    /// Whether this rank is the designated reader of its column block:
    /// exactly one rank per column block contributes row indices to the
    /// distributed zero-row filter.
    pub fn is_primary_reader(&self) -> bool {
        matches!(self.coords, Some([0, _, 0]))
    }

    /// The samples (columns of `A`) this rank reads: block `j` of the
    /// `s`-way column partition. Idle ranks get an empty range.
    pub fn my_col_range(&self) -> Range<usize> {
        match self.coords {
            Some([_, j, _]) => block_range(self.n, self.s, j),
            None => 0..0,
        }
    }

    /// The word-row chunk of a packed batch with `word_rows` rows this
    /// rank keeps: chunk `k·s + i` of the `s·c`-way partition.
    pub fn my_chunk(&self, word_rows: usize) -> Range<usize> {
        match self.coords {
            Some([i, _, k]) => block_range(word_rows, self.s * self.c, k * self.s + i),
            None => 0..0,
        }
    }

    /// Zeroed accumulator for this rank's output block `B[C_i, C_j]`.
    pub fn new_accumulator(&self) -> DenseMatrix<u64> {
        match self.coords {
            Some([i, j, _]) => DenseMatrix::zeros(
                block_range(self.n, self.s, i).len(),
                block_range(self.n, self.s, j).len(),
            ),
            None => DenseMatrix::zeros(0, 0),
        }
    }

    /// Zeroed per-sample cardinality accumulator (global length `n`).
    pub fn new_cardinalities(&self) -> Vec<u64> {
        vec![0u64; self.n]
    }

    /// Contract one batch: `block` is this rank's word-row chunk of its
    /// packed column block (`A[chunk(i, k), C_j]`). Runs the SUMMA sweep
    /// of this layer, accumulating into `acc` and adding the chunk's
    /// column popcounts into `card`.
    pub fn accumulate_batch(
        &self,
        block: &BitMatrix,
        acc: &mut DenseMatrix<u64>,
        card: &mut [u64],
    ) -> SparseResult<()> {
        let Some([i, j, k]) = self.coords else {
            return Ok(());
        };
        let row_comm = self.row_comm.as_ref().expect("active rank has a row communicator");
        let col_comm = self.col_comm.as_ref().expect("active rank has a column communicator");
        let grid_comm = self.grid_comm.as_ref().expect("active rank has a grid communicator");

        let cols = self.my_col_range();
        if block.ncols() != cols.len() {
            return Err(SparseError::ShapeMismatch {
                context: format!(
                    "batch block has {} columns but this rank owns {} samples",
                    block.ncols(),
                    cols.len()
                ),
            });
        }
        for (offset, count) in block.col_popcounts().into_iter().enumerate() {
            card[cols.start + offset] += count;
        }

        let mine = WireBlock::from_bitmat(block);
        for t in 0..self.s {
            // Right operand A[chunk(t, k), C_j]: held by grid row t, which
            // is local rank t of this column communicator.
            let right = col_comm.bcast(t, (i == t).then(|| mine.clone()))?;
            // Left operand A[chunk(t, k), C_i]: held by rank (t, i, k).
            // Transpose-exchange to (i, t, k), then broadcast along the row.
            if i == t && j != t {
                let dest = self.grid.rank_of([j, t, k])?;
                grid_comm.send(dest, t as u64, mine.clone())?;
            }
            let left_seed = if j == t {
                if i == t {
                    Some(mine.clone())
                } else {
                    let src = self.grid.rank_of([t, i, k])?;
                    Some(grid_comm.recv::<WireBlock>(src, t as u64)?)
                }
            } else {
                None
            };
            let left = row_comm.bcast(t, left_seed)?;
            let left_csc = left.to_csc()?;
            let right_csr = right.to_csc()?.to_csr();
            let ops = atb_block_dense::<PopcountAnd>(&left_csc, &right_csr, acc)?;
            grid_comm.add_flops(ops);
        }
        Ok(())
    }

    /// Reduce the layer partials: after the last batch, fiber-allreduce
    /// the accumulators across the `c` layers and allreduce the
    /// cardinalities so every participating rank holds the global
    /// per-sample counts.
    pub fn finalize(&self, acc: &mut DenseMatrix<u64>, card: &mut [u64]) -> SparseResult<()> {
        if self.coords.is_none() {
            return Ok(());
        }
        if self.c > 1 {
            let fiber = self.fiber_comm.as_ref().expect("active rank has a fiber communicator");
            let summed = fiber.allreduce_sum(acc.as_slice())?;
            acc.as_mut_slice().copy_from_slice(&summed);
        }
        let grid_comm = self.grid_comm.as_ref().expect("active rank has a grid communicator");
        let full = grid_comm.allreduce_sum(&*card)?;
        card.copy_from_slice(&full);
        Ok(())
    }

    /// Gather the distributed output blocks of layer 0 onto world rank 0
    /// and assemble the full `n × n` matrix there. Collective over the
    /// world; returns `Some(B)` on rank 0 and `None` elsewhere.
    pub fn gather_full(
        &self,
        world: &Communicator,
        acc: &DenseMatrix<u64>,
    ) -> SparseResult<Option<DenseMatrix<u64>>> {
        let payload: Vec<u64> = match self.coords {
            Some([_, _, 0]) => acc.as_slice().to_vec(),
            _ => Vec::new(),
        };
        let gathered = world.gatherv(0, &payload)?;
        let Some(blocks) = gathered else {
            return Ok(None);
        };
        let mut full = DenseMatrix::<u64>::zeros(self.n, self.n);
        for (rank, data) in blocks.into_iter().enumerate() {
            if rank >= self.active {
                continue;
            }
            let [i, j, k] = self.grid.coords_of(rank)?;
            if k != 0 {
                continue;
            }
            let rows = block_range(self.n, self.s, i);
            let cols = block_range(self.n, self.s, j);
            if data.len() != rows.len() * cols.len() {
                return Err(SparseError::ShapeMismatch {
                    context: format!(
                        "gathered block from rank {rank} has {} entries for a {}x{} block",
                        data.len(),
                        rows.len(),
                        cols.len()
                    ),
                });
            }
            let width = cols.len();
            for (bi, r) in rows.enumerate() {
                let row = &mut full.row_mut(r)[cols.clone()];
                row.copy_from_slice(&data[bi * width..(bi + 1) * width]);
            }
        }
        Ok(Some(full))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrMatrix;
    use crate::semiring::PlusTimes;
    use crate::spgemm::ata_dense;
    use gas_dstsim::runtime::Runtime;

    /// Column lists of a small boolean indicator matrix: 200 attribute
    /// rows, 7 samples with overlapping supports.
    fn columns() -> Vec<Vec<usize>> {
        (0..7)
            .map(|j| (0..200).filter(|r| (r * 7 + j * 3) % 13 < 2 || r % (j + 2) == 0).collect())
            .collect()
    }

    fn reference(rows: usize, columns: &[Vec<usize>]) -> DenseMatrix<u64> {
        let nnz = columns.iter().map(Vec::len).sum();
        let mut coo = crate::coo::CooMatrix::<u64>::with_capacity(rows, columns.len(), nnz);
        for (j, col) in columns.iter().enumerate() {
            for &r in col {
                coo.push(r, j, 1).unwrap();
            }
        }
        ata_dense::<PlusTimes<u64>>(&coo.to_csr())
    }

    fn run_distributed(
        p: usize,
        replication: usize,
        rows: usize,
        columns: &[Vec<usize>],
    ) -> (DenseMatrix<u64>, Vec<u64>, u64) {
        let n = columns.len();
        let out = Runtime::new(p)
            .run(|ctx| {
                let world = ctx.world();
                let ata = DistAta::new(world, n, replication).unwrap();
                let mut acc = ata.new_accumulator();
                let mut card = ata.new_cardinalities();
                let my_cols: Vec<usize> = ata.my_col_range().collect();
                let local: Vec<Vec<usize>> =
                    my_cols.iter().map(|&jj| columns[jj].clone()).collect();
                let packed = BitMatrix::from_columns(rows, &local).unwrap();
                let block = packed.select_word_rows(ata.my_chunk(packed.word_rows())).unwrap();
                ata.accumulate_batch(&block, &mut acc, &mut card).unwrap();
                ata.finalize(&mut acc, &mut card).unwrap();
                let full = ata.gather_full(world, &acc).unwrap();
                (full, card)
            })
            .unwrap();
        let bytes = out.aggregate().total_bytes_sent;
        let mut results = out.results;
        let (full, card) = results.swap_remove(0);
        (full.expect("rank 0 assembles the full matrix"), card, bytes)
    }

    #[test]
    fn distributed_ata_matches_local_reference() {
        let columns = columns();
        let expected = reference(200, &columns);
        let expected_card: Vec<u64> = columns.iter().map(|col| col.len() as u64).collect();
        for (p, c) in [(1, 1), (2, 1), (4, 1), (6, 1), (8, 2), (9, 1), (12, 2)] {
            let (full, card, _) = run_distributed(p, c, 200, &columns);
            assert_eq!(full, expected, "p = {p}, c = {c}");
            assert_eq!(card, expected_card, "p = {p}, c = {c}");
        }
    }

    #[test]
    fn larger_grids_move_less_data_per_rank() {
        // Needs a workload large enough that SUMMA block traffic dominates
        // the fixed per-rank costs (communicator splits, block headers).
        let rows = 20_000;
        let columns: Vec<Vec<usize>> = (0..32)
            .map(|j| {
                (0..rows).filter(|r| (r * 31 + j * 7) % 29 == 0 || r % (j + 11) == 0).collect()
            })
            .collect();
        let (full4, _, bytes4) = run_distributed(4, 1, rows, &columns);
        let (full16, _, bytes16) = run_distributed(16, 1, rows, &columns);
        assert_eq!(full4, full16);
        assert!(
            bytes16 / 16 < bytes4 / 4,
            "per-rank bytes should shrink: p=4 {} vs p=16 {}",
            bytes4 / 4,
            bytes16 / 16
        );
    }

    #[test]
    fn idle_ranks_are_harmless_and_reported() {
        let out = Runtime::new(5)
            .run(|ctx| {
                let ata = DistAta::new(ctx.world(), 4, 1).unwrap();
                (ata.is_active(), ata.active_ranks(), ata.my_col_range().len())
            })
            .unwrap();
        // 5 ranks, c = 1 -> 2x2 grid with one idle rank.
        for (rank, (active, nactive, ncols)) in out.results.iter().enumerate() {
            assert_eq!(*nactive, 4);
            assert_eq!(*active, rank < 4);
            if !active {
                assert_eq!(*ncols, 0);
            }
        }
    }

    #[test]
    fn wire_blocks_round_trip() {
        let bm = BitMatrix::from_columns(130, &[vec![0, 64, 129], vec![1], vec![]]).unwrap();
        let wire = WireBlock::from_bitmat(&bm);
        assert!(wire.nbytes() > 0);
        let csc = wire.to_csc().unwrap();
        assert_eq!(&csc, bm.as_csc());
        let _csr: CsrMatrix<u64> = csc.to_csr();
    }

    #[test]
    fn zero_replication_is_rejected() {
        let out = Runtime::new(2).run(|ctx| DistAta::new(ctx.world(), 4, 0).is_err()).unwrap();
        assert!(out.results.iter().all(|&e| e));
    }
}
