//! Distributed `B = AᵀA` over a rectangular 2.5D processor grid
//! (Section III-C).
//!
//! The paper distributes the batched popcount-AND product over a
//! communication-avoiding processor grid. This implementation uses a
//! rectangular `r × q × c` grid: the replication factor `c` is clamped to
//! the largest divisor of `p` not exceeding the request, and each of the
//! `c` layers is the most-balanced rectangle `r × q = p / c` — so *every*
//! rank participates for every rank count (a square-only grid would idle
//! `p − s²·c` ranks, e.g. half of `p = 8, c = 1`).
//!
//! Rank `(i, j, k)` accumulates the output block `B[R_i, C_j]`, where the
//! samples are partitioned `r` ways into row blocks `R_i` and `q` ways
//! into column blocks `C_j`. The packed word rows of each batch are split
//! into `T · c` chunks with `T = lcm(r, q)` SUMMA steps per layer; layer
//! `k` contracts chunks `k·T .. (k+1)·T`. At step `t` the right operand
//! `A[chunk, C_j]` is held by grid row `t mod r` of each column
//! communicator and the left operand `A[chunk, R_i]` by grid column
//! `t mod q` of each row communicator, so each step is two broadcasts and
//! ownership of the chunks is spread evenly over the grid (`T/r` right
//! and `T/q` left chunks per rank). The `c` layer partials are reduced
//! over the fiber communicators at the end — the standard
//! communication-avoiding 2.5D schedule, generalized to rectangles.
//!
//! Received blocks arrive in wire (raw CSC) form and must be decoded into
//! CSC/CSR views before the block kernel runs. [`DistAta`] caches the
//! decoded blocks per SUMMA step, keyed on the active zero-row filter:
//! when consecutive batches carry the same filter key and a step's wire
//! bytes are unchanged, the decode is skipped.

use std::ops::Range;

use gas_dstsim::comm::{Communicator, Msg};
use gas_dstsim::topology::ProcessorGrid;

use crate::bitmat::BitMatrix;
use crate::csc::CscMatrix;
use crate::csr::CsrMatrix;
use crate::dense::DenseMatrix;
use crate::error::{SparseError, SparseResult};
use crate::semiring::PopcountAnd;
use crate::spgemm::atb_block_dense;

/// Wire form of a bit-packed block: the raw CSC arrays of the word
/// matrix. `nbytes` reports what the block would occupy on a real
/// network, so the cost trackers see SUMMA's true traffic.
#[derive(Debug, Clone, PartialEq, Eq)]
struct WireBlock {
    word_rows: u64,
    ncols: u64,
    indptr: Vec<u64>,
    indices: Vec<u64>,
    data: Vec<u64>,
}

impl Msg for WireBlock {
    fn nbytes(&self) -> usize {
        16 + 8 * (self.indptr.len() + self.indices.len() + self.data.len())
    }
}

impl WireBlock {
    fn from_bitmat(b: &BitMatrix) -> WireBlock {
        let csc = b.as_csc();
        WireBlock {
            word_rows: csc.nrows() as u64,
            ncols: csc.ncols() as u64,
            indptr: csc.indptr().iter().map(|&v| v as u64).collect(),
            indices: csc.indices().iter().map(|&v| v as u64).collect(),
            data: csc.data().to_vec(),
        }
    }

    fn to_csc(&self) -> SparseResult<CscMatrix<u64>> {
        CscMatrix::from_raw_parts(
            self.word_rows as usize,
            self.ncols as usize,
            self.indptr.iter().map(|&v| v as usize).collect(),
            self.indices.iter().map(|&v| v as usize).collect(),
            self.data.clone(),
        )
    }
}

/// Contiguous block `idx` of `0..total` split into `parts` near-equal
/// pieces (the same arithmetic on every rank, so all ranks agree on the
/// distribution).
fn block_range(total: usize, parts: usize, idx: usize) -> Range<usize> {
    (idx * total / parts)..((idx + 1) * total / parts)
}

fn gcd(a: usize, b: usize) -> usize {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

fn lcm(a: usize, b: usize) -> usize {
    a / gcd(a, b) * b
}

/// Per-step cache of decoded SUMMA operand blocks.
///
/// Keyed on the zero-row filter of the batch being accumulated: entries
/// survive from one batch to the next only while the filter key matches,
/// and a step's decode is reused only when the received wire bytes are
/// identical to the cached ones (a cheap memcmp against re-running the
/// CSC validation and the CSC→CSR conversion).
#[derive(Default)]
struct BlockCache {
    key: Option<u64>,
    left: Vec<Option<(WireBlock, CscMatrix<u64>)>>,
    right: Vec<Option<(WireBlock, CsrMatrix<u64>)>>,
    hits: u64,
    misses: u64,
}

impl BlockCache {
    fn begin_batch(&mut self, key: Option<u64>, steps: usize) {
        if key.is_none() || self.key != key {
            self.left.clear();
            self.right.clear();
        }
        self.key = key;
        self.left.resize_with(steps, || None);
        self.right.resize_with(steps, || None);
    }

    /// Decoded views of step `t`'s operands, reusing cached decodes when
    /// the wire content is unchanged.
    fn blocks(
        &mut self,
        t: usize,
        left_wire: WireBlock,
        right_wire: WireBlock,
    ) -> SparseResult<(&CscMatrix<u64>, &CsrMatrix<u64>)> {
        if matches!(&self.left[t], Some((w, _)) if *w == left_wire) {
            self.hits += 1;
        } else {
            let csc = left_wire.to_csc()?;
            self.left[t] = Some((left_wire, csc));
            self.misses += 1;
        }
        if matches!(&self.right[t], Some((w, _)) if *w == right_wire) {
            self.hits += 1;
        } else {
            let csr = right_wire.to_csc()?.to_csr();
            self.right[t] = Some((right_wire, csr));
            self.misses += 1;
        }
        let left = &self.left[t].as_ref().expect("left slot populated above").1;
        let right = &self.right[t].as_ref().expect("right slot populated above").1;
        Ok((left, right))
    }
}

/// Per-rank handle for the distributed `AᵀA` of one run.
///
/// Constructed inside a rank closure from the world communicator; owns
/// the grid sub-communicators the SUMMA schedule needs.
pub struct DistAta {
    grid: ProcessorGrid,
    /// Rows of the layer grid (sample row-block count).
    r: usize,
    /// Columns of the layer grid (sample column-block count).
    q: usize,
    /// Number of replication layers in use.
    c: usize,
    /// SUMMA steps per layer: `lcm(r, q)`.
    steps: usize,
    /// Number of samples (order of `B`).
    n: usize,
    /// Grid coordinates of this rank.
    coords: [usize; 3],
    row_comm: Communicator,
    col_comm: Communicator,
    fiber_comm: Communicator,
    grid_comm: Communicator,
    cache: BlockCache,
}

impl DistAta {
    /// The grid [`DistAta::new`] selects for `p` ranks with requested
    /// replication factor `replication`: deterministic, so drivers can
    /// report the layout without constructing a runtime.
    pub fn select_grid(p: usize, replication: usize) -> SparseResult<ProcessorGrid> {
        if replication == 0 {
            return Err(SparseError::InvalidDistribution(
                "replication must be at least 1".to_string(),
            ));
        }
        Ok(ProcessorGrid::rect_3d(p, replication)?)
    }

    /// Set up the rectangular 2.5D distribution over `world` for an
    /// `n`-sample run with requested replication factor `replication`
    /// (clamped to the largest divisor of the world size). Every rank of
    /// `world` participates in the product.
    pub fn new(world: &Communicator, n: usize, replication: usize) -> SparseResult<DistAta> {
        let p = world.size();
        let grid = Self::select_grid(p, replication)?;
        let (r, q, c) = (grid.rows(), grid.cols(), grid.layers());
        let me = world.rank();
        // Collective over the world; the grid numbering equals the world
        // numbering, so the split keeps every rank (color 0).
        let grid_comm = world.split(0)?;
        let coords = grid.coords_of(me)?;
        let row_comm = grid.row_comm(&grid_comm)?;
        let col_comm = grid.col_comm(&grid_comm)?;
        let fiber_comm = grid.fiber_comm(&grid_comm)?;
        Ok(DistAta {
            grid,
            r,
            q,
            c,
            steps: lcm(r, q),
            n,
            coords,
            row_comm,
            col_comm,
            fiber_comm,
            grid_comm,
            cache: BlockCache::default(),
        })
    }

    /// The processor grid in use.
    pub fn grid(&self) -> &ProcessorGrid {
        &self.grid
    }

    /// Number of ranks participating in the product: with rectangular
    /// grids this is always the full world size.
    pub fn active_ranks(&self) -> usize {
        self.r * self.q * self.c
    }

    /// Whether this rank takes part in the product (always true for
    /// rectangular grids; kept for driver compatibility).
    pub fn is_active(&self) -> bool {
        true
    }

    /// SUMMA steps per layer (`lcm(r, q)`).
    pub fn steps_per_layer(&self) -> usize {
        self.steps
    }

    /// Decoded-block cache hits across all batches so far.
    pub fn cache_hits(&self) -> u64 {
        self.cache.hits
    }

    /// Decoded-block cache misses across all batches so far.
    pub fn cache_misses(&self) -> u64 {
        self.cache.misses
    }

    /// The samples of this rank's output *column* block `C_j` (block `j`
    /// of the `q`-way partition). The rank reads these columns as the
    /// right SUMMA operand.
    pub fn my_col_range(&self) -> Range<usize> {
        block_range(self.n, self.q, self.coords[1])
    }

    /// The samples of this rank's output *row* block `R_i` (block `i` of
    /// the `r`-way partition). The rank reads these columns as the left
    /// SUMMA operand.
    pub fn my_row_range(&self) -> Range<usize> {
        block_range(self.n, self.r, self.coords[0])
    }

    /// Word-row chunk contracted at SUMMA step `t` of this rank's layer,
    /// for a packed batch with `word_rows` rows: chunk `k·T + t` of the
    /// `T·c`-way partition.
    pub fn step_chunk(&self, word_rows: usize, t: usize) -> Range<usize> {
        block_range(word_rows, self.steps * self.c, self.coords[2] * self.steps + t)
    }

    /// Zeroed accumulator for this rank's output block `B[R_i, C_j]`.
    pub fn new_accumulator(&self) -> DenseMatrix<u64> {
        DenseMatrix::zeros(self.my_row_range().len(), self.my_col_range().len())
    }

    /// Zeroed per-sample cardinality accumulator (global length `n`).
    pub fn new_cardinalities(&self) -> Vec<u64> {
        vec![0u64; self.n]
    }

    /// Contract one batch without a filter cache key (every step decodes).
    /// See [`DistAta::accumulate_batch_keyed`].
    pub fn accumulate_batch(
        &mut self,
        left: &BitMatrix,
        right: &BitMatrix,
        acc: &mut DenseMatrix<u64>,
        card: &mut [u64],
    ) -> SparseResult<()> {
        self.accumulate_batch_keyed(left, right, None, acc, card)
    }

    /// Contract one batch: `left` is this rank's packed row-block columns
    /// (`A[:, R_i]`, full word-row extent) and `right` its column-block
    /// columns (`A[:, C_j]`). Runs the SUMMA sweep of this rank's layer,
    /// accumulating into `acc` and adding the column popcounts of the
    /// chunks this rank owns into `card`.
    ///
    /// `filter_key` identifies the zero-row filter the batch was prepared
    /// under (e.g. [`crate::dist::filter::RowFilter::fingerprint`]);
    /// consecutive batches with the same key reuse cached block decodes
    /// for every step whose received bytes are unchanged. Pass `None` to
    /// disable caching.
    pub fn accumulate_batch_keyed(
        &mut self,
        left: &BitMatrix,
        right: &BitMatrix,
        filter_key: Option<u64>,
        acc: &mut DenseMatrix<u64>,
        card: &mut [u64],
    ) -> SparseResult<()> {
        let [i, j, _] = self.coords;
        let cols = self.my_col_range();
        let rows = self.my_row_range();
        if right.ncols() != cols.len() {
            return Err(SparseError::ShapeMismatch {
                context: format!(
                    "right batch block has {} columns but this rank owns {} column-block samples",
                    right.ncols(),
                    cols.len()
                ),
            });
        }
        if left.ncols() != rows.len() {
            return Err(SparseError::ShapeMismatch {
                context: format!(
                    "left batch block has {} columns but this rank owns {} row-block samples",
                    left.ncols(),
                    rows.len()
                ),
            });
        }
        if left.word_rows() != right.word_rows() {
            return Err(SparseError::ShapeMismatch {
                context: format!(
                    "left and right blocks disagree on word rows: {} vs {}",
                    left.word_rows(),
                    right.word_rows()
                ),
            });
        }
        let word_rows = right.word_rows();
        self.cache.begin_batch(filter_key, self.steps);
        for t in 0..self.steps {
            let chunk = self.step_chunk(word_rows, t);
            // Right operand A[chunk, C_j]: owned by grid row (t mod r),
            // which is local rank (t mod r) of this column communicator.
            let right_owner = t % self.r;
            let right_seed = if i == right_owner {
                let blk = right.select_word_rows(chunk.clone())?;
                // This rank is the unique holder of (chunk, C_j): its
                // popcounts are this chunk's cardinality contribution.
                for (offset, count) in blk.col_popcounts().into_iter().enumerate() {
                    card[cols.start + offset] += count;
                }
                Some(WireBlock::from_bitmat(&blk))
            } else {
                None
            };
            let right_wire = self.col_comm.bcast(right_owner, right_seed)?;
            // Left operand A[chunk, R_i]: owned by grid column (t mod q),
            // local rank (t mod q) of this row communicator.
            let left_owner = t % self.q;
            let left_seed = if j == left_owner {
                Some(WireBlock::from_bitmat(&left.select_word_rows(chunk)?))
            } else {
                None
            };
            let left_wire = self.row_comm.bcast(left_owner, left_seed)?;
            let (left_csc, right_csr) = self.cache.blocks(t, left_wire, right_wire)?;
            let ops = atb_block_dense::<PopcountAnd>(left_csc, right_csr, acc)?;
            self.grid_comm.add_flops(ops);
        }
        Ok(())
    }

    /// Reduce the layer partials: after the last batch, fiber-allreduce
    /// the accumulators across the `c` layers and allreduce the
    /// cardinalities so every rank holds the global per-sample counts.
    pub fn finalize(&self, acc: &mut DenseMatrix<u64>, card: &mut [u64]) -> SparseResult<()> {
        if self.c > 1 {
            let summed = self.fiber_comm.allreduce_sum(acc.as_slice())?;
            acc.as_mut_slice().copy_from_slice(&summed);
        }
        let full = self.grid_comm.allreduce_sum(&*card)?;
        card.copy_from_slice(&full);
        Ok(())
    }

    /// Gather the distributed output blocks of layer 0 onto world rank 0
    /// and assemble the full `n × n` matrix there. Collective over the
    /// world; returns `Some(B)` on rank 0 and `None` elsewhere.
    pub fn gather_full(
        &self,
        world: &Communicator,
        acc: &DenseMatrix<u64>,
    ) -> SparseResult<Option<DenseMatrix<u64>>> {
        let payload: Vec<u64> =
            if self.coords[2] == 0 { acc.as_slice().to_vec() } else { Vec::new() };
        let gathered = world.gatherv(0, &payload)?;
        let Some(blocks) = gathered else {
            return Ok(None);
        };
        let mut full = DenseMatrix::<u64>::zeros(self.n, self.n);
        for (rank, data) in blocks.into_iter().enumerate() {
            let [i, j, k] = self.grid.coords_of(rank)?;
            if k != 0 {
                continue;
            }
            let rows = block_range(self.n, self.r, i);
            let cols = block_range(self.n, self.q, j);
            if data.len() != rows.len() * cols.len() {
                return Err(SparseError::ShapeMismatch {
                    context: format!(
                        "gathered block from rank {rank} has {} entries for a {}x{} block",
                        data.len(),
                        rows.len(),
                        cols.len()
                    ),
                });
            }
            let width = cols.len();
            for (bi, r) in rows.enumerate() {
                let row = &mut full.row_mut(r)[cols.clone()];
                row.copy_from_slice(&data[bi * width..(bi + 1) * width]);
            }
        }
        Ok(Some(full))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::PlusTimes;
    use crate::spgemm::ata_dense;
    use gas_dstsim::runtime::Runtime;

    /// Column lists of a small boolean indicator matrix: 200 attribute
    /// rows, 7 samples with overlapping supports.
    fn columns() -> Vec<Vec<usize>> {
        (0..7)
            .map(|j| (0..200).filter(|r| (r * 7 + j * 3) % 13 < 2 || r % (j + 2) == 0).collect())
            .collect()
    }

    fn reference(rows: usize, columns: &[Vec<usize>]) -> DenseMatrix<u64> {
        let nnz = columns.iter().map(Vec::len).sum();
        let mut coo = crate::coo::CooMatrix::<u64>::with_capacity(rows, columns.len(), nnz);
        for (j, col) in columns.iter().enumerate() {
            for &r in col {
                coo.push(r, j, 1).unwrap();
            }
        }
        ata_dense::<PlusTimes<u64>>(&coo.to_csr())
    }

    fn pack_blocks(ata: &DistAta, rows: usize, columns: &[Vec<usize>]) -> (BitMatrix, BitMatrix) {
        let pack = |range: Range<usize>| {
            let local: Vec<Vec<usize>> = range.map(|jj| columns[jj].clone()).collect();
            BitMatrix::from_columns(rows, &local).unwrap()
        };
        (pack(ata.my_row_range()), pack(ata.my_col_range()))
    }

    fn run_distributed(
        p: usize,
        replication: usize,
        rows: usize,
        columns: &[Vec<usize>],
    ) -> (DenseMatrix<u64>, Vec<u64>, u64) {
        let n = columns.len();
        let out = Runtime::new(p)
            .run(|ctx| {
                let world = ctx.world();
                let mut ata = DistAta::new(world, n, replication).unwrap();
                let mut acc = ata.new_accumulator();
                let mut card = ata.new_cardinalities();
                let (left, right) = pack_blocks(&ata, rows, columns);
                ata.accumulate_batch(&left, &right, &mut acc, &mut card).unwrap();
                ata.finalize(&mut acc, &mut card).unwrap();
                let full = ata.gather_full(world, &acc).unwrap();
                (full, card)
            })
            .unwrap();
        let bytes = out.aggregate().total_bytes_sent;
        let mut results = out.results;
        let (full, card) = results.swap_remove(0);
        (full.expect("rank 0 assembles the full matrix"), card, bytes)
    }

    #[test]
    fn distributed_ata_matches_local_reference() {
        let columns = columns();
        let expected = reference(200, &columns);
        let expected_card: Vec<u64> = columns.iter().map(|col| col.len() as u64).collect();
        for (p, c) in
            [(1, 1), (2, 1), (4, 1), (5, 1), (6, 1), (6, 2), (8, 1), (8, 2), (9, 1), (12, 2)]
        {
            let (full, card, _) = run_distributed(p, c, 200, &columns);
            assert_eq!(full, expected, "p = {p}, c = {c}");
            assert_eq!(card, expected_card, "p = {p}, c = {c}");
        }
    }

    #[test]
    fn rectangular_grids_use_every_rank() {
        // p = 8, c = 1 previously ran on a 2×2 square subgrid (4 active
        // ranks); the rectangular 2×4 grid must give every rank both an
        // output block and owned SUMMA chunks.
        let out = Runtime::new(8)
            .run(|ctx| {
                let ata = DistAta::new(ctx.world(), 64, 1).unwrap();
                let owned_right = (0..ata.steps_per_layer())
                    .filter(|t| {
                        t % ata.grid().rows() == ata.grid().coords_of(ctx.rank()).unwrap()[0]
                    })
                    .count();
                (
                    ata.is_active(),
                    ata.active_ranks(),
                    ata.my_col_range().len(),
                    ata.my_row_range().len(),
                    owned_right,
                )
            })
            .unwrap();
        assert_eq!(out.results.len(), 8);
        for (rank, (active, nactive, ncols, nrows, owned)) in out.results.iter().enumerate() {
            assert!(*active, "rank {rank} must be active");
            assert_eq!(*nactive, 8);
            assert!(*ncols > 0, "rank {rank} owns no output columns");
            assert!(*nrows > 0, "rank {rank} owns no output rows");
            assert!(*owned > 0, "rank {rank} owns no SUMMA chunks");
        }
    }

    #[test]
    fn larger_grids_move_less_data_per_rank() {
        // Needs a workload large enough that SUMMA block traffic dominates
        // the fixed per-rank costs (communicator splits, block headers).
        let rows = 20_000;
        let columns: Vec<Vec<usize>> = (0..32)
            .map(|j| {
                (0..rows).filter(|r| (r * 31 + j * 7) % 29 == 0 || r % (j + 11) == 0).collect()
            })
            .collect();
        let (full4, _, bytes4) = run_distributed(4, 1, rows, &columns);
        let (full16, _, bytes16) = run_distributed(16, 1, rows, &columns);
        assert_eq!(full4, full16);
        assert!(
            bytes16 / 16 < bytes4 / 4,
            "per-rank bytes should shrink: p=4 {} vs p=16 {}",
            bytes4 / 4,
            bytes16 / 16
        );
    }

    #[test]
    fn repeated_batches_with_same_key_hit_the_decode_cache() {
        let columns = columns();
        let n = columns.len();
        let out = Runtime::new(4)
            .run(|ctx| {
                let mut ata = DistAta::new(ctx.world(), n, 1).unwrap();
                let mut acc = ata.new_accumulator();
                let mut card = ata.new_cardinalities();
                let (left, right) = pack_blocks(&ata, 200, &columns);
                // Same data, same filter key: the second pass must reuse
                // every decoded block.
                ata.accumulate_batch_keyed(&left, &right, Some(42), &mut acc, &mut card).unwrap();
                let after_first = (ata.cache_hits(), ata.cache_misses());
                ata.accumulate_batch_keyed(&left, &right, Some(42), &mut acc, &mut card).unwrap();
                let after_second = (ata.cache_hits(), ata.cache_misses());
                // A different key must flush the cache.
                ata.accumulate_batch_keyed(&left, &right, Some(7), &mut acc, &mut card).unwrap();
                let after_third = (ata.cache_hits(), ata.cache_misses());
                ata.finalize(&mut acc, &mut card).unwrap();
                let full = ata.gather_full(ctx.world(), &acc).unwrap();
                (after_first, after_second, after_third, full, card)
            })
            .unwrap();
        let columns_ref = reference(200, &columns);
        let mut tripled = columns_ref.clone();
        tripled.as_mut_slice().iter_mut().for_each(|v| *v *= 3);
        for (rank, (first, second, third, full, card)) in out.results.iter().enumerate() {
            assert_eq!(first.0, 0, "rank {rank}: first pass cannot hit");
            assert!(first.1 > 0, "rank {rank}: first pass must decode");
            assert_eq!(
                second.0 - first.0,
                first.1,
                "rank {rank}: second pass must hit once per first-pass decode"
            );
            assert_eq!(second.1, first.1, "rank {rank}: second pass must not decode");
            assert!(third.1 > second.1, "rank {rank}: new key must re-decode");
            if rank == 0 {
                assert_eq!(full.as_ref().unwrap(), &tripled, "three identical batches sum");
            }
            let expected: Vec<u64> = columns.iter().map(|col| 3 * col.len() as u64).collect();
            assert_eq!(card, &expected);
        }
    }

    #[test]
    fn unkeyed_batches_never_hit_the_cache() {
        let columns = columns();
        let n = columns.len();
        let out = Runtime::new(4)
            .run(|ctx| {
                let mut ata = DistAta::new(ctx.world(), n, 1).unwrap();
                let mut acc = ata.new_accumulator();
                let mut card = ata.new_cardinalities();
                let (left, right) = pack_blocks(&ata, 200, &columns);
                ata.accumulate_batch(&left, &right, &mut acc, &mut card).unwrap();
                ata.accumulate_batch(&left, &right, &mut acc, &mut card).unwrap();
                ata.cache_hits()
            })
            .unwrap();
        assert!(out.results.iter().all(|&h| h == 0));
    }

    #[test]
    fn wire_blocks_round_trip() {
        let bm = BitMatrix::from_columns(130, &[vec![0, 64, 129], vec![1], vec![]]).unwrap();
        let wire = WireBlock::from_bitmat(&bm);
        assert!(wire.nbytes() > 0);
        let csc = wire.to_csc().unwrap();
        assert_eq!(&csc, bm.as_csc());
        let _csr: CsrMatrix<u64> = csc.to_csr();
    }

    #[test]
    fn zero_replication_is_rejected() {
        let out = Runtime::new(2).run(|ctx| DistAta::new(ctx.world(), 4, 0).is_err()).unwrap();
        assert!(out.results.iter().all(|&e| e));
    }

    #[test]
    fn select_grid_is_deterministic_and_total() {
        for p in 1..=16 {
            for c in 1..=3 {
                let g = DistAta::select_grid(p, c).unwrap();
                assert_eq!(g.size(), p);
            }
        }
        assert!(DistAta::select_grid(4, 0).is_err());
    }
}
