//! The zero-row filter vector `f^(l)` (Eqs. 5–6) and its distributed
//! construction.
//!
//! Genomic indicator matrices are hypersparse: most attribute rows of a
//! batch have no entry in any sample. The filter marks the rows that are
//! nonzero in at least one sample and renumbers the survivors
//! contiguously. In the paper the filter vector is built with
//! accumulate-writes over a `(max, ×)` monoid and then "collected on all
//! processors". [`dist_row_filter`] reproduces that formulation: every
//! rank packs its observed rows into a dense bitmap (one *bit* per batch
//! row), the bitmaps are OR-allreduced, and each rank derives the
//! kept-row remap locally — `O(batch_rows / 8)` bytes per message. The
//! earlier index-based construction is kept as
//! [`dist_row_filter_indexed`] (it allgathers `O(observed rows × 8)`
//! bytes) so benchmarks can measure the saving.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use crate::bitmat::{bitmap_rows, pack_row_bitmap};
use crate::error::SparseResult;
use gas_dstsim::comm::Communicator;

/// The compacted zero-row filter of one batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowFilter {
    batch_rows: usize,
    nonzero: Vec<usize>,
}

impl RowFilter {
    /// Build a filter from locally known nonzero rows (sorted, deduped and
    /// clipped to the batch here).
    pub fn from_local(batch_rows: usize, mut rows: Vec<usize>) -> Self {
        rows.retain(|&r| r < batch_rows);
        rows.sort_unstable();
        rows.dedup();
        RowFilter { batch_rows, nonzero: rows }
    }

    /// Build a filter from a packed nonzero-row bitmap (as produced by
    /// [`pack_row_bitmap`]); bits beyond `batch_rows` are ignored.
    pub fn from_bitmap(batch_rows: usize, words: &[u64]) -> Self {
        let mut rows = bitmap_rows(words);
        rows.retain(|&r| r < batch_rows);
        RowFilter { batch_rows, nonzero: rows }
    }

    /// Number of rows of the unfiltered batch.
    pub fn batch_rows(&self) -> usize {
        self.batch_rows
    }

    /// The surviving (nonzero) rows, sorted ascending.
    pub fn nonzero_rows(&self) -> &[usize] {
        &self.nonzero
    }

    /// Number of surviving rows.
    pub fn num_nonzero_rows(&self) -> usize {
        self.nonzero.len()
    }

    /// Fraction of batch rows removed by the filter.
    pub fn removed_fraction(&self) -> f64 {
        if self.batch_rows == 0 {
            return 0.0;
        }
        1.0 - self.nonzero.len() as f64 / self.batch_rows as f64
    }

    /// Compacted index of `row` after filtering, or `None` if the filter
    /// removed it.
    pub fn compacted_index(&self, row: usize) -> Option<usize> {
        self.nonzero.binary_search(&row).ok()
    }

    /// A stable fingerprint of this filter (batch extent plus surviving
    /// rows). Used as the cache key for decoded SUMMA blocks: two batches
    /// processed under different filters can never share decoded blocks.
    pub fn fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.batch_rows.hash(&mut h);
        self.nonzero.hash(&mut h);
        h.finish()
    }
}

/// Build the batch filter collectively with the paper's bitmap
/// formulation: every rank packs the rows present in its local columns
/// into a dense bitmap, the bitmaps are combined with a bitwise-OR
/// allreduce, and every rank derives the identical kept-row remap
/// locally. Communication is `⌈batch_rows / 64⌉` words per message
/// regardless of how many row indices were observed.
pub fn dist_row_filter(
    comm: &Communicator,
    batch_rows: usize,
    local_rows: &[usize],
) -> SparseResult<RowFilter> {
    let mine = pack_row_bitmap(batch_rows, local_rows);
    let combined = comm.allreduce(&mine, |a, b| *a | *b)?;
    // Charge the prefix-sum renumbering of the survivors.
    comm.add_flops(combined.len() as u64);
    Ok(RowFilter::from_bitmap(batch_rows, &combined))
}

/// The index-based construction this module used before the bitmap
/// formulation: every rank contributes the raw row indices it observed
/// and an allgather makes the union available everywhere. Kept for
/// communication-volume comparisons (`comm_volume`) and as the reference
/// in equivalence tests; [`dist_row_filter`] moves `≥ 8×` fewer bytes on
/// realistic batches.
pub fn dist_row_filter_indexed(
    comm: &Communicator,
    batch_rows: usize,
    local_rows: &[usize],
) -> SparseResult<RowFilter> {
    let mut mine: Vec<u64> = local_rows.iter().map(|&r| r as u64).collect();
    mine.sort_unstable();
    mine.dedup();
    let gathered = comm.allgatherv(&mine)?;
    let mut all: Vec<usize> = gathered.into_iter().flatten().map(|r| r as usize).collect();
    all.sort_unstable();
    all.dedup();
    // Charge the prefix-sum renumbering of the survivors.
    comm.add_flops(all.len() as u64);
    Ok(RowFilter::from_local(batch_rows, all))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gas_dstsim::runtime::Runtime;

    #[test]
    fn from_local_sorts_dedups_and_clips() {
        let f = RowFilter::from_local(10, vec![7, 2, 7, 11, 0]);
        assert_eq!(f.nonzero_rows(), &[0, 2, 7]);
        assert_eq!(f.num_nonzero_rows(), 3);
        assert_eq!(f.batch_rows(), 10);
        assert!((f.removed_fraction() - 0.7).abs() < 1e-12);
        assert_eq!(f.compacted_index(2), Some(1));
        assert_eq!(f.compacted_index(3), None);
    }

    #[test]
    fn from_bitmap_matches_from_local() {
        let rows = vec![0usize, 5, 63, 64, 99];
        let bitmap = pack_row_bitmap(100, &rows);
        assert_eq!(RowFilter::from_bitmap(100, &bitmap), RowFilter::from_local(100, rows.clone()));
        // Bits beyond the batch extent are dropped.
        let narrow = RowFilter::from_bitmap(64, &bitmap);
        assert_eq!(narrow.nonzero_rows(), &[0, 5, 63]);
    }

    #[test]
    fn fingerprints_distinguish_filters() {
        let a = RowFilter::from_local(100, vec![1, 2, 3]);
        let b = RowFilter::from_local(100, vec![1, 2, 4]);
        let c = RowFilter::from_local(101, vec![1, 2, 3]);
        assert_eq!(a.fingerprint(), RowFilter::from_local(100, vec![3, 2, 1, 2]).fingerprint());
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn empty_batch_has_zero_removed_fraction() {
        let f = RowFilter::from_local(0, vec![]);
        assert_eq!(f.num_nonzero_rows(), 0);
        assert_eq!(f.removed_fraction(), 0.0);
    }

    #[test]
    fn distributed_filter_is_the_union_on_every_rank() {
        let out = Runtime::new(4)
            .run(|ctx| {
                // Rank r knows rows {r, 10 + r}.
                let local = vec![ctx.rank(), 10 + ctx.rank()];
                dist_row_filter(ctx.world(), 100, &local).unwrap()
            })
            .unwrap();
        let expected = RowFilter::from_local(100, vec![0, 1, 2, 3, 10, 11, 12, 13]);
        for f in &out.results {
            assert_eq!(f, &expected);
        }
        // The allreduce moved bytes on every rank.
        assert!(out.aggregate().total_bytes_sent > 0);
    }

    #[test]
    fn bitmap_and_indexed_filters_agree() {
        for p in [1usize, 3, 4, 6] {
            let bitmap = Runtime::new(p)
                .run(|ctx| {
                    let local: Vec<usize> =
                        (0..40).map(|i| (i * 13 + ctx.rank() * 7) % 257).collect();
                    dist_row_filter(ctx.world(), 257, &local).unwrap()
                })
                .unwrap();
            let indexed = Runtime::new(p)
                .run(|ctx| {
                    let local: Vec<usize> =
                        (0..40).map(|i| (i * 13 + ctx.rank() * 7) % 257).collect();
                    dist_row_filter_indexed(ctx.world(), 257, &local).unwrap()
                })
                .unwrap();
            assert_eq!(bitmap.results, indexed.results, "p = {p}");
        }
    }

    #[test]
    fn bitmap_filter_moves_fewer_bytes_than_indexed() {
        // A dense-ish batch: many observed rows per rank, so shipping raw
        // 8-byte indices dwarfs the one-bit-per-row bitmaps.
        let p = 8;
        let batch_rows = 20_000;
        let local = |rank: usize| -> Vec<usize> {
            (0..4_000).map(|i| (i * 5 + rank) % batch_rows).collect()
        };
        let bitmap = Runtime::new(p)
            .run(|ctx| {
                dist_row_filter(ctx.world(), batch_rows, &local(ctx.rank())).unwrap();
            })
            .unwrap();
        let indexed = Runtime::new(p)
            .run(|ctx| {
                dist_row_filter_indexed(ctx.world(), batch_rows, &local(ctx.rank())).unwrap();
            })
            .unwrap();
        let b = bitmap.aggregate().total_bytes_sent;
        let i = indexed.aggregate().total_bytes_sent;
        assert!(i >= 8 * b, "bitmap filter should cut traffic ≥ 8×: bitmap {b} vs indexed {i}");
    }

    #[test]
    fn distributed_filter_matches_single_rank() {
        let local: Vec<usize> = (0..50).map(|i| (i * 7) % 97).collect();
        let single =
            Runtime::new(1).run(|ctx| dist_row_filter(ctx.world(), 97, &local).unwrap()).unwrap();
        assert_eq!(single.results[0], RowFilter::from_local(97, local.clone()));
    }
}
