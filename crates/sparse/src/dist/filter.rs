//! The zero-row filter vector `f^(l)` (Eqs. 5–6) and its distributed
//! construction.
//!
//! Genomic indicator matrices are hypersparse: most attribute rows of a
//! batch have no entry in any sample. The filter marks the rows that are
//! nonzero in at least one sample and renumbers the survivors
//! contiguously. In the paper the filter vector is built with
//! accumulate-writes over a `(max, ×)` monoid and then "collected on all
//! processors"; here every rank contributes the row indices it observed
//! and an allgather makes the union available everywhere, charging the
//! same communication volume to the cost trackers.

use crate::error::SparseResult;
use gas_dstsim::comm::Communicator;

/// The compacted zero-row filter of one batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowFilter {
    batch_rows: usize,
    nonzero: Vec<usize>,
}

impl RowFilter {
    /// Build a filter from locally known nonzero rows (sorted, deduped and
    /// clipped to the batch here).
    pub fn from_local(batch_rows: usize, mut rows: Vec<usize>) -> Self {
        rows.retain(|&r| r < batch_rows);
        rows.sort_unstable();
        rows.dedup();
        RowFilter { batch_rows, nonzero: rows }
    }

    /// Number of rows of the unfiltered batch.
    pub fn batch_rows(&self) -> usize {
        self.batch_rows
    }

    /// The surviving (nonzero) rows, sorted ascending.
    pub fn nonzero_rows(&self) -> &[usize] {
        &self.nonzero
    }

    /// Number of surviving rows.
    pub fn num_nonzero_rows(&self) -> usize {
        self.nonzero.len()
    }

    /// Fraction of batch rows removed by the filter.
    pub fn removed_fraction(&self) -> f64 {
        if self.batch_rows == 0 {
            return 0.0;
        }
        1.0 - self.nonzero.len() as f64 / self.batch_rows as f64
    }

    /// Compacted index of `row` after filtering, or `None` if the filter
    /// removed it.
    pub fn compacted_index(&self, row: usize) -> Option<usize> {
        self.nonzero.binary_search(&row).ok()
    }
}

/// Build the batch filter collectively: every rank contributes the row
/// indices present in its local columns, the union is allgathered, and
/// all ranks return the identical filter.
pub fn dist_row_filter(
    comm: &Communicator,
    batch_rows: usize,
    local_rows: &[usize],
) -> SparseResult<RowFilter> {
    let mut mine: Vec<u64> = local_rows.iter().map(|&r| r as u64).collect();
    mine.sort_unstable();
    mine.dedup();
    let gathered = comm.allgatherv(&mine)?;
    let mut all: Vec<usize> = gathered.into_iter().flatten().map(|r| r as usize).collect();
    all.sort_unstable();
    all.dedup();
    // Charge the prefix-sum renumbering of the survivors.
    comm.add_flops(all.len() as u64);
    Ok(RowFilter::from_local(batch_rows, all))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gas_dstsim::runtime::Runtime;

    #[test]
    fn from_local_sorts_dedups_and_clips() {
        let f = RowFilter::from_local(10, vec![7, 2, 7, 11, 0]);
        assert_eq!(f.nonzero_rows(), &[0, 2, 7]);
        assert_eq!(f.num_nonzero_rows(), 3);
        assert_eq!(f.batch_rows(), 10);
        assert!((f.removed_fraction() - 0.7).abs() < 1e-12);
        assert_eq!(f.compacted_index(2), Some(1));
        assert_eq!(f.compacted_index(3), None);
    }

    #[test]
    fn empty_batch_has_zero_removed_fraction() {
        let f = RowFilter::from_local(0, vec![]);
        assert_eq!(f.num_nonzero_rows(), 0);
        assert_eq!(f.removed_fraction(), 0.0);
    }

    #[test]
    fn distributed_filter_is_the_union_on_every_rank() {
        let out = Runtime::new(4)
            .run(|ctx| {
                // Rank r knows rows {r, 10 + r}.
                let local = vec![ctx.rank(), 10 + ctx.rank()];
                dist_row_filter(ctx.world(), 100, &local).unwrap()
            })
            .unwrap();
        let expected = RowFilter::from_local(100, vec![0, 1, 2, 3, 10, 11, 12, 13]);
        for f in &out.results {
            assert_eq!(f, &expected);
        }
        // The allgather moved bytes on every rank.
        assert!(out.aggregate().total_bytes_sent > 0);
    }

    #[test]
    fn distributed_filter_matches_single_rank() {
        let local: Vec<usize> = (0..50).map(|i| (i * 7) % 97).collect();
        let single =
            Runtime::new(1).run(|ctx| dist_row_filter(ctx.world(), 97, &local).unwrap()).unwrap();
        assert_eq!(single.results[0], RowFilter::from_local(97, local.clone()));
    }
}
