//! Criterion micro-benchmarks for the local `AᵀA` kernels: plus-times on
//! boolean CSR, popcount-AND on bit-packed words, sequential vs
//! Rayon-parallel, and the effect of the zero-row filter + masking
//! (the paper's Section III-B design choices).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use gas_core::filter::{apply_filter, batch_row_filter};
use gas_genomics::synth::bernoulli_columns;
use gas_sparse::bitmat::BitMatrix;
use gas_sparse::coo::CooMatrix;
use gas_sparse::semiring::{PlusTimes, PopcountAnd};
use gas_sparse::spgemm::{ata_dense, ata_dense_parallel};

fn build_columns(m: usize, n: usize, density: f64) -> Vec<Vec<usize>> {
    bernoulli_columns(m, n, density, 42).expect("valid density")
}

fn boolean_matrix(m: usize, columns: &[Vec<usize>]) -> CooMatrix<u64> {
    let mut coo = CooMatrix::new(m, columns.len());
    for (j, col) in columns.iter().enumerate() {
        for &r in col {
            coo.push(r, j, 1).unwrap();
        }
    }
    coo
}

fn bench_ata_kernels(c: &mut Criterion) {
    let m = 50_000;
    let n = 64;
    let density = 5e-3;
    let columns = build_columns(m, n, density);
    let coo = boolean_matrix(m, &columns);
    let csr = coo.to_csr();
    let csc = coo.to_csc();

    // Filtered + masked representation (the paper's default path).
    let filter = batch_row_filter(m, &columns);
    let filtered = apply_filter(&columns, &filter);
    let packed = BitMatrix::from_columns(filter.num_nonzero_rows(), &filtered).unwrap();
    let packed_csr = packed.to_csr();

    let mut group = c.benchmark_group("ata_kernels");
    group.sample_size(10);
    group.bench_function("boolean_plus_times_sequential", |b| {
        b.iter(|| black_box(ata_dense::<PlusTimes<u64>>(black_box(&csr))))
    });
    group.bench_function("boolean_plus_times_parallel", |b| {
        b.iter(|| black_box(ata_dense_parallel::<PlusTimes<u64>>(black_box(&csc), black_box(&csr))))
    });
    group.bench_function("masked_popcount_parallel", |b| {
        b.iter(|| {
            black_box(ata_dense_parallel::<PopcountAnd>(
                black_box(packed.as_csc()),
                black_box(&packed_csr),
            ))
        })
    });
    group.finish();
}

fn bench_preprocessing(c: &mut Criterion) {
    let m = 200_000;
    let n = 32;
    let columns = build_columns(m, n, 1e-3);
    let mut group = c.benchmark_group("preprocessing");
    group.sample_size(10);
    group.bench_function("zero_row_filter", |b| {
        b.iter(|| black_box(batch_row_filter(m, black_box(&columns))))
    });
    let filter = batch_row_filter(m, &columns);
    let filtered = apply_filter(&columns, &filter);
    group.bench_function("bitmask_packing", |b| {
        b.iter(|| {
            black_box(
                BitMatrix::from_columns(filter.num_nonzero_rows(), black_box(&filtered)).unwrap(),
            )
        })
    });
    group.finish();
}

fn bench_density_sweep(c: &mut Criterion) {
    let m = 50_000;
    let n = 32;
    let mut group = c.benchmark_group("ata_density_sweep");
    group.sample_size(10);
    for density in [1e-4, 1e-3, 1e-2] {
        let columns = build_columns(m, n, density);
        let filter = batch_row_filter(m, &columns);
        let filtered = apply_filter(&columns, &filter);
        let packed = BitMatrix::from_columns(filter.num_nonzero_rows(), &filtered).unwrap();
        let packed_csr = packed.to_csr();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{density:.0e}")),
            &density,
            |b, _| {
                b.iter(|| {
                    black_box(ata_dense_parallel::<PopcountAnd>(
                        black_box(packed.as_csc()),
                        black_box(&packed_csr),
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ata_kernels, bench_preprocessing, bench_density_sweep);
criterion_main!(benches);
