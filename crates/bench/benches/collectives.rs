//! Criterion micro-benchmarks for the simulated runtime: collective
//! operations and the distributed zero-row filter, across rank counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use gas_dstsim::Runtime;
use gas_sparse::dist::filter::dist_row_filter;

fn bench_allreduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("allreduce");
    group.sample_size(10);
    for ranks in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(ranks), &ranks, |b, &p| {
            b.iter(|| {
                let out = Runtime::new(p)
                    .run(|ctx| {
                        let data = vec![ctx.rank() as u64; 4096];
                        ctx.world().allreduce_sum(&data).unwrap()
                    })
                    .unwrap();
                black_box(out.results.len())
            })
        });
    }
    group.finish();
}

fn bench_alltoallv(c: &mut Criterion) {
    let mut group = c.benchmark_group("alltoallv");
    group.sample_size(10);
    for ranks in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(ranks), &ranks, |b, &p| {
            b.iter(|| {
                let out = Runtime::new(p)
                    .run(|ctx| {
                        let bufs: Vec<Vec<u64>> =
                            (0..ctx.nranks()).map(|d| vec![d as u64; 1024]).collect();
                        ctx.world().alltoallv(bufs).unwrap()
                    })
                    .unwrap();
                black_box(out.results.len())
            })
        });
    }
    group.finish();
}

fn bench_dist_filter(c: &mut Criterion) {
    let mut group = c.benchmark_group("dist_row_filter");
    group.sample_size(10);
    for ranks in [2usize, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(ranks), &ranks, |b, &p| {
            b.iter(|| {
                let out = Runtime::new(p)
                    .run(|ctx| {
                        let local: Vec<usize> =
                            (0..5_000).map(|i| (i * 37 + ctx.rank() * 13) % 200_000).collect();
                        dist_row_filter(ctx.world(), 200_000, &local).unwrap().num_nonzero_rows()
                    })
                    .unwrap();
                black_box(out.results[0])
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_allreduce, bench_alltoallv, bench_dist_filter);
criterion_main!(benches);
