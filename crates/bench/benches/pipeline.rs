//! Criterion benchmarks of the end-to-end SimilarityAtScale pipeline:
//! shared-memory driver across batch counts, the simulated-distributed
//! driver across rank counts, and the allreduce baseline for contrast.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use gas_core::algorithm::{similarity_at_scale, similarity_at_scale_distributed};
use gas_core::baselines::allreduce_jaccard_distributed;
use gas_core::config::SimilarityConfig;
use gas_core::indicator::SampleCollection;
use gas_dstsim::machine::Machine;
use gas_genomics::datasets::DatasetSpec;

fn collection() -> SampleCollection {
    let samples = DatasetSpec::explicit(50_000, 32, 2e-3, 4).generate().unwrap();
    SampleCollection::from_sorted_sets(samples).unwrap()
}

fn bench_shared_memory(c: &mut Criterion) {
    let collection = collection();
    let mut group = c.benchmark_group("shared_memory_driver");
    group.sample_size(10);
    for batches in [1usize, 4, 16] {
        let config = SimilarityConfig::with_batches(batches);
        group.bench_with_input(BenchmarkId::from_parameter(batches), &batches, |b, _| {
            b.iter(|| black_box(similarity_at_scale(black_box(&collection), &config).unwrap()))
        });
    }
    group.finish();
}

fn bench_distributed(c: &mut Criterion) {
    let collection = collection();
    let machine = Machine::laptop();
    let config = SimilarityConfig::with_batches(2);
    let mut group = c.benchmark_group("distributed_driver");
    group.sample_size(10);
    for ranks in [1usize, 4, 9] {
        group.bench_with_input(BenchmarkId::new("similarity_at_scale", ranks), &ranks, |b, &p| {
            b.iter(|| {
                black_box(
                    similarity_at_scale_distributed(black_box(&collection), &config, p, &machine)
                        .unwrap(),
                )
            })
        });
    }
    let ranks = 4usize;
    group.bench_with_input(BenchmarkId::new("allreduce_baseline", ranks), &ranks, |b, &p| {
        b.iter(|| {
            black_box(
                allreduce_jaccard_distributed(black_box(&collection), &config, p, &machine)
                    .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_shared_memory, bench_distributed);
criterion_main!(benches);
