//! Criterion micro-benchmarks for the GenomeAtScale preprocessing
//! front-end: k-mer extraction (forward and canonical), read thresholding
//! and FASTA parsing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use gas_genomics::fasta::FastaReader;
use gas_genomics::kmer::KmerExtractor;
use gas_genomics::sample::KmerSample;
use gas_genomics::synth::{random_genome, simulate_reads};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_kmer_extraction(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let genome = random_genome(500_000, &mut rng);
    let mut group = c.benchmark_group("kmer_extraction");
    group.sample_size(10);
    for k in [19usize, 31] {
        let forward = KmerExtractor::new_forward(k).unwrap();
        let canonical = KmerExtractor::new(k).unwrap();
        group.bench_with_input(BenchmarkId::new("forward", k), &k, |b, _| {
            b.iter(|| black_box(forward.extract(black_box(&genome))))
        });
        group.bench_with_input(BenchmarkId::new("canonical", k), &k, |b, _| {
            b.iter(|| black_box(canonical.extract(black_box(&genome))))
        });
    }
    group.finish();
}

fn bench_read_thresholding(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let genome = random_genome(100_000, &mut rng);
    let reads = simulate_reads(&genome, 150, 5.0, 0.01, &mut rng).unwrap();
    let extractor = KmerExtractor::new(21).unwrap();
    let mut group = c.benchmark_group("sample_building");
    group.sample_size(10);
    group.bench_function("from_reads_with_threshold", |b| {
        b.iter(|| {
            black_box(KmerSample::from_reads_with_threshold(
                "s",
                reads.iter().map(|r| r.as_slice()),
                &extractor,
                2,
            ))
        })
    });
    group.finish();
}

fn bench_fasta_parsing(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let mut text = String::new();
    for i in 0..50 {
        text.push_str(&format!(">contig_{i}\n"));
        let g = random_genome(10_000, &mut rng);
        for chunk in g.chunks(70) {
            text.push_str(std::str::from_utf8(chunk).unwrap());
            text.push('\n');
        }
    }
    let mut group = c.benchmark_group("fasta");
    group.sample_size(10);
    group.bench_function("parse_multifasta", |b| {
        b.iter(|| {
            let reader = FastaReader::new(std::io::Cursor::new(black_box(text.as_bytes())));
            black_box(reader.read_all().unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_kmer_extraction, bench_read_thresholding, bench_fasta_parsing);
criterion_main!(benches);
