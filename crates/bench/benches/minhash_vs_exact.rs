//! Criterion micro-benchmarks comparing the cost of exact all-pairs
//! Jaccard with MinHash sketching at several sketch sizes (the accuracy
//! side of this trade-off is quantified by the `minhash_accuracy`
//! experiment binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use gas_core::indicator::SampleCollection;
use gas_core::jaccard::jaccard_exact_pairwise;
use gas_core::minhash::MinHasher;
use gas_genomics::datasets::DatasetSpec;

fn collection() -> SampleCollection {
    let samples = DatasetSpec::explicit(100_000, 48, 2e-3, 8).generate().unwrap();
    SampleCollection::from_sorted_sets(samples).unwrap()
}

fn bench_exact_vs_minhash(c: &mut Criterion) {
    let collection = collection();
    let mut group = c.benchmark_group("all_pairs_similarity");
    group.sample_size(10);
    group.bench_function("exact_pairwise", |b| {
        b.iter(|| black_box(jaccard_exact_pairwise(black_box(&collection))))
    });
    for sketch in [128usize, 1024] {
        let hasher = MinHasher::new(sketch).unwrap();
        group.bench_with_input(BenchmarkId::new("minhash", sketch), &sketch, |b, _| {
            b.iter(|| black_box(hasher.approximate_similarity(black_box(&collection))))
        });
    }
    group.finish();
}

fn bench_sketching_only(c: &mut Criterion) {
    let collection = collection();
    let mut group = c.benchmark_group("sketch_construction");
    group.sample_size(10);
    for sketch in [128usize, 1024, 8192] {
        let hasher = MinHasher::new(sketch).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(sketch), &sketch, |b, _| {
            b.iter(|| black_box(hasher.sketch_collection(black_box(&collection))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_exact_vs_minhash, bench_sketching_only);
criterion_main!(benches);
