//! Generic strong-scaling runner shared by the Figure 2 experiments.
//!
//! The paper's strong-scaling protocol (Section V-A4/B): the dataset is
//! fixed; as the node count doubles, the batch size doubles (so the batch
//! count halves) and the per-batch time stays roughly constant; the
//! projected total time — `time/batch × #batches` — therefore halves.
//! This module executes that protocol on the simulated runtime at a rank
//! count the host can run, and uses the paper's analytic cost model to
//! report the modeled per-batch time at the paper's full rank count.

use gas_core::algorithm::similarity_at_scale_distributed;
use gas_core::config::SimilarityConfig;
use gas_core::costmodel::{PaperCostModel, ProjectionInput};
use gas_core::indicator::SampleCollection;
use gas_dstsim::machine::Machine;

use crate::report::format_seconds;

/// Description of one strong-scaling sweep.
#[derive(Debug, Clone)]
pub struct ScalingSpec {
    /// Name used in the output.
    pub name: String,
    /// Machine model (Stampede2-like by default).
    pub machine: Machine,
    /// Node counts to report (the paper's x-axis).
    pub node_counts: Vec<usize>,
    /// Smallest node count (the reference point for batch scaling).
    pub base_nodes: usize,
    /// Number of batches used at the smallest node count.
    pub batches_at_base: usize,
    /// Cap on the number of simulated ranks (threads) per point.
    pub sim_rank_cap: usize,
    /// 2.5D replication factor.
    pub replication: usize,
}

impl ScalingSpec {
    /// A Stampede2-like sweep with sensible defaults.
    pub fn new(name: impl Into<String>, node_counts: Vec<usize>, batches_at_base: usize) -> Self {
        let base_nodes = node_counts.iter().copied().min().unwrap_or(1).max(1);
        ScalingSpec {
            name: name.into(),
            machine: Machine::stampede2_knl(),
            node_counts,
            base_nodes,
            batches_at_base,
            sim_rank_cap: default_sim_rank_cap(),
            replication: 1,
        }
    }
}

/// Cap on simulated ranks, overridable with `GAS_SIM_RANKS`.
pub fn default_sim_rank_cap() -> usize {
    std::env::var("GAS_SIM_RANKS").ok().and_then(|v| v.parse().ok()).unwrap_or(16).max(1)
}

/// One row of a strong-scaling result.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingPoint {
    /// Node count of the paper configuration.
    pub nodes: usize,
    /// Rank count of the paper configuration (32 ranks/node).
    pub paper_ranks: usize,
    /// Ranks actually simulated on the host.
    pub sim_ranks: usize,
    /// Number of batches at this node count.
    pub batches: usize,
    /// Measured mean seconds per batch on the simulated run.
    pub measured_batch_seconds: f64,
    /// Modeled (BSP) seconds per batch at the paper's rank count.
    pub modeled_batch_seconds: f64,
    /// Projected total time: measured time/batch × #batches.
    pub projected_total_seconds: f64,
    /// Average bytes sent per simulated rank (communication volume).
    pub comm_bytes_per_rank: u64,
}

impl ScalingPoint {
    /// Format as a row for [`crate::report::Table`].
    pub fn row(&self) -> Vec<String> {
        vec![
            self.nodes.to_string(),
            self.paper_ranks.to_string(),
            self.sim_ranks.to_string(),
            self.batches.to_string(),
            format!("{:.4}", self.measured_batch_seconds),
            format!("{:.4}", self.modeled_batch_seconds),
            format_seconds(self.projected_total_seconds),
            self.comm_bytes_per_rank.to_string(),
        ]
    }

    /// Table headers matching [`ScalingPoint::row`].
    pub fn headers() -> Vec<&'static str> {
        vec![
            "nodes",
            "paper_ranks",
            "sim_ranks",
            "batches",
            "s_per_batch_meas",
            "s_per_batch_model",
            "projected_total",
            "bytes_per_rank",
        ]
    }
}

/// Execute a strong-scaling sweep over `collection`.
///
/// The projected total time follows the paper's own protocol: the
/// per-batch time is taken from the *reference* (smallest) node count —
/// the paper observes it stays roughly constant because the batch size
/// grows with the node count — and multiplied by the batch count of each
/// configuration. The per-point measured and BSP-modeled per-batch times
/// are reported alongside for transparency.
pub fn strong_scaling(collection: &SampleCollection, spec: &ScalingSpec) -> Vec<ScalingPoint> {
    let cost_model = spec.machine.cost_model().expect("machine presets are valid");
    let paper_model = PaperCostModel::new(cost_model);
    let mut points = Vec::new();
    let mut base_batch_seconds: Option<f64> = None;
    for &nodes in &spec.node_counts {
        let paper_ranks = spec.machine.total_ranks(nodes);
        // One simulated rank stands in for one paper node: the simulated
        // rank's local kernel is itself Rayon-parallel, mirroring the 32
        // MPI ranks + threads that share a physical node.
        let sim_ranks = spec.sim_rank_cap.min(nodes).max(1);
        // Batch size doubles with node count -> batch count halves.
        let batches = (spec.batches_at_base * spec.base_nodes / nodes.max(1)).max(1);
        let config = SimilarityConfig::with_batches(batches).with_replication(spec.replication);
        let summary =
            similarity_at_scale_distributed(collection, &config, sim_ranks, &spec.machine)
                .expect("simulated run succeeds");
        let measured_batch_seconds = summary.mean_batch_seconds();
        // Analytic per-batch cost at the paper's rank count, driven by the
        // observed nonzero and flop totals.
        let z_total = collection.nnz() as f64;
        let flops_total = summary.aggregate.total_flops.max(1) as f64;
        let input = ProjectionInput {
            n_samples: collection.n(),
            total_nonzeros: z_total,
            total_flops: flops_total,
            ranks: paper_ranks,
            mem_words_per_rank: spec.machine.mem_per_rank() as f64 / 8.0,
            replication: spec.replication,
        };
        let modeled_batch_seconds = paper_model
            .batch_cost(z_total / batches as f64, &input, flops_total / batches as f64)
            .unwrap_or(f64::NAN);
        let comm_bytes_per_rank = summary.aggregate.total_bytes_sent / summary.nranks.max(1) as u64;
        // Per the paper's protocol, the batch size grows with the node
        // count so the per-batch time stays (approximately) constant; use
        // the reference point's measured per-batch time for the total
        // projection at every node count.
        let reference_batch_seconds = *base_batch_seconds.get_or_insert(measured_batch_seconds);
        points.push(ScalingPoint {
            nodes,
            paper_ranks,
            sim_ranks,
            batches,
            measured_batch_seconds,
            modeled_batch_seconds,
            projected_total_seconds: reference_batch_seconds * batches as f64,
            comm_bytes_per_rank,
        });
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::synthetic_collection;

    #[test]
    fn strong_scaling_produces_one_point_per_node_count() {
        let collection = synthetic_collection(2000, 10, 0.02, 1);
        let mut spec = ScalingSpec::new("test", vec![1, 2, 4], 4);
        spec.sim_rank_cap = 4;
        let points = strong_scaling(&collection, &spec);
        assert_eq!(points.len(), 3);
        // Batch count halves as nodes double.
        assert_eq!(points[0].batches, 4);
        assert_eq!(points[1].batches, 2);
        assert_eq!(points[2].batches, 1);
        for p in &points {
            assert!(p.measured_batch_seconds >= 0.0);
            assert!(p.projected_total_seconds >= 0.0);
            assert_eq!(p.paper_ranks, p.nodes * 32);
            assert_eq!(p.row().len(), ScalingPoint::headers().len());
        }
        // Projected total time follows the batch count downwards.
        assert!(points[0].projected_total_seconds >= points[2].projected_total_seconds);
        // Modeled per-batch cost at more nodes is not larger for the same
        // per-batch work... (batch size grows, so it can grow; just check
        // it is finite and positive).
        assert!(points.iter().all(|p| p.modeled_batch_seconds.is_finite()));
    }
}
