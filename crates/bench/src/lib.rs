//! # gas-bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation (Section V), plus
//! Criterion micro-benchmarks for the individual kernels. Every binary
//! prints the same rows/series the paper reports and writes a CSV under
//! `results/`.
//!
//! Absolute times cannot match a 1024-node Stampede2 run, so each
//! experiment reports three things per configuration (see
//! `EXPERIMENTS.md`):
//!
//! 1. **measured** — wall-clock of the real computation at the scale the
//!    host can execute (simulated ranks are threads),
//! 2. **modeled** — the BSP α–β–γ projection at the paper's rank count,
//!    driven by the communication counters the simulator recorded and the
//!    paper's analytic cost model,
//! 3. **projected total** — `time/batch × #batches`, the quantity the
//!    paper's figures plot.

pub mod report;
pub mod scaling;
pub mod workloads;

pub use report::Table;
pub use scaling::{strong_scaling, ScalingPoint, ScalingSpec};
