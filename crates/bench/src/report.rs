//! Table printing and CSV/JSON output for the experiment binaries.

use std::fs;
use std::io::Write;
use std::path::Path;

/// A simple experiment-result table: a title, column headers and string
/// rows. Printed to stdout in aligned columns and written to
/// `results/<name>.csv`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Human-readable table title (printed above the rows).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (each the same length as `headers`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row has {} cells for {} headers",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Render the table as aligned text.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print the table to stdout.
    pub fn print(&self) {
        println!("{}", self.to_text());
    }

    /// Write the table as CSV to `dir/<name>.csv`, creating the directory
    /// if needed. Returns the path written.
    pub fn write_csv(
        &self,
        dir: impl AsRef<Path>,
        name: &str,
    ) -> std::io::Result<std::path::PathBuf> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut f = fs::File::create(&path)?;
        writeln!(f, "{}", self.headers.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(path)
    }

    /// Write the table as JSON to `dir/<name>.json`, creating the
    /// directory if needed: `{"title": ..., "rows": [{header: cell, ...}]}`.
    /// Cells that parse as numbers are emitted as JSON numbers so the
    /// report is machine-consumable (CI uploads these as artifacts for the
    /// perf trajectory). Returns the path written.
    pub fn write_json(
        &self,
        dir: impl AsRef<Path>,
        name: &str,
    ) -> std::io::Result<std::path::PathBuf> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.json"));
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"title\": {},\n", json_string(&self.title)));
        out.push_str("  \"rows\": [\n");
        for (ri, row) in self.rows.iter().enumerate() {
            let fields: Vec<String> = self
                .headers
                .iter()
                .zip(row)
                .map(|(h, c)| format!("{}: {}", json_string(h), json_cell(c)))
                .collect();
            let sep = if ri + 1 < self.rows.len() { "," } else { "" };
            out.push_str(&format!("    {{{}}}{sep}\n", fields.join(", ")));
        }
        out.push_str("  ]\n}\n");
        fs::write(&path, out)?;
        Ok(path)
    }
}

/// Read the rows of a JSON report written by [`Table::write_json`] as
/// `(header, raw value)` maps, one per row — the inverse the bench-trend
/// gate needs to diff a fresh report against a committed baseline.
///
/// This is deliberately *not* a general JSON parser: it accepts exactly
/// the shape `write_json` emits (a top-level object with a string
/// `"title"` and a `"rows"` array of flat objects whose values are
/// strings or bare scalars) and returns a typed error on anything else,
/// so a malformed baseline fails the gate loudly instead of reading as
/// an empty trajectory. Scalar values come back as their raw JSON text
/// (`"3.5"`, `"6"`); string values are unescaped.
pub fn read_json_rows(path: impl AsRef<Path>) -> std::io::Result<Vec<Vec<(String, String)>>> {
    let text = fs::read_to_string(path.as_ref())?;
    parse_report(&text).map_err(|msg| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("{}: {msg}", path.as_ref().display()),
        )
    })
}

fn parse_report(text: &str) -> Result<Vec<Vec<(String, String)>>, String> {
    let mut p = JsonCursor { bytes: text.as_bytes(), pos: 0 };
    p.expect(b'{')?;
    let title_key = p.string()?;
    if title_key != "title" {
        return Err(format!("expected \"title\" first, found \"{title_key}\""));
    }
    p.expect(b':')?;
    p.string()?; // title value, unused
    p.expect(b',')?;
    let rows_key = p.string()?;
    if rows_key != "rows" {
        return Err(format!("expected \"rows\", found \"{rows_key}\""));
    }
    p.expect(b':')?;
    p.expect(b'[')?;
    let mut rows = Vec::new();
    if !p.eat(b']') {
        loop {
            rows.push(p.flat_object()?);
            if !p.eat(b',') {
                p.expect(b']')?;
                break;
            }
        }
    }
    p.expect(b'}')?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err("trailing content after the report object".into());
    }
    Ok(rows)
}

/// Byte cursor over [`Table::write_json`]'s output shape.
struct JsonCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonCursor<'_> {
    fn skip_ws(&mut self) {
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, want: u8) -> bool {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&want) {
            self.pos += 1;
            return true;
        }
        false
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        if self.eat(want) {
            return Ok(());
        }
        Err(format!(
            "expected '{}' at byte {}, found {:?}",
            want as char,
            self.pos,
            self.bytes.get(self.pos).map(|&b| b as char)
        ))
    }

    /// A JSON string literal, unescaped.
    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("unsupported escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Strings are UTF-8 and write_json never splits a
                    // multi-byte character, so copy whole characters.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let ch = rest.chars().next().expect("non-empty checked above");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    /// A flat `{header: value, ...}` row object: values are strings or
    /// bare scalars (returned as raw text).
    fn flat_object(&mut self) -> Result<Vec<(String, String)>, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.eat(b'}') {
            return Ok(fields);
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            self.skip_ws();
            let value = if self.bytes.get(self.pos) == Some(&b'"') {
                self.string()?
            } else {
                let start = self.pos;
                while self
                    .bytes
                    .get(self.pos)
                    .is_some_and(|&b| !matches!(b, b',' | b'}') && !b.is_ascii_whitespace())
                {
                    self.pos += 1;
                }
                if self.pos == start {
                    return Err(format!("empty scalar for key \"{key}\""));
                }
                String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned()
            };
            fields.push((key, value));
            if !self.eat(b',') {
                self.expect(b'}')?;
                return Ok(fields);
            }
        }
    }
}

/// Escape a string as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Emit a table cell as a JSON number when it parses as one (and
/// round-trips losslessly), otherwise as a string.
fn json_cell(cell: &str) -> String {
    if let Ok(v) = cell.parse::<i64>() {
        return v.to_string();
    }
    if let Ok(v) = cell.parse::<u64>() {
        return v.to_string();
    }
    if let Ok(v) = cell.parse::<f64>() {
        // Only emit as a number when no precision is lost (large counters
        // beyond 2^53 must stay exact, so fall through to a string).
        if v.is_finite() && format!("{v}") == cell {
            return cell.to_string();
        }
    }
    json_string(cell)
}

/// Format seconds compactly: milliseconds below one second, otherwise
/// seconds / minutes / hours / days as appropriate.
pub fn format_seconds(s: f64) -> String {
    if s < 1.0 {
        format!("{:.1} ms", s * 1e3)
    } else if s < 120.0 {
        format!("{s:.2} s")
    } else if s < 7200.0 {
        format!("{:.2} min", s / 60.0)
    } else if s < 48.0 * 3600.0 {
        format!("{:.2} h", s / 3600.0)
    } else {
        format!("{:.2} d", s / 86400.0)
    }
}

/// Default results directory (relative to the workspace root when run via
/// `cargo run`).
pub fn results_dir() -> std::path::PathBuf {
    std::path::PathBuf::from("results")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_and_writes_csv() {
        let mut t = Table::new("demo", &["nodes", "time"]);
        t.push_row(vec!["1".into(), "10.0".into()]);
        t.push_row(vec!["2".into(), "5.5".into()]);
        let text = t.to_text();
        assert!(text.contains("demo"));
        assert!(text.contains("nodes"));
        assert!(text.contains("5.5"));
        let dir = std::env::temp_dir().join("gas_bench_report_test");
        let path = t.write_csv(&dir, "demo").unwrap();
        let contents = std::fs::read_to_string(path).unwrap();
        assert!(contents.starts_with("nodes,time\n"));
        assert!(contents.contains("2,5.5"));
    }

    #[test]
    fn table_writes_typed_json() {
        let mut t = Table::new("demo \"quoted\"", &["ranks", "ratio", "note"]);
        t.push_row(vec!["4".into(), "2.50x".into(), "ok".into()]);
        t.push_row(vec!["8".into(), "3.5".into(), "line\nbreak".into()]);
        let dir = std::env::temp_dir().join("gas_bench_report_json_test");
        let path = t.write_json(&dir, "demo").unwrap();
        let contents = std::fs::read_to_string(path).unwrap();
        assert!(contents.contains("\"title\": \"demo \\\"quoted\\\"\""));
        assert!(contents.contains("\"ranks\": 4"), "integers stay numeric: {contents}");
        assert!(contents.contains("\"ratio\": \"2.50x\""), "suffixed cells stay strings");
        assert!(contents.contains("\"ratio\": 3.5"), "floats stay numeric");
        assert!(contents.contains("line\\nbreak"));
    }

    #[test]
    fn json_reports_round_trip_through_read_json_rows() {
        let mut t = Table::new("trip \"quoted\"", &["workload", "qps", "ratio", "note"]);
        t.push_row(vec!["tiny".into(), "6531.3".into(), "2.50x".into(), "line\nbreak".into()]);
        t.push_row(vec!["default".into(), "42".into(), "3.5".into(), "ok".into()]);
        let dir = std::env::temp_dir().join("gas_bench_report_roundtrip_test");
        let path = t.write_json(&dir, "trip").unwrap();
        let rows = read_json_rows(&path).unwrap();
        assert_eq!(rows.len(), 2);
        // Headers and raw values survive, whether emitted as JSON numbers
        // (qps, bare scalar) or strings (suffixed ratio, escaped note).
        assert_eq!(rows[0][0], ("workload".into(), "tiny".into()));
        assert_eq!(rows[0][1], ("qps".into(), "6531.3".into()));
        assert_eq!(rows[0][2], ("ratio".into(), "2.50x".into()));
        assert_eq!(rows[0][3], ("note".into(), "line\nbreak".into()));
        assert_eq!(rows[1][1], ("qps".into(), "42".into()));
    }

    #[test]
    fn read_json_rows_rejects_malformed_baselines() {
        let dir = std::env::temp_dir().join("gas_bench_report_malformed_test");
        std::fs::create_dir_all(&dir).unwrap();
        for (name, text) in [
            ("empty", ""),
            ("not_report", "{\"rows\": []}"),
            ("truncated", "{\n  \"title\": \"t\",\n  \"rows\": [\n    {\"a\": 1}"),
            ("trailing", "{\n  \"title\": \"t\",\n  \"rows\": []\n}\nextra"),
        ] {
            let path = dir.join(format!("{name}.json"));
            std::fs::write(&path, text).unwrap();
            assert!(read_json_rows(&path).is_err(), "{name} must be rejected");
        }
        let ok = dir.join("ok.json");
        std::fs::write(&ok, "{\n  \"title\": \"t\",\n  \"rows\": []\n}\n").unwrap();
        assert_eq!(read_json_rows(&ok).unwrap().len(), 0);
    }

    #[test]
    #[should_panic]
    fn mismatched_row_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn seconds_formatting_covers_ranges() {
        assert!(format_seconds(0.01).ends_with("ms"));
        assert!(format_seconds(5.0).ends_with(" s"));
        assert!(format_seconds(600.0).ends_with("min"));
        assert!(format_seconds(10_000.0).ends_with(" h"));
        assert!(format_seconds(500_000.0).ends_with(" d"));
    }
}
