//! Table printing and CSV/JSON output for the experiment binaries.

use std::fs;
use std::io::Write;
use std::path::Path;

/// A simple experiment-result table: a title, column headers and string
/// rows. Printed to stdout in aligned columns and written to
/// `results/<name>.csv`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Human-readable table title (printed above the rows).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (each the same length as `headers`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row has {} cells for {} headers",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Render the table as aligned text.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print the table to stdout.
    pub fn print(&self) {
        println!("{}", self.to_text());
    }

    /// Write the table as CSV to `dir/<name>.csv`, creating the directory
    /// if needed. Returns the path written.
    pub fn write_csv(
        &self,
        dir: impl AsRef<Path>,
        name: &str,
    ) -> std::io::Result<std::path::PathBuf> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut f = fs::File::create(&path)?;
        writeln!(f, "{}", self.headers.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(path)
    }

    /// Write the table as JSON to `dir/<name>.json`, creating the
    /// directory if needed: `{"title": ..., "rows": [{header: cell, ...}]}`.
    /// Cells that parse as numbers are emitted as JSON numbers so the
    /// report is machine-consumable (CI uploads these as artifacts for the
    /// perf trajectory). Returns the path written.
    pub fn write_json(
        &self,
        dir: impl AsRef<Path>,
        name: &str,
    ) -> std::io::Result<std::path::PathBuf> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.json"));
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"title\": {},\n", json_string(&self.title)));
        out.push_str("  \"rows\": [\n");
        for (ri, row) in self.rows.iter().enumerate() {
            let fields: Vec<String> = self
                .headers
                .iter()
                .zip(row)
                .map(|(h, c)| format!("{}: {}", json_string(h), json_cell(c)))
                .collect();
            let sep = if ri + 1 < self.rows.len() { "," } else { "" };
            out.push_str(&format!("    {{{}}}{sep}\n", fields.join(", ")));
        }
        out.push_str("  ]\n}\n");
        fs::write(&path, out)?;
        Ok(path)
    }
}

/// Escape a string as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Emit a table cell as a JSON number when it parses as one (and
/// round-trips losslessly), otherwise as a string.
fn json_cell(cell: &str) -> String {
    if let Ok(v) = cell.parse::<i64>() {
        return v.to_string();
    }
    if let Ok(v) = cell.parse::<u64>() {
        return v.to_string();
    }
    if let Ok(v) = cell.parse::<f64>() {
        // Only emit as a number when no precision is lost (large counters
        // beyond 2^53 must stay exact, so fall through to a string).
        if v.is_finite() && format!("{v}") == cell {
            return cell.to_string();
        }
    }
    json_string(cell)
}

/// Format seconds compactly: milliseconds below one second, otherwise
/// seconds / minutes / hours / days as appropriate.
pub fn format_seconds(s: f64) -> String {
    if s < 1.0 {
        format!("{:.1} ms", s * 1e3)
    } else if s < 120.0 {
        format!("{s:.2} s")
    } else if s < 7200.0 {
        format!("{:.2} min", s / 60.0)
    } else if s < 48.0 * 3600.0 {
        format!("{:.2} h", s / 3600.0)
    } else {
        format!("{:.2} d", s / 86400.0)
    }
}

/// Default results directory (relative to the workspace root when run via
/// `cargo run`).
pub fn results_dir() -> std::path::PathBuf {
    std::path::PathBuf::from("results")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_and_writes_csv() {
        let mut t = Table::new("demo", &["nodes", "time"]);
        t.push_row(vec!["1".into(), "10.0".into()]);
        t.push_row(vec!["2".into(), "5.5".into()]);
        let text = t.to_text();
        assert!(text.contains("demo"));
        assert!(text.contains("nodes"));
        assert!(text.contains("5.5"));
        let dir = std::env::temp_dir().join("gas_bench_report_test");
        let path = t.write_csv(&dir, "demo").unwrap();
        let contents = std::fs::read_to_string(path).unwrap();
        assert!(contents.starts_with("nodes,time\n"));
        assert!(contents.contains("2,5.5"));
    }

    #[test]
    fn table_writes_typed_json() {
        let mut t = Table::new("demo \"quoted\"", &["ranks", "ratio", "note"]);
        t.push_row(vec!["4".into(), "2.50x".into(), "ok".into()]);
        t.push_row(vec!["8".into(), "3.5".into(), "line\nbreak".into()]);
        let dir = std::env::temp_dir().join("gas_bench_report_json_test");
        let path = t.write_json(&dir, "demo").unwrap();
        let contents = std::fs::read_to_string(path).unwrap();
        assert!(contents.contains("\"title\": \"demo \\\"quoted\\\"\""));
        assert!(contents.contains("\"ranks\": 4"), "integers stay numeric: {contents}");
        assert!(contents.contains("\"ratio\": \"2.50x\""), "suffixed cells stay strings");
        assert!(contents.contains("\"ratio\": 3.5"), "floats stay numeric");
        assert!(contents.contains("line\\nbreak"));
    }

    #[test]
    #[should_panic]
    fn mismatched_row_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn seconds_formatting_covers_ranges() {
        assert!(format_seconds(0.01).ends_with("ms"));
        assert!(format_seconds(5.0).ends_with(" s"));
        assert!(format_seconds(600.0).ends_with("min"));
        assert!(format_seconds(10_000.0).ends_with(" h"));
        assert!(format_seconds(500_000.0).ends_with(" d"));
    }
}
