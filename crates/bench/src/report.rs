//! Table printing and CSV output for the experiment binaries.

use std::fs;
use std::io::Write;
use std::path::Path;

/// A simple experiment-result table: a title, column headers and string
/// rows. Printed to stdout in aligned columns and written to
/// `results/<name>.csv`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Human-readable table title (printed above the rows).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (each the same length as `headers`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row has {} cells for {} headers",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Render the table as aligned text.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print the table to stdout.
    pub fn print(&self) {
        println!("{}", self.to_text());
    }

    /// Write the table as CSV to `dir/<name>.csv`, creating the directory
    /// if needed. Returns the path written.
    pub fn write_csv(
        &self,
        dir: impl AsRef<Path>,
        name: &str,
    ) -> std::io::Result<std::path::PathBuf> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut f = fs::File::create(&path)?;
        writeln!(f, "{}", self.headers.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(path)
    }
}

/// Format seconds compactly: milliseconds below one second, otherwise
/// seconds / minutes / hours / days as appropriate.
pub fn format_seconds(s: f64) -> String {
    if s < 1.0 {
        format!("{:.1} ms", s * 1e3)
    } else if s < 120.0 {
        format!("{s:.2} s")
    } else if s < 7200.0 {
        format!("{:.2} min", s / 60.0)
    } else if s < 48.0 * 3600.0 {
        format!("{:.2} h", s / 3600.0)
    } else {
        format!("{:.2} d", s / 86400.0)
    }
}

/// Default results directory (relative to the workspace root when run via
/// `cargo run`).
pub fn results_dir() -> std::path::PathBuf {
    std::path::PathBuf::from("results")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_and_writes_csv() {
        let mut t = Table::new("demo", &["nodes", "time"]);
        t.push_row(vec!["1".into(), "10.0".into()]);
        t.push_row(vec!["2".into(), "5.5".into()]);
        let text = t.to_text();
        assert!(text.contains("demo"));
        assert!(text.contains("nodes"));
        assert!(text.contains("5.5"));
        let dir = std::env::temp_dir().join("gas_bench_report_test");
        let path = t.write_csv(&dir, "demo").unwrap();
        let contents = std::fs::read_to_string(path).unwrap();
        assert!(contents.starts_with("nodes,time\n"));
        assert!(contents.contains("2,5.5"));
    }

    #[test]
    #[should_panic]
    fn mismatched_row_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn seconds_formatting_covers_ranges() {
        assert!(format_seconds(0.01).ends_with("ms"));
        assert!(format_seconds(5.0).ends_with(" s"));
        assert!(format_seconds(600.0).ends_with("min"));
        assert!(format_seconds(10_000.0).ends_with(" h"));
        assert!(format_seconds(500_000.0).ends_with(" d"));
    }
}
