//! Bench trend gate: diff a fresh `query_throughput` JSON report against
//! the committed baseline and fail on a real regression.
//!
//! CI's query-smoke job runs the tiny `query_throughput` workload, then
//! this gate with the freshly written `results/query_throughput.json`
//! against `bench/baselines/query_throughput.tiny.json` (the committed
//! trajectory seed). Rows are matched on `(workload, signer)` and three
//! figures are held:
//!
//! * **engine_qps** — may not drop below half the baseline (>2×
//!   throughput regression fails; timing noise on tiny CI runners stays
//!   well inside 2×);
//! * **wire_bytes_p4** — the per-batch collective wire total at p = 4
//!   may not exceed 2× the baseline (>2× collective-byte regression
//!   fails);
//! * **collectives_p4** — the collectives budget: byte volumes wobble
//!   with workload shape, the *number* of collectives per batch is a
//!   design property and may not exceed the baseline at all.
//!
//! Improvements never fail the gate — refresh the baseline by copying
//! the new report over `bench/baselines/` when a PR legitimately moves
//! the numbers.
//!
//! Usage: `bench_trend [current.json] [baseline.json]` (defaults:
//! `results/query_throughput.json`,
//! `bench/baselines/query_throughput.tiny.json`).
//!
//! `bench_trend --serve [current.json] [baseline.json]` gates the
//! serving-frontend smoke report instead (defaults:
//! `results/serve_stats.json`, `bench/baselines/serve_stats.tiny.json`).
//! Rows are matched on `workload` and four figures are held:
//!
//! * **max_commit_queue_depth** — the observed commit-queue high-water
//!   mark may not exceed the baseline (the committed admission bound):
//!   admission control shedding at the door is a design property;
//! * **collectives_p4** — the per-batch collectives budget of the
//!   sharded path at p = 4 may not grow at all (the keyed exchange
//!   makes it independent of the commit history);
//! * **dist_identical** — sharded serving must stay bit-identical to
//!   single-rank serving;
//! * **sheds** — the typed-overload path must have been exercised at
//!   least once (a silent never-sheds run means the demo went dead).
//!
//! `bench_trend --obs [current.json] [baseline.json]` gates the tracing
//! overhead instead (defaults: `results/obs_overhead.json`,
//! `bench/baselines/query_throughput.tiny.json`). For each overhead row
//! matched on `(workload, signer)` against the baseline's `engine_qps`:
//!
//! * **qps_disabled** — with tracing disabled (the production default,
//!   one relaxed atomic load per span site) throughput may regress at
//!   most 5% against the committed baseline: carrying the
//!   instrumentation must be free;
//! * **qps_enabled** — with tracing on, throughput must stay within 2×
//!   of the disabled figure (a sanity bound, not a budget — tracing is
//!   a diagnosis mode).
//!
//! `bench_trend --chaos [current.json] [baseline.json]` gates the
//! fault-injection overhead the same way (defaults:
//! `results/chaos_overhead.json`,
//! `bench/baselines/query_throughput.tiny.json`): with injection
//! disabled (the production default — one relaxed atomic load per
//! storage-operation site, zero sites on the serving path) throughput
//! may regress at most 5% against the committed baseline, and with an
//! inert plan armed it must stay within 2× of disabled.
//!
//! `bench_trend --plan [current.json] [baseline.json]` gates the
//! placement & autotuning sweep (defaults:
//! `results/placement_sweep.json`,
//! `bench/baselines/placement_sweep.tiny.json`). Rows are matched on
//! `(kind, name)`; every baseline row must still exist, every current
//! row must carry `ok = 1` (the sweep computes its own acceptance —
//! planned wire bytes at or below both pure placements, answers
//! bit-identical, tuned knobs within their bounded factors of grid
//! search), and the planned placement's total wire bytes may not exceed
//! 2× the committed baseline.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

use gas_bench::report::read_json_rows;

/// The gated figures of one report row.
#[derive(Debug, Clone, PartialEq)]
struct TrendRow {
    engine_qps: f64,
    wire_bytes_p4: f64,
    collectives_p4: f64,
}

/// Index a report's rows by `(workload, signer)`, pulling the gated
/// columns out of the raw `(header, value)` pairs.
fn trend_rows(path: &PathBuf) -> Result<BTreeMap<(String, String), TrendRow>, String> {
    let rows = read_json_rows(path).map_err(|e| e.to_string())?;
    let mut out = BTreeMap::new();
    for (i, row) in rows.iter().enumerate() {
        let field = |name: &str| -> Result<String, String> {
            row.iter()
                .find(|(h, _)| h == name)
                .map(|(_, v)| v.clone())
                .ok_or_else(|| format!("{}: row {i} has no \"{name}\" column", path.display()))
        };
        let number = |name: &str| -> Result<f64, String> {
            let raw = field(name)?;
            raw.parse::<f64>().map_err(|_| {
                format!("{}: row {i} column \"{name}\" is not numeric: {raw:?}", path.display())
            })
        };
        let key = (field("workload")?, field("signer")?);
        let figures = TrendRow {
            engine_qps: number("engine_qps")?,
            wire_bytes_p4: number("wire_bytes_p4")?,
            collectives_p4: number("collectives_p4")?,
        };
        if out.insert(key.clone(), figures).is_some() {
            return Err(format!("{}: duplicate row for {key:?}", path.display()));
        }
    }
    Ok(out)
}

/// The gated figures of one serving-smoke report row.
#[derive(Debug, Clone, PartialEq)]
struct ServeRow {
    max_commit_queue_depth: f64,
    collectives_p4: f64,
    dist_identical: f64,
    sheds: f64,
}

/// Index a serving-smoke report's rows by `workload`.
fn serve_rows(path: &PathBuf) -> Result<BTreeMap<String, ServeRow>, String> {
    let rows = read_json_rows(path).map_err(|e| e.to_string())?;
    let mut out = BTreeMap::new();
    for (i, row) in rows.iter().enumerate() {
        let field = |name: &str| -> Result<String, String> {
            row.iter()
                .find(|(h, _)| h == name)
                .map(|(_, v)| v.clone())
                .ok_or_else(|| format!("{}: row {i} has no \"{name}\" column", path.display()))
        };
        let number = |name: &str| -> Result<f64, String> {
            let raw = field(name)?;
            raw.parse::<f64>().map_err(|_| {
                format!("{}: row {i} column \"{name}\" is not numeric: {raw:?}", path.display())
            })
        };
        let key = field("workload")?;
        let figures = ServeRow {
            max_commit_queue_depth: number("max_commit_queue_depth")?,
            collectives_p4: number("collectives_p4")?,
            dist_identical: number("dist_identical")?,
            sheds: number("sheds")?,
        };
        if out.insert(key.clone(), figures).is_some() {
            return Err(format!("{}: duplicate row for workload {key:?}", path.display()));
        }
    }
    Ok(out)
}

/// Gate the serving-frontend smoke report against its committed
/// baseline: queue high-water within the admission bound, collectives
/// budget not exceeded, sharded equality intact, shedding exercised.
fn serve_gate(current: &PathBuf, baseline: &PathBuf) -> ExitCode {
    let (current_rows, baseline_rows) = match (serve_rows(current), serve_rows(baseline)) {
        (Ok(c), Ok(b)) => (c, b),
        (c, b) => {
            for err in [c.err(), b.err()].into_iter().flatten() {
                eprintln!("bench-trend: {err}");
            }
            return ExitCode::FAILURE;
        }
    };
    if baseline_rows.is_empty() {
        eprintln!("bench-trend: baseline {} holds no rows", baseline.display());
        return ExitCode::FAILURE;
    }
    let mut failures = Vec::new();
    for (workload, base) in &baseline_rows {
        let Some(now) = current_rows.get(workload) else {
            failures.push(format!("workload {workload} vanished from the current report"));
            continue;
        };
        println!(
            "[serve/{workload}] commit queue high-water {:.0} (bound {:.0}), collectives \
             {:.0} (budget {:.0}), dist identical {:.0}, sheds {:.0}",
            now.max_commit_queue_depth,
            base.max_commit_queue_depth,
            now.collectives_p4,
            base.collectives_p4,
            now.dist_identical,
            now.sheds
        );
        if now.max_commit_queue_depth > base.max_commit_queue_depth {
            failures.push(format!(
                "({workload}) commit queue high-water {:.0} exceeded the admission bound {:.0}",
                now.max_commit_queue_depth, base.max_commit_queue_depth
            ));
        }
        if now.collectives_p4 > base.collectives_p4 {
            failures.push(format!(
                "({workload}) collectives_p4 exceeded the budget: {:.0} vs baseline {:.0}",
                now.collectives_p4, base.collectives_p4
            ));
        }
        if now.dist_identical != 1.0 {
            failures
                .push(format!("({workload}) sharded serving diverged from single-rank serving"));
        }
        if now.sheds < 1.0 {
            failures.push(format!(
                "({workload}) admission control never shed — the overload demo went dead"
            ));
        }
    }
    if failures.is_empty() {
        println!(
            "bench-trend OK: {} serving row(s) within budget of {}",
            baseline_rows.len(),
            baseline.display()
        );
        return ExitCode::SUCCESS;
    }
    for f in &failures {
        eprintln!("bench-trend FAIL: {f}");
    }
    eprintln!(
        "bench-trend: {} serving regression(s) vs {} — if intentional, refresh the baseline \
         from {}",
        failures.len(),
        baseline.display(),
        current.display()
    );
    ExitCode::FAILURE
}

/// The figures of one tracing-overhead report row.
#[derive(Debug, Clone, PartialEq)]
struct ObsRow {
    qps_disabled: f64,
    qps_enabled: f64,
}

/// Index a tracing-overhead report's rows by `(workload, signer)`.
fn obs_rows(path: &PathBuf) -> Result<BTreeMap<(String, String), ObsRow>, String> {
    let rows = read_json_rows(path).map_err(|e| e.to_string())?;
    let mut out = BTreeMap::new();
    for (i, row) in rows.iter().enumerate() {
        let field = |name: &str| -> Result<String, String> {
            row.iter()
                .find(|(h, _)| h == name)
                .map(|(_, v)| v.clone())
                .ok_or_else(|| format!("{}: row {i} has no \"{name}\" column", path.display()))
        };
        let number = |name: &str| -> Result<f64, String> {
            let raw = field(name)?;
            raw.parse::<f64>().map_err(|_| {
                format!("{}: row {i} column \"{name}\" is not numeric: {raw:?}", path.display())
            })
        };
        let key = (field("workload")?, field("signer")?);
        let figures =
            ObsRow { qps_disabled: number("qps_disabled")?, qps_enabled: number("qps_enabled")? };
        if out.insert(key.clone(), figures).is_some() {
            return Err(format!("{}: duplicate row for {key:?}", path.display()));
        }
    }
    Ok(out)
}

/// Gate the tracing-overhead report: disabled tracing must cost ≤ 5% of
/// the committed baseline throughput, enabled tracing must stay within
/// 2× of disabled.
fn obs_gate(current: &PathBuf, baseline: &PathBuf) -> ExitCode {
    let (current_rows, baseline_rows) = match (obs_rows(current), trend_rows(baseline)) {
        (Ok(c), Ok(b)) => (c, b),
        (c, b) => {
            for err in [c.err(), b.err()].into_iter().flatten() {
                eprintln!("bench-trend: {err}");
            }
            return ExitCode::FAILURE;
        }
    };
    if current_rows.is_empty() {
        eprintln!("bench-trend: overhead report {} holds no rows", current.display());
        return ExitCode::FAILURE;
    }
    let mut failures = Vec::new();
    for (key, now) in &current_rows {
        let (workload, signer) = key;
        let Some(base) = baseline_rows.get(key) else {
            failures.push(format!("baseline has no ({workload}, {signer}) row to gate against"));
            continue;
        };
        println!(
            "[obs/{workload}/{signer}] qps disabled {:.1} (baseline {:.1}), enabled {:.1} \
             ({:.2}× when tracing)",
            now.qps_disabled,
            base.engine_qps,
            now.qps_enabled,
            now.qps_disabled / now.qps_enabled.max(1e-9)
        );
        if now.qps_disabled < base.engine_qps * 0.95 {
            failures.push(format!(
                "({workload}, {signer}) disabled-tracing qps {:.1} regressed >5% vs baseline \
                 {:.1} — the instrumentation is no longer free when off",
                now.qps_disabled, base.engine_qps
            ));
        }
        if now.qps_enabled * 2.0 < now.qps_disabled {
            failures.push(format!(
                "({workload}, {signer}) enabled-tracing qps {:.1} fell below half the disabled \
                 figure {:.1}",
                now.qps_enabled, now.qps_disabled
            ));
        }
    }
    if failures.is_empty() {
        println!(
            "bench-trend OK: {} overhead row(s) within budget of {}",
            current_rows.len(),
            baseline.display()
        );
        return ExitCode::SUCCESS;
    }
    for f in &failures {
        eprintln!("bench-trend FAIL: {f}");
    }
    eprintln!(
        "bench-trend: {} tracing-overhead regression(s) vs {} — if intentional, refresh the \
         baseline from the fresh query_throughput report",
        failures.len(),
        baseline.display()
    );
    ExitCode::FAILURE
}

/// Gate the fault-injection overhead report: with the `gas_chaos`
/// switch off (the production default) throughput must stay within 5%
/// of the committed baseline — carrying the injection machinery must be
/// free — and with an inert plan armed it must stay within 2× of
/// disabled.
fn chaos_gate(current: &PathBuf, baseline: &PathBuf) -> ExitCode {
    let (current_rows, baseline_rows) = match (obs_rows(current), trend_rows(baseline)) {
        (Ok(c), Ok(b)) => (c, b),
        (c, b) => {
            for err in [c.err(), b.err()].into_iter().flatten() {
                eprintln!("bench-trend: {err}");
            }
            return ExitCode::FAILURE;
        }
    };
    if current_rows.is_empty() {
        eprintln!("bench-trend: injection-overhead report {} holds no rows", current.display());
        return ExitCode::FAILURE;
    }
    let mut failures = Vec::new();
    for (key, now) in &current_rows {
        let (workload, signer) = key;
        let Some(base) = baseline_rows.get(key) else {
            failures.push(format!("baseline has no ({workload}, {signer}) row to gate against"));
            continue;
        };
        println!(
            "[chaos/{workload}/{signer}] qps disabled {:.1} (baseline {:.1}), enabled {:.1} \
             ({:.2}× when armed)",
            now.qps_disabled,
            base.engine_qps,
            now.qps_enabled,
            now.qps_disabled / now.qps_enabled.max(1e-9)
        );
        if now.qps_disabled < base.engine_qps * 0.95 {
            failures.push(format!(
                "({workload}, {signer}) injection-disabled qps {:.1} regressed >5% vs baseline \
                 {:.1} — carrying gas_chaos is no longer free when off",
                now.qps_disabled, base.engine_qps
            ));
        }
        if now.qps_enabled * 2.0 < now.qps_disabled {
            failures.push(format!(
                "({workload}, {signer}) armed-injection qps {:.1} fell below half the disabled \
                 figure {:.1}",
                now.qps_enabled, now.qps_disabled
            ));
        }
    }
    if failures.is_empty() {
        println!(
            "bench-trend OK: {} injection-overhead row(s) within budget of {}",
            current_rows.len(),
            baseline.display()
        );
        return ExitCode::SUCCESS;
    }
    for f in &failures {
        eprintln!("bench-trend FAIL: {f}");
    }
    eprintln!(
        "bench-trend: {} injection-overhead regression(s) vs {} — if intentional, refresh the \
         baseline from the fresh query_throughput report",
        failures.len(),
        baseline.display()
    );
    ExitCode::FAILURE
}

/// The figures of one placement-sweep report row.
#[derive(Debug, Clone, PartialEq)]
struct PlanRow {
    value: f64,
    ok: f64,
}

/// Index a placement-sweep report's rows by `(kind, name)`.
fn plan_rows(path: &PathBuf) -> Result<BTreeMap<(String, String), PlanRow>, String> {
    let rows = read_json_rows(path).map_err(|e| e.to_string())?;
    let mut out = BTreeMap::new();
    for (i, row) in rows.iter().enumerate() {
        let field = |name: &str| -> Result<String, String> {
            row.iter()
                .find(|(h, _)| h == name)
                .map(|(_, v)| v.clone())
                .ok_or_else(|| format!("{}: row {i} has no \"{name}\" column", path.display()))
        };
        let number = |name: &str| -> Result<f64, String> {
            let raw = field(name)?;
            raw.parse::<f64>().map_err(|_| {
                format!("{}: row {i} column \"{name}\" is not numeric: {raw:?}", path.display())
            })
        };
        let key = (field("kind")?, field("name")?);
        let figures = PlanRow { value: number("value")?, ok: number("ok")? };
        if out.insert(key.clone(), figures).is_some() {
            return Err(format!("{}: duplicate row for {key:?}", path.display()));
        }
    }
    Ok(out)
}

/// Gate the placement & autotuning sweep: every baseline row still
/// present, every current row's own acceptance flag green, and the
/// planned placement's wire total within 2× of the committed baseline.
fn plan_gate(current: &PathBuf, baseline: &PathBuf) -> ExitCode {
    let (current_rows, baseline_rows) = match (plan_rows(current), plan_rows(baseline)) {
        (Ok(c), Ok(b)) => (c, b),
        (c, b) => {
            for err in [c.err(), b.err()].into_iter().flatten() {
                eprintln!("bench-trend: {err}");
            }
            return ExitCode::FAILURE;
        }
    };
    if baseline_rows.is_empty() {
        eprintln!("bench-trend: baseline {} holds no rows", baseline.display());
        return ExitCode::FAILURE;
    }
    let mut failures = Vec::new();
    for (key, base) in &baseline_rows {
        let (kind, name) = key;
        if !current_rows.contains_key(key) {
            failures.push(format!("row ({kind}, {name}) vanished from the current report"));
        } else if *name == "planned_total_bytes" {
            let now = &current_rows[key];
            println!("[plan/{kind}] {name} {:.0} (baseline {:.0})", now.value, base.value);
            if now.value > base.value * 2.0 {
                failures.push(format!(
                    "({kind}, {name}) regressed >2×: {:.0} vs baseline {:.0}",
                    now.value, base.value
                ));
            }
        }
    }
    for ((kind, name), now) in &current_rows {
        println!("[plan/{kind}] {name} = {} (ok {:.0})", now.value, now.ok);
        if now.ok != 1.0 {
            failures.push(format!(
                "({kind}, {name}) failed its own acceptance check (value {})",
                now.value
            ));
        }
    }
    if failures.is_empty() {
        println!(
            "bench-trend OK: {} placement/autotune row(s) green vs {}",
            current_rows.len(),
            baseline.display()
        );
        return ExitCode::SUCCESS;
    }
    for f in &failures {
        eprintln!("bench-trend FAIL: {f}");
    }
    eprintln!(
        "bench-trend: {} placement/autotune failure(s) vs {} — if intentional, refresh the \
         baseline from {}",
        failures.len(),
        baseline.display(),
        current.display()
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1).peekable();
    if args.peek().map(String::as_str) == Some("--plan") {
        args.next();
        let current =
            PathBuf::from(args.next().unwrap_or_else(|| "results/placement_sweep.json".into()));
        let baseline = PathBuf::from(
            args.next().unwrap_or_else(|| "bench/baselines/placement_sweep.tiny.json".into()),
        );
        return plan_gate(&current, &baseline);
    }
    if args.peek().map(String::as_str) == Some("--chaos") {
        args.next();
        let current =
            PathBuf::from(args.next().unwrap_or_else(|| "results/chaos_overhead.json".into()));
        let baseline = PathBuf::from(
            args.next().unwrap_or_else(|| "bench/baselines/query_throughput.tiny.json".into()),
        );
        return chaos_gate(&current, &baseline);
    }
    if args.peek().map(String::as_str) == Some("--obs") {
        args.next();
        let current =
            PathBuf::from(args.next().unwrap_or_else(|| "results/obs_overhead.json".into()));
        let baseline = PathBuf::from(
            args.next().unwrap_or_else(|| "bench/baselines/query_throughput.tiny.json".into()),
        );
        return obs_gate(&current, &baseline);
    }
    if args.peek().map(String::as_str) == Some("--serve") {
        args.next();
        let current =
            PathBuf::from(args.next().unwrap_or_else(|| "results/serve_stats.json".into()));
        let baseline = PathBuf::from(
            args.next().unwrap_or_else(|| "bench/baselines/serve_stats.tiny.json".into()),
        );
        return serve_gate(&current, &baseline);
    }
    let current =
        PathBuf::from(args.next().unwrap_or_else(|| "results/query_throughput.json".into()));
    let baseline = PathBuf::from(
        args.next().unwrap_or_else(|| "bench/baselines/query_throughput.tiny.json".into()),
    );

    let (current_rows, baseline_rows) = match (trend_rows(&current), trend_rows(&baseline)) {
        (Ok(c), Ok(b)) => (c, b),
        (c, b) => {
            for err in [c.err(), b.err()].into_iter().flatten() {
                eprintln!("bench-trend: {err}");
            }
            return ExitCode::FAILURE;
        }
    };
    if baseline_rows.is_empty() {
        eprintln!("bench-trend: baseline {} holds no rows", baseline.display());
        return ExitCode::FAILURE;
    }

    // Every baseline row must still exist and hold its figures. Extra
    // current rows (a new workload or signer) are fine — they become
    // gated once the baseline is refreshed.
    let mut failures = Vec::new();
    for ((workload, signer), base) in &baseline_rows {
        let Some(now) = current_rows.get(&(workload.clone(), signer.clone())) else {
            failures.push(format!("row ({workload}, {signer}) vanished from the current report"));
            continue;
        };
        println!(
            "[{workload}/{signer}] qps {:.1} (baseline {:.1}), wire bytes {:.0} \
             (baseline {:.0}), collectives {:.0} (baseline {:.0})",
            now.engine_qps,
            base.engine_qps,
            now.wire_bytes_p4,
            base.wire_bytes_p4,
            now.collectives_p4,
            base.collectives_p4
        );
        if now.engine_qps * 2.0 < base.engine_qps {
            failures.push(format!(
                "({workload}, {signer}) engine_qps regressed >2×: {:.1} vs baseline {:.1}",
                now.engine_qps, base.engine_qps
            ));
        }
        if now.wire_bytes_p4 > base.wire_bytes_p4 * 2.0 {
            failures.push(format!(
                "({workload}, {signer}) wire_bytes_p4 regressed >2×: {:.0} vs baseline {:.0}",
                now.wire_bytes_p4, base.wire_bytes_p4
            ));
        }
        if now.collectives_p4 > base.collectives_p4 {
            failures.push(format!(
                "({workload}, {signer}) collectives_p4 exceeded the budget: {:.0} vs \
                 baseline {:.0}",
                now.collectives_p4, base.collectives_p4
            ));
        }
    }

    if failures.is_empty() {
        println!(
            "bench-trend OK: {} row(s) within budget of {}",
            baseline_rows.len(),
            baseline.display()
        );
        return ExitCode::SUCCESS;
    }
    for f in &failures {
        eprintln!("bench-trend FAIL: {f}");
    }
    eprintln!(
        "bench-trend: {} regression(s) vs {} — if intentional, refresh the baseline from {}",
        failures.len(),
        baseline.display(),
        current.display()
    );
    ExitCode::FAILURE
}
