//! Figure 2f — synthetic dataset, weak scaling.
//!
//! Paper protocol: both the matrix and the batch size grow with the core
//! count — (50k k-mers, 500 samples) on one core up to (3.2M k-mers, 32k
//! samples) on 4096 cores, density 0.01. Work per processor grows 64×
//! over the sweep while the measured time grows only 35.3×, i.e. a 1.81×
//! parallel-efficiency gain, because larger batches run at a higher rate.
//!
//! The reproduction scales the series down and reports, per point, the
//! problem size, total time, work per rank, and the efficiency indicator
//! `(work/rank) / time` normalized to the first point.

use gas_bench::report::{format_seconds, Table};
use gas_bench::scaling::default_sim_rank_cap;
use gas_bench::workloads::{scale_factor, synthetic_collection};
use gas_core::algorithm::similarity_at_scale_distributed;
use gas_core::config::SimilarityConfig;
use gas_dstsim::machine::Machine;

fn main() {
    let machine = Machine::stampede2_knl();
    let cap = default_sim_rank_cap();
    let scale = scale_factor();
    // (paper cores, paper #k-mers, paper #samples) from Figure 2f.
    let series = [
        (1usize, 50_000usize, 500usize),
        (4, 100_000, 1_000),
        (16, 200_000, 2_000),
        (64, 400_000, 4_000),
        (256, 800_000, 8_000),
        (1_024, 1_600_000, 16_000),
        (4_096, 3_200_000, 32_000),
    ];
    // Scale the problem down by a constant factor so the largest point
    // stays laptop-sized; the *relative* growth (64x work per core over
    // the sweep) is preserved.
    let shrink = 0.02 * scale;

    let mut table = Table::new(
        "Figure 2f: synthetic weak scaling (p = 0.01)",
        &["cores", "kmers", "samples", "sim_ranks", "total_time", "work_per_rank", "rate_vs_first"],
    );
    let mut first_rate = None;
    let mut first_time = None;
    let mut last = None;
    for &(cores, kmers, samples) in &series {
        let m = ((kmers as f64) * shrink).max(512.0) as usize;
        let n = ((samples as f64) * shrink).max(4.0) as usize;
        let collection = synthetic_collection(m, n, 0.01, 90 + cores as u64);
        let nodes = cores.div_ceil(32).max(1);
        let sim_ranks = cap.min(nodes);
        let summary = similarity_at_scale_distributed(
            &collection,
            &SimilarityConfig::with_batches(1),
            sim_ranks,
            &machine,
        )
        .expect("simulated run succeeds");
        let total = summary.measured_seconds.max(1e-9);
        let work_per_rank = summary.aggregate.total_flops as f64 / sim_ranks as f64;
        let rate = work_per_rank / total;
        let rel = match first_rate {
            None => {
                first_rate = Some(rate);
                first_time = Some(total);
                1.0
            }
            Some(f) => rate / f,
        };
        last = Some((work_per_rank, total));
        table.push_row(vec![
            cores.to_string(),
            m.to_string(),
            n.to_string(),
            sim_ranks.to_string(),
            format_seconds(total),
            format!("{work_per_rank:.3e}"),
            format!("{rel:.2}x"),
        ]);
    }
    table.print();
    let path = table
        .write_csv(gas_bench::report::results_dir(), "fig2f_synthetic_weak")
        .expect("write CSV");
    println!("CSV written to {}", path.display());

    if let (Some(first_t), Some((_, last_t))) = (first_time, last) {
        println!(
            "\nTime grows {:.1}x across the sweep while per-rank work grows much faster \
             (paper: work/proc +64x, time +35.3x => 1.81x efficiency gain).",
            last_t / first_t.max(1e-12)
        );
    }
}
