//! Figure 3 — impact of data sparsity on performance.
//!
//! Paper protocol: synthetic matrices with `n = 10k`, `m = 32M`, 16 nodes,
//! 4 batches; the Bernoulli density `p` sweeps 1e-4 → 1e-2 and the total
//! runtime scales nearly linearly with the amount of data (0.5 s per batch
//! at the sparsest point up to 85.4 s at the densest).
//!
//! The reproduction scales the matrix down and sweeps the same densities,
//! reporting nonzeros, time per batch and total time; the shape to check
//! is the near-proportionality of time to nnz.

use gas_bench::report::{format_seconds, Table};
use gas_bench::scaling::default_sim_rank_cap;
use gas_bench::workloads::{scale_factor, synthetic_collection};
use gas_core::algorithm::similarity_at_scale_distributed;
use gas_core::config::SimilarityConfig;
use gas_dstsim::machine::Machine;

fn main() {
    let machine = Machine::stampede2_knl();
    let nodes = 16usize;
    let sim_ranks = default_sim_rank_cap().min(nodes);
    let batches = 4usize;
    let m = (320_000.0 * scale_factor()) as usize;
    let n = (100.0 * scale_factor()) as usize;
    println!(
        "Sparsity sweep (paper: n = 10k, m = 32M, 16 nodes, 4 batches; scaled to m = {m}, n = {n}, {sim_ranks} simulated ranks)"
    );

    let mut table = Table::new(
        "Figure 3: impact of data sparsity",
        &["density", "nnz", "s_per_batch", "total_time", "time_per_nnz_ns"],
    );
    let densities = [1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2];
    let mut series = Vec::new();
    for &p in &densities {
        let collection = synthetic_collection(m, n, p, 33);
        let summary = similarity_at_scale_distributed(
            &collection,
            &SimilarityConfig::with_batches(batches),
            sim_ranks,
            &machine,
        )
        .expect("simulated run succeeds");
        let per_batch = summary.mean_batch_seconds();
        let total = summary.measured_seconds;
        let nnz = collection.nnz();
        series.push((p, nnz, total));
        table.push_row(vec![
            format!("{p:.0e}"),
            nnz.to_string(),
            format!("{per_batch:.4}"),
            format_seconds(total),
            format!("{:.1}", total * 1e9 / nnz.max(1) as f64),
        ]);
    }
    table.print();
    let path =
        table.write_csv(gas_bench::report::results_dir(), "fig3_sparsity").expect("write CSV");
    println!("CSV written to {}", path.display());

    let (first, last) = (series.first().unwrap(), series.last().unwrap());
    println!(
        "\nDensity grew {:.0}x (nnz {:.0}x) and total time grew {:.1}x \
         (paper: near-ideal scaling of runtime with the amount of data).",
        last.0 / first.0,
        last.1 as f64 / first.1.max(1) as f64,
        last.2 / first.2.max(1e-12)
    );
}
