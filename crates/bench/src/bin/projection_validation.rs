//! Section V-B — validation of the projected execution times.
//!
//! The paper validates its projection methodology ("time per batch ×
//! number of batches") by fully processing the Kingsford dataset on 128
//! nodes with 64 batches: the measured total is 0.38 h against a
//! projection of 0.42 h (≈10% optimistic). This experiment repeats that
//! validation on the scaled workload: the projection is formed from the
//! first few batches only (as the paper does, excluding startup batches),
//! then compared with the measured total of a full run.

use gas_bench::report::{format_seconds, Table};
use gas_bench::scaling::default_sim_rank_cap;
use gas_bench::workloads::kingsford_collection;
use gas_core::algorithm::similarity_at_scale_with_stats;
use gas_core::config::SimilarityConfig;

fn main() {
    let collection = kingsford_collection(0.05);
    let batches = 64usize;
    println!(
        "Kingsford-like workload: n = {}, nnz = {}; {} batches, shared-memory driver ({} simulated-node equivalent)\n",
        collection.n(),
        collection.nnz(),
        batches,
        default_sim_rank_cap()
    );
    let summary =
        similarity_at_scale_with_stats(&collection, &SimilarityConfig::with_batches(batches))
            .expect("run succeeds");

    // Projection from a prefix of the batches, skipping the first few
    // (startup effects), exactly like the paper's averaging protocol.
    let skip = 3usize.min(summary.batches.len().saturating_sub(1));
    let sample_count = 8usize.min(summary.batches.len() - skip).max(1);
    let sampled: Vec<f64> =
        summary.batches.iter().skip(skip).take(sample_count).map(|b| b.seconds).collect();
    let mean_batch = sampled.iter().sum::<f64>() / sampled.len() as f64;
    let projected = mean_batch * summary.batches.len() as f64;
    let measured = summary.total_seconds;

    let mut table = Table::new(
        "Projection validation (paper: measured 0.38 h vs projected 0.42 h)",
        &["quantity", "value"],
    );
    table.push_row(vec!["batches".into(), summary.batches.len().to_string()]);
    table.push_row(vec![
        format!("mean time/batch over {} sampled batches", sampled.len()),
        format!("{mean_batch:.4} s"),
    ]);
    table.push_row(vec!["projected total".into(), format_seconds(projected)]);
    table.push_row(vec!["measured total".into(), format_seconds(measured)]);
    table.push_row(vec![
        "projection error".into(),
        format!("{:+.1}%", 100.0 * (projected - measured) / measured.max(1e-12)),
    ]);
    table.print();
    table.write_csv(gas_bench::report::results_dir(), "projection_validation").expect("write CSV");
    println!(
        "\nExpected shape: the projection lands within a few tens of percent of the measured total, \
         as in the paper's 0.42 h vs 0.38 h check."
    );
}
