//! Section V-D — impact of the fast on-package memory (MCDRAM).
//!
//! Paper finding: configuring MCDRAM as an L3 cache instead of flat
//! memory changes per-batch times only negligibly — e.g. the Kingsford
//! batch time on 4 nodes is 9.26 s with the cache vs 9.33 s without, and
//! 7.69 s vs 8.01 s on 32 nodes — because the kernels are bound by
//! irregular accesses, not by streaming bandwidth alone.
//!
//! The reproduction models the two configurations as different effective
//! streaming bandwidths in the machine model and reports the measured
//! (identical arithmetic) and modeled per-batch times for both.

use gas_bench::report::Table;
use gas_bench::scaling::default_sim_rank_cap;
use gas_bench::workloads::kingsford_collection;
use gas_core::algorithm::similarity_at_scale_distributed;
use gas_core::config::SimilarityConfig;
use gas_dstsim::machine::Machine;

fn main() {
    let collection = kingsford_collection(0.05);
    let batches = 8usize;
    let mut table = Table::new(
        "Section V-D: MCDRAM as cache vs flat memory (Kingsford-like workload)",
        &["nodes", "mcdram", "s_per_batch_meas", "s_per_batch_model", "model_penalty"],
    );

    for &nodes in &[4usize, 32] {
        let sim_ranks = default_sim_rank_cap().min(nodes);
        let mut modeled = Vec::new();
        for cached in [true, false] {
            let machine = Machine::stampede2_knl().with_mcdram_cache(cached);
            let summary = similarity_at_scale_distributed(
                &collection,
                &SimilarityConfig::with_batches(batches),
                sim_ranks,
                &machine,
            )
            .expect("simulated run succeeds");
            let model = machine.cost_model().unwrap();
            let projected = summary.projected_time(&model) / batches as f64;
            modeled.push(projected);
            table.push_row(vec![
                nodes.to_string(),
                if cached { "as L3 cache".into() } else { "flat / DDR only".to_string() },
                format!("{:.4}", summary.mean_batch_seconds()),
                format!("{projected:.4}"),
                if cached {
                    "-".into()
                } else {
                    format!("+{:.1}%", 100.0 * (modeled[1] / modeled[0] - 1.0))
                },
            ]);
        }
    }
    table.print();
    let path =
        table.write_csv(gas_bench::report::results_dir(), "mcdram_study").expect("write CSV");
    println!("CSV written to {}", path.display());
    println!(
        "\nPaper: 9.26s vs 9.33s (4 nodes) and 7.69s vs 8.01s (32 nodes) — a few percent. \
         The model shows the same negligible penalty because the kernels are latency/compute bound."
    );
}
