//! MinHash accuracy study (the paper's motivating claim).
//!
//! Section I argues that MinHash "often lead[s] to inaccurate
//! approximations of d_J for highly similar pairs of sequence sets, and
//! tend[s] to be ineffective ... for highly dissimilar sets unless very
//! large sketch sizes are used". This experiment quantifies that: genome
//! pairs are generated at controlled divergences, their exact Jaccard is
//! computed with SimilarityAtScale's machinery, and the MinHash estimate
//! error is reported across sketch sizes.

use gas_bench::report::Table;
use gas_core::minhash::MinHasher;
use gas_genomics::kmer::KmerExtractor;
use gas_genomics::sample::KmerSample;
use gas_genomics::synth::{genome_family, mutate};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let k = 21usize;
    let extractor = KmerExtractor::new(k).unwrap();
    let genome_len = 200_000usize;
    // Pair divergences: nearly identical, moderately related, distant.
    let divergences = [0.0005f64, 0.005, 0.02, 0.10, 0.25];
    let sketch_sizes = [64usize, 256, 1024, 8192];

    let mut table = Table::new(
        "MinHash estimate error vs exact Jaccard (k = 21)",
        &["divergence", "exact_jaccard", "s=64", "s=256", "s=1024", "s=8192"],
    );
    let family = genome_family(genome_len, &[], 7).unwrap();
    let ancestor = &family[0];
    let mut rng = StdRng::seed_from_u64(99);
    for &d in &divergences {
        let derived = mutate(ancestor, d, &mut rng);
        let a = KmerSample::from_sequence("a", ancestor, &extractor);
        let b = KmerSample::from_sequence("b", &derived, &extractor);
        let exact = a.jaccard(&b);
        let mut row = vec![format!("{d}"), format!("{exact:.4}")];
        for &s in &sketch_sizes {
            let hasher = MinHasher::new(s).unwrap();
            let est = hasher.sketch(a.kmers()).jaccard_estimate(&hasher.sketch(b.kmers()));
            row.push(format!("{:+.4}", est - exact));
        }
        table.push_row(row);
    }
    table.print();
    let path =
        table.write_csv(gas_bench::report::results_dir(), "minhash_accuracy").expect("write CSV");
    println!("CSV written to {}", path.display());
    println!(
        "\nExpected shape: errors shrink with sketch size, but small sketches misjudge both \
         near-identical pairs (quantization towards 1) and distant pairs (few shared minima) — \
         the paper's motivation for exact distributed Jaccard."
    );
}
