//! Query-serving throughput and recall of the `gas-index` sketch index.
//!
//! The ROADMAP's north star is a system that *serves* similarity queries,
//! so this experiment measures the serving stack end to end on a
//! synthetic family-structured workload:
//!
//! * **build** — seconds to sign the collection and fill the LSH buckets;
//! * **persist** — container round-trip (write + read back + identity
//!   check), reporting the file size;
//! * **scan_qps** — the brute-force exact top-k baseline (merge-join over
//!   every sample), i.e. what serving costs *without* an index;
//! * **engine_qps** — the batched LSH engine with exact popcount re-rank;
//! * **recall@10** — engine answers vs. exact top-k, estimate-only and
//!   re-ranked (the re-ranked figure must stay ≥ 0.9);
//! * **dist_ranks_ok** — the sharded distributed path must answer
//!   bit-identically to the single-rank engine for 4, 6 and 8 ranks.
//!
//! Writes `results/query_throughput.{csv,json}` (CI uploads the JSON).
//! Set `GAS_QUERY_TINY=1` for the seconds-scale CI smoke configuration.

use std::time::Instant;

use gas_bench::report::{format_seconds, Table};
use gas_core::indicator::SampleCollection;
use gas_dstsim::runtime::Runtime;
use gas_index::{
    dist_query_batch, exact_top_k, IndexConfig, QueryEngine, QueryOptions, SketchIndex,
};
use rand::{Rng, SeedableRng, StdRng};

const TOP_K: usize = 10;
const DIST_RANKS: [usize; 3] = [4, 6, 8];

fn tiny() -> bool {
    std::env::var("GAS_QUERY_TINY").is_ok_and(|v| v == "1")
}

struct Workload {
    name: &'static str,
    families: usize,
    per_family: usize,
    core_size: usize,
    private_size: usize,
    queries: usize,
    signature_len: usize,
}

impl Workload {
    fn default_scale() -> Self {
        Workload {
            name: "default",
            families: 12,
            per_family: 16,
            core_size: 900,
            private_size: 120,
            queries: 48,
            signature_len: 256,
        }
    }

    // Families hold more than TOP_K members so recall@10 is well defined:
    // every entry of the exact top-10 is a genuine (above-threshold)
    // neighbor the LSH stage is supposed to surface.
    fn tiny_scale() -> Self {
        Workload {
            name: "tiny",
            families: 6,
            per_family: 12,
            core_size: 240,
            private_size: 40,
            queries: 12,
            signature_len: 128,
        }
    }

    fn n(&self) -> usize {
        self.families * self.per_family
    }

    /// Family-structured samples: members of a family share a large core
    /// set, so each sample has clear nearest neighbors, plus enough
    /// private values that the ranking inside a family is non-trivial.
    fn collection(&self, seed: u64) -> SampleCollection {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut samples = Vec::with_capacity(self.n());
        for _ in 0..self.families {
            let core: Vec<u64> = (0..self.core_size).map(|_| rng.random::<u64>()).collect();
            for _ in 0..self.per_family {
                let mut s = core.clone();
                for _ in 0..self.private_size {
                    s.push(rng.random::<u64>());
                }
                samples.push(s);
            }
        }
        SampleCollection::from_sets(samples).expect("synthetic samples are valid")
    }

    /// Queries are perturbed copies of random samples: keep ~90% of the
    /// elements, add ~5% noise. The perturbation source is its own RNG so
    /// workload and query streams stay independently reproducible.
    fn queries(&self, collection: &SampleCollection, seed: u64) -> Vec<Vec<u64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..self.queries)
            .map(|_| {
                let id = rng.random_range(0..collection.n());
                let mut q: Vec<u64> = collection
                    .sample(id)
                    .iter()
                    .copied()
                    .filter(|_| rng.random_bool(0.9))
                    .collect();
                for _ in 0..self.core_size / 20 {
                    q.push(rng.random::<u64>());
                }
                q.sort_unstable();
                q.dedup();
                q
            })
            .collect()
    }
}

fn recall(got: &[Vec<gas_index::Neighbor>], want: &[Vec<gas_index::Neighbor>]) -> f64 {
    let mut hit = 0usize;
    let mut total = 0usize;
    for (g, w) in got.iter().zip(want) {
        total += w.len();
        for n in w {
            if g.iter().any(|m| m.id == n.id) {
                hit += 1;
            }
        }
    }
    if total == 0 {
        return 1.0;
    }
    hit as f64 / total as f64
}

fn main() {
    let workload = if tiny() { Workload::tiny_scale() } else { Workload::default_scale() };
    let collection = workload.collection(42);
    let queries = workload.queries(&collection, 1337);
    println!(
        "workload '{}': {} samples ({} families), {} queries, signature length {}",
        workload.name,
        collection.n(),
        workload.families,
        queries.len(),
        workload.signature_len
    );

    // Build.
    let config =
        IndexConfig::default().with_signature_len(workload.signature_len).with_threshold(0.4);
    let t = Instant::now();
    let index = SketchIndex::build(&collection, &config).expect("build succeeds");
    let build_s = t.elapsed().as_secs_f64();
    println!(
        "built index in {}: {} bands × {} rows (threshold {:.3})",
        format_seconds(build_s),
        index.params().bands(),
        index.params().rows(),
        index.params().threshold()
    );

    // Persist: container round-trip must reproduce the index exactly.
    let t = Instant::now();
    let bytes = index.to_container_bytes();
    let container_len = bytes.len();
    let reread = SketchIndex::from_container_bytes(bytes).expect("container parses");
    assert_eq!(reread, index, "container round-trip must be lossless");
    let persist_s = t.elapsed().as_secs_f64();
    println!("container round-trip: {} bytes in {}", container_len, format_seconds(persist_s));

    // Exact linear-scan baseline (also the recall ground truth).
    let t = Instant::now();
    let exact: Vec<Vec<gas_index::Neighbor>> =
        queries.iter().map(|q| exact_top_k(&collection, q, TOP_K)).collect();
    let scan_s = t.elapsed().as_secs_f64();
    let scan_qps = queries.len() as f64 / scan_s.max(1e-9);

    // Engine, estimate-only.
    let engine = QueryEngine::with_collection(&index, &collection);
    let est_opts = QueryOptions { top_k: TOP_K, ..Default::default() };
    let est_answers = engine.query_batch(&queries, &est_opts).expect("estimate query batch");
    let est_recall = recall(&est_answers, &exact);

    // Engine, exact popcount re-rank (the serving default).
    let rerank_opts = QueryOptions { top_k: TOP_K, rerank_exact: true, ..Default::default() };
    let t = Instant::now();
    let answers = engine.query_batch(&queries, &rerank_opts).expect("reranked query batch");
    let engine_s = t.elapsed().as_secs_f64();
    let engine_qps = queries.len() as f64 / engine_s.max(1e-9);
    let rr_recall = recall(&answers, &exact);

    // Distributed serving: sharded answers must match the single-rank
    // engine exactly for every CI grid size.
    let mut dist_ok = true;
    for ranks in DIST_RANKS {
        let out = Runtime::new(ranks)
            .run(|ctx| {
                let q = if ctx.rank() == 0 { Some(&queries[..]) } else { None };
                ctx.expect_ok(
                    "dist_query_batch",
                    dist_query_batch(ctx.world(), &index, Some(&collection), q, &rerank_opts),
                )
            })
            .expect("distributed query run");
        for (rank, result) in out.results.iter().enumerate() {
            assert_eq!(
                result, &answers,
                "rank {rank}/{ranks}: sharded answers diverge from the single-rank engine"
            );
        }
        println!(
            "dist {ranks} ranks: identical answers, {} bytes sent total",
            out.aggregate().total_bytes_sent
        );
        dist_ok &= out.results.iter().all(|r| r == &answers);
    }

    let mut table = Table::new(
        "Query serving: LSH sketch index vs exact linear scan",
        &[
            "workload",
            "n",
            "queries",
            "build_s",
            "container_bytes",
            "scan_qps",
            "engine_qps",
            "recall_estimate",
            "recall_reranked",
            "dist_ranks_ok",
        ],
    );
    table.push_row(vec![
        workload.name.to_string(),
        collection.n().to_string(),
        queries.len().to_string(),
        format!("{build_s:.4}"),
        container_len.to_string(),
        format!("{scan_qps:.1}"),
        format!("{engine_qps:.1}"),
        format!("{est_recall:.4}"),
        format!("{rr_recall:.4}"),
        if dist_ok { DIST_RANKS.map(|r| r.to_string()).join("+") } else { "FAIL".into() },
    ]);
    table.print();

    let dir = gas_bench::report::results_dir();
    let csv = table.write_csv(&dir, "query_throughput").expect("write CSV");
    let json = table.write_json(&dir, "query_throughput").expect("write JSON");
    println!("Reports written to {} and {}", csv.display(), json.display());

    assert!(
        rr_recall >= 0.9,
        "re-ranked recall@{TOP_K} {rr_recall:.4} fell below the 0.9 acceptance floor"
    );
    assert!(dist_ok, "distributed serving diverged from the single-rank engine");
    println!(
        "OK: recall@{TOP_K} {rr_recall:.3} (estimate-only {est_recall:.3}), engine {:.1} qps vs scan {:.1} qps",
        engine_qps, scan_qps
    );
}
