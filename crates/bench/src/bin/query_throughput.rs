//! Query-serving throughput and recall of the `gas-index` sketch index,
//! compared across the two signers (k-mins vs one-permutation hashing).
//!
//! The ROADMAP's north star is a system that *serves* similarity queries,
//! so this experiment measures the serving stack end to end on a
//! synthetic family-structured workload, once per [`SignerKind`]:
//!
//! * **sign** — seconds to sign the whole collection (the step OPH turns
//!   from `O(len·|set|)` into `O(|set| + len)` per sample; the headline
//!   of this comparison);
//! * **build** — seconds to sign the collection and fill the LSH buckets;
//! * **incr_add vs rebuild** — seconds to absorb a 10% delta batch
//!   through the `IndexWriter` lifecycle (signs and buckets only the
//!   delta) vs rebuilding the enlarged corpus from scratch; asserted
//!   ≥ 5× faster (≥ 2× on the tiny CI workload);
//! * **persist** — container round-trip (write + read back + identity
//!   check), reporting the file size;
//! * **scan_qps** — the brute-force exact top-k baseline (merge-join over
//!   every sample), i.e. what serving costs *without* an index;
//! * **engine_qps** — the batched LSH engine with exact popcount re-rank;
//! * **recall@10** — engine answers vs. exact top-k, estimate-only and
//!   re-ranked (the re-ranked figure must stay ≥ 0.9 for *both* signers);
//! * **sig_bytes_per_rank** — the signature bytes one rank stores under
//!   signature sharding at the smallest dist grid, vs. the replicated
//!   baseline (asserted ≤ 0.6× at p = 4), plus the transient working
//!   set: the full keyed-fetch delivery (`fetch_wire`) the kept rows
//!   were filtered from, the whole batch's wire total (`wire`), and the
//!   collectives it took (`collectives` — the budget the trend gate
//!   holds);
//! * **dist_ranks_ok** — the sharded distributed path must answer
//!   bit-identically to the single-rank engine for 4, 6 and 8 ranks.
//!
//! Asserts OPH signing throughput ≥ 5× k-mins at the default scale
//! (`len = 512`) — the `O(len·|set|) → O(|set| + len)` payoff — and a
//! relaxed ≥ 2× on the tiny CI workload where timings sit closer to
//! thread-spawn noise.
//!
//! A second experiment sweeps **segment counts** (1, 4 and 16 uncompacted
//! commits of the same corpus) and serves the same batch through the
//! keyed cross-segment exchange and through the retained per-segment
//! reference path: the keyed path must cost the *same* number of
//! collectives at every segment count (±0) while the reference grows as
//! `4 + 2·segments`, and both must answer bit-identically to the
//! single-rank reader. Written as `results/query_segment_sweep.{csv,json}`
//! and asserted after the report lands.
//!
//! Writes `results/query_throughput.{csv,json}` — one row per signer, the
//! comparative artifact CI uploads as the bench trajectory (and the
//! baseline `gas-bench` `bench_trend` diffs against). Set
//! `GAS_QUERY_TINY=1` for the seconds-scale CI smoke configuration.

use std::time::Instant;

use gas_bench::report::{format_seconds, Table};
use gas_core::indicator::SampleCollection;
use gas_core::minhash::SignatureScheme;
use gas_dstsim::runtime::Runtime;
use gas_index::{
    dist_query_batch_stats, dist_query_reader_batch_stats,
    dist_query_reader_batch_stats_per_segment, exact_top_k, ChaosStorage, DistQueryStats,
    FaultPlan, IndexConfig, IndexOptions, IndexService, QueryEngine, QueryOptions, SignerKind,
    SketchIndex, Storage,
};
use rand::{Rng, SeedableRng, StdRng};

const TOP_K: usize = 10;
const PIPELINE_BATCHES: usize = 8;
const DIST_RANKS: [usize; 3] = [4, 6, 8];
const SWEEP_SEGMENTS: [usize; 3] = [1, 4, 16];
const SWEEP_RANKS: usize = 4;

fn tiny() -> bool {
    std::env::var("GAS_QUERY_TINY").is_ok_and(|v| v == "1")
}

struct Workload {
    name: &'static str,
    families: usize,
    per_family: usize,
    core_size: usize,
    private_size: usize,
    queries: usize,
    signature_len: usize,
}

impl Workload {
    fn default_scale() -> Self {
        Workload {
            name: "default",
            families: 12,
            per_family: 16,
            core_size: 900,
            private_size: 120,
            queries: 48,
            signature_len: 512,
        }
    }

    // Families hold more than TOP_K members so recall@10 is well defined:
    // every entry of the exact top-10 is a genuine (above-threshold)
    // neighbor the LSH stage is supposed to surface.
    fn tiny_scale() -> Self {
        Workload {
            name: "tiny",
            families: 6,
            per_family: 12,
            core_size: 240,
            private_size: 40,
            queries: 12,
            signature_len: 128,
        }
    }

    fn n(&self) -> usize {
        self.families * self.per_family
    }

    /// Family-structured samples: members of a family share a large core
    /// set, so each sample has clear nearest neighbors, plus enough
    /// private values that the ranking inside a family is non-trivial.
    fn collection(&self, seed: u64) -> SampleCollection {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut samples = Vec::with_capacity(self.n());
        for _ in 0..self.families {
            let core: Vec<u64> = (0..self.core_size).map(|_| rng.random::<u64>()).collect();
            for _ in 0..self.per_family {
                let mut s = core.clone();
                for _ in 0..self.private_size {
                    s.push(rng.random::<u64>());
                }
                samples.push(s);
            }
        }
        SampleCollection::from_sets(samples).expect("synthetic samples are valid")
    }

    /// A delta batch of brand-new samples, 10% of the corpus size: the
    /// incremental-ingestion workload (one fresh family whose members
    /// share a core, like the base corpus).
    fn extra_samples(&self, seed: u64) -> Vec<Vec<u64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let count = (self.n() / 10).max(1);
        let core: Vec<u64> = (0..self.core_size).map(|_| rng.random::<u64>()).collect();
        (0..count)
            .map(|_| {
                let mut s = core.clone();
                for _ in 0..self.private_size {
                    s.push(rng.random::<u64>());
                }
                s
            })
            .collect()
    }

    /// Queries are perturbed copies of random samples: keep ~90% of the
    /// elements, add ~5% noise. The perturbation source is its own RNG so
    /// workload and query streams stay independently reproducible.
    fn queries(&self, collection: &SampleCollection, seed: u64) -> Vec<Vec<u64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..self.queries)
            .map(|_| {
                let id = rng.random_range(0..collection.n());
                let mut q: Vec<u64> = collection
                    .sample(id)
                    .iter()
                    .copied()
                    .filter(|_| rng.random_bool(0.9))
                    .collect();
                for _ in 0..self.core_size / 20 {
                    q.push(rng.random::<u64>());
                }
                q.sort_unstable();
                q.dedup();
                q
            })
            .collect()
    }
}

fn recall(got: &[Vec<gas_index::Neighbor>], want: &[Vec<gas_index::Neighbor>]) -> f64 {
    let mut hit = 0usize;
    let mut total = 0usize;
    for (g, w) in got.iter().zip(want) {
        total += w.len();
        for n in w {
            if g.iter().any(|m| m.id == n.id) {
                hit += 1;
            }
        }
    }
    if total == 0 {
        return 1.0;
    }
    hit as f64 / total as f64
}

/// Seconds per `sign_collection` call, averaged over enough repetitions
/// that the figure is not thread-spawn noise (at least ~0.2 s of work or
/// 256 reps, whichever comes first).
fn time_signing(scheme: &SignatureScheme, collection: &SampleCollection) -> f64 {
    let mut reps = 1usize;
    loop {
        let t = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(scheme.sign_collection(collection));
        }
        let elapsed = t.elapsed().as_secs_f64();
        if elapsed >= 0.2 || reps >= 256 {
            return elapsed / reps as f64;
        }
        reps *= 4;
    }
}

/// Repetition-averaged seconds per call of `f` (at least ~0.2 s of work
/// or the rep cap, whichever comes first, so figures are not
/// thread-spawn noise).
fn time_averaged<F: FnMut()>(mut f: F) -> f64 {
    let mut reps = 1usize;
    loop {
        let t = Instant::now();
        for _ in 0..reps {
            f();
        }
        let elapsed = t.elapsed().as_secs_f64();
        if elapsed >= 0.2 || reps >= 256 {
            return elapsed / reps as f64;
        }
        reps *= 4;
    }
}

/// Incremental ingestion vs full rebuild: seconds to absorb a 10% delta
/// batch through the `IndexWriter` lifecycle (`add` + `commit` signs
/// and buckets *only the delta*) vs seconds to rebuild the enlarged
/// corpus monolithically from scratch — the cost the segmented
/// lifecycle exists to avoid. Base writers are prepared outside the
/// timed region; returns `(incremental_s, rebuild_s)`.
fn time_incremental_vs_rebuild(
    config: &IndexConfig,
    collection: &SampleCollection,
    extra: &[Vec<u64>],
) -> (f64, f64) {
    let mut enlarged: Vec<Vec<u64>> =
        (0..collection.n()).map(|i| collection.sample(i).to_vec()).collect();
    enlarged.extend(extra.iter().cloned());
    let enlarged = SampleCollection::from_sets(enlarged).expect("valid enlarged corpus");
    let rebuild_s = time_averaged(|| {
        std::hint::black_box(
            IndexOptions::from_config(*config).build_index(&enlarged).expect("rebuild succeeds"),
        );
    });

    // Each rep gets a fresh base writer (prepared untimed, one at a
    // time) and only the delta `add` + `commit` is on the clock;
    // accumulating per-rep timings avoids rebuilding discarded writer
    // fleets on every escalation round.
    let mut reps = 0usize;
    let mut total = 0.0f64;
    while total < 0.2 && reps < 64 {
        let mut w = IndexOptions::from_config(*config).open_writer().expect("writer creates");
        w.commit_collection(collection).expect("base seals");
        let t = Instant::now();
        for (j, s) in extra.iter().enumerate() {
            w.add(format!("delta_{j}"), s.clone()).expect("delta stages");
        }
        std::hint::black_box(w.commit().expect("delta seals"));
        total += t.elapsed().as_secs_f64();
        reps += 1;
    }
    (total / reps as f64, rebuild_s)
}

/// Pipelined commits through the [`IndexService`] vs the serial
/// `commit()` loop: the same base corpus, then the same
/// [`PIPELINE_BATCHES`] delta batches — serially (each batch signs and
/// seals before the next starts) and through the service's commit
/// pipeline (signer pool + ordered sealer, so batches sign
/// concurrently while earlier ones seal). Both paths must produce
/// bit-identical answers; returns `(serial_s, pipelined_s)`.
fn time_pipelined_vs_serial(
    config: &IndexConfig,
    collection: &SampleCollection,
    batches: &[Vec<(String, Vec<u64>)>],
    probes: &[Vec<u64>],
) -> (f64, f64) {
    let mut writer = IndexOptions::from_config(*config).open_writer().expect("serial writer");
    writer.commit_collection(collection).expect("serial base seals");
    let t = Instant::now();
    for batch in batches {
        for (name, values) in batch {
            writer.add(name.clone(), values.clone()).expect("serial add");
        }
        writer.commit().expect("serial commit seals");
    }
    let serial_s = t.elapsed().as_secs_f64();

    let service = IndexOptions::from_config(*config)
        .with_auto_compact(false)
        .serve()
        .expect("service starts");
    service
        .add_batch(
            (0..collection.n())
                .map(|i| (format!("base_{i}"), collection.sample(i).to_vec()))
                .collect(),
        )
        .expect("service base stages");
    service.commit_wait().expect("service base seals");
    let t = Instant::now();
    let tickets: Vec<_> = batches
        .iter()
        .map(|batch| {
            service.add_batch(batch.clone()).expect("service add");
            service.commit().expect("service commit admits")
        })
        .collect();
    for ticket in tickets {
        ticket.wait().expect("pipelined commit seals");
    }
    let pipelined_s = t.elapsed().as_secs_f64();

    // The pipeline reorders nothing observable: the sealed index answers
    // bit-identically to the serial writer's.
    let opts = QueryOptions { top_k: TOP_K, ..Default::default() };
    let serial_answers =
        QueryEngine::snapshot(writer.reader()).query_batch(probes, &opts).expect("serial probes");
    let service_answers = QueryEngine::snapshot(service.snapshot())
        .query_batch(probes, &opts)
        .expect("service probes");
    assert_eq!(
        serial_answers, service_answers,
        "pipelined commits must answer bit-identically to serial commits"
    );
    (serial_s, pipelined_s)
}

/// Everything one signer's serving pipeline produced, ready for a report
/// row and the cross-signer assertions.
struct SignerRun {
    signer: SignerKind,
    sign_s: f64,
    build_s: f64,
    incr_add_s: f64,
    rebuild_s: f64,
    serial_commit_s: f64,
    pipelined_commit_s: f64,
    container_len: usize,
    engine_qps: f64,
    est_recall: f64,
    rr_recall: f64,
    stats_p4: DistQueryStats,
    dist_ok: bool,
}

fn run_signer(
    signer: SignerKind,
    workload: &Workload,
    collection: &SampleCollection,
    queries: &[Vec<u64>],
    exact: &[Vec<gas_index::Neighbor>],
) -> SignerRun {
    // Build.
    let config = IndexConfig::default()
        .with_signature_len(workload.signature_len)
        .with_threshold(0.4)
        .with_signer(signer);
    let t = Instant::now();
    let index = IndexOptions::from_config(config).build_index(collection).expect("build succeeds");
    let build_s = t.elapsed().as_secs_f64();
    println!(
        "[{signer}] built index in {}: {} bands × {} rows (threshold {:.3})",
        format_seconds(build_s),
        index.params().bands(),
        index.params().rows(),
        index.params().threshold()
    );

    // Sign: the step this scheme choice turns from O(len·|set|) into
    // O(|set| + len) per sample. Timed with the index's *own* scheme so
    // the headline speedup measures exactly what build/serving used.
    let sign_s = time_signing(index.scheme(), collection);
    println!(
        "[{signer}] signed {} samples in {} ({:.0} signatures/s)",
        collection.n(),
        format_seconds(sign_s),
        collection.n() as f64 / sign_s.max(1e-12)
    );

    // Incremental ingestion: absorbing a 10% delta through the writer
    // lifecycle vs rebuilding the enlarged corpus from scratch.
    let extra = workload.extra_samples(4242);
    let (incr_add_s, rebuild_s) = time_incremental_vs_rebuild(&config, collection, &extra);
    println!(
        "[{signer}] incremental add of {} samples (10%): {} vs {} full rebuild ({:.1}× faster)",
        extra.len(),
        format_seconds(incr_add_s),
        format_seconds(rebuild_s),
        rebuild_s / incr_add_s.max(1e-12)
    );

    // Pipelined commits: the same delta batches through the service's
    // stage → sign → seal pipeline vs the serial commit() loop.
    let batches: Vec<Vec<(String, Vec<u64>)>> = (0..PIPELINE_BATCHES)
        .map(|b| {
            workload
                .extra_samples(9_000 + b as u64)
                .into_iter()
                .enumerate()
                .map(|(i, s)| (format!("pipe_{b}_{i}"), s))
                .collect()
        })
        .collect();
    let (serial_commit_s, pipelined_commit_s) =
        time_pipelined_vs_serial(&config, collection, &batches, queries);
    println!(
        "[{signer}] {PIPELINE_BATCHES} delta commits: serial {} vs pipelined {} ({:.2}× wall-clock)",
        format_seconds(serial_commit_s),
        format_seconds(pipelined_commit_s),
        pipelined_commit_s / serial_commit_s.max(1e-12)
    );

    // Persist: container round-trip must reproduce the index exactly,
    // including the signer record.
    let bytes = index.to_container_bytes();
    let container_len = bytes.len();
    let reread = SketchIndex::from_container_bytes(bytes).expect("container parses");
    assert_eq!(reread, index, "container round-trip must be lossless");
    assert_eq!(reread.scheme().kind(), signer, "container must record the signer");

    // Engine, estimate-only.
    let engine = QueryEngine::with_collection(&index, collection);
    let est_opts = QueryOptions { top_k: TOP_K, ..Default::default() };
    let est_answers = engine.query_batch(queries, &est_opts).expect("estimate query batch");
    let est_recall = recall(&est_answers, exact);

    // Engine, exact popcount re-rank (the serving default).
    let rerank_opts = QueryOptions { top_k: TOP_K, rerank_exact: true, ..Default::default() };
    let t = Instant::now();
    let answers = engine.query_batch(queries, &rerank_opts).expect("reranked query batch");
    let engine_s = t.elapsed().as_secs_f64();
    let engine_qps = queries.len() as f64 / engine_s.max(1e-9);
    let rr_recall = recall(&answers, exact);

    // Distributed serving: signature-sharded answers must match the
    // single-rank engine exactly for every CI grid size, and the smallest
    // grid's stats become the per-rank memory figures of the report.
    let mut dist_ok = true;
    let mut stats_p4 = DistQueryStats::default();
    for ranks in DIST_RANKS {
        let out = Runtime::new(ranks)
            .run(|ctx| {
                let q = if ctx.rank() == 0 { Some(queries) } else { None };
                ctx.expect_ok(
                    "dist_query_batch_stats",
                    dist_query_batch_stats(ctx.world(), &index, Some(collection), q, &rerank_opts),
                )
            })
            .expect("distributed query run");
        // Divergence is recorded, not asserted here: the report must land
        // on disk first so CI always has the diagnostic artifact (the
        // post-report gate in main() fails the run).
        let mut grid_ok = true;
        for (rank, (result, _)) in out.results.iter().enumerate() {
            if result != &answers {
                eprintln!(
                    "[{signer}] rank {rank}/{ranks}: sharded answers DIVERGE from single-rank"
                );
                grid_ok = false;
            }
        }
        dist_ok &= grid_ok;
        // Peak transient memory includes the keyed fetch allgather's full
        // delivery (fetch_bytes), not just the rows this rank keeps.
        let max_resident =
            out.results.iter().map(|(_, s)| s.shard_bytes + s.fetch_bytes).max().unwrap_or(0);
        println!(
            "[{signer}] dist {ranks} ranks: {}, {} collectives/batch, ≤ {} sig bytes resident \
             per rank (replicated baseline {})",
            if grid_ok { "identical answers" } else { "DIVERGENT answers" },
            out.results[0].1.collective_calls,
            max_resident,
            out.results[0].1.replicated_bytes
        );
        if ranks == 4 {
            // Report the most loaded rank so the figure is conservative.
            stats_p4 = out
                .results
                .iter()
                .map(|(_, s)| s.clone())
                .max_by_key(|s| s.shard_bytes + s.fetch_bytes)
                .unwrap_or_default();
        }
    }

    SignerRun {
        signer,
        sign_s,
        build_s,
        incr_add_s,
        rebuild_s,
        serial_commit_s,
        pipelined_commit_s,
        container_len,
        engine_qps,
        est_recall,
        rr_recall,
        stats_p4,
        dist_ok,
    }
}

/// One segment count's figures from the sweep: collective calls and the
/// most-loaded rank's wire bytes, for both exchange strategies, plus
/// whether every rank of both answered bit-identically to the
/// single-rank reader.
struct SweepRow {
    segments: usize,
    keyed_collectives: usize,
    legacy_collectives: usize,
    keyed_wire_bytes: usize,
    legacy_wire_bytes: usize,
    identical: bool,
}

/// Serve the same query batch over the same corpus committed as 1, 4 and
/// 16 uncompacted segments, through the keyed cross-segment exchange and
/// the retained per-segment reference, at p = [`SWEEP_RANKS`]: the
/// observable form of "serving cost independent of commit history".
fn segment_sweep(
    workload: &Workload,
    collection: &SampleCollection,
    queries: &[Vec<u64>],
) -> Vec<SweepRow> {
    let config = IndexConfig::default()
        .with_signature_len(workload.signature_len)
        .with_threshold(0.4)
        .with_signer(SignerKind::Oph);
    let opts = QueryOptions { top_k: TOP_K, rerank_exact: true, ..Default::default() };
    let n = collection.n();
    let mut rows = Vec::with_capacity(SWEEP_SEGMENTS.len());
    for segments in SWEEP_SEGMENTS {
        // The same corpus, committed as `segments` near-equal batches so
        // the reader holds exactly that many uncompacted segments.
        let mut writer =
            IndexOptions::from_config(config).open_writer().expect("sweep writer creates");
        let mut start = 0usize;
        for s in 0..segments {
            let end = start + (n - start) / (segments - s);
            for i in start..end {
                writer.add(format!("s{i}"), collection.sample(i).to_vec()).expect("sweep add");
            }
            writer.commit().expect("sweep commit");
            start = end;
        }
        let reader = writer.reader();
        assert_eq!(reader.segments().len(), segments, "sweep snapshot shape");
        let reference = QueryEngine::snapshot_with_collection(reader.clone(), collection)
            .query_batch(queries, &opts)
            .expect("single-rank sweep reference");

        let run = |label: &str, keyed: bool| {
            let out = Runtime::new(SWEEP_RANKS)
                .run(|ctx| {
                    let q = if ctx.rank() == 0 { Some(queries) } else { None };
                    let result = if keyed {
                        dist_query_reader_batch_stats(
                            ctx.world(),
                            &reader,
                            Some(collection),
                            q,
                            &opts,
                        )
                    } else {
                        dist_query_reader_batch_stats_per_segment(
                            ctx.world(),
                            &reader,
                            Some(collection),
                            q,
                            &opts,
                        )
                    };
                    ctx.expect_ok(label, result)
                })
                .expect("sweep distributed run");
            let mut identical = true;
            for (rank, (answers, _)) in out.results.iter().enumerate() {
                if answers != &reference {
                    eprintln!(
                        "[sweep] {label}: rank {rank}/{SWEEP_RANKS} DIVERGES at \
                         {segments} segments"
                    );
                    identical = false;
                }
            }
            let collectives = out.results[0].1.collective_calls;
            let wire = out.results.iter().map(|(_, s)| s.wire_bytes()).max().unwrap_or(0);
            (collectives, wire, identical)
        };
        let (keyed_collectives, keyed_wire_bytes, keyed_ok) = run("keyed sweep", true);
        let (legacy_collectives, legacy_wire_bytes, legacy_ok) = run("per-segment sweep", false);
        println!(
            "[sweep] {segments} segments @ p={SWEEP_RANKS}: keyed {keyed_collectives} \
             collectives / {keyed_wire_bytes} wire bytes, per-segment {legacy_collectives} \
             collectives / {legacy_wire_bytes} wire bytes"
        );
        rows.push(SweepRow {
            segments,
            keyed_collectives,
            legacy_collectives,
            keyed_wire_bytes,
            legacy_wire_bytes,
            identical: keyed_ok && legacy_ok,
        });
    }
    rows
}

/// Tracing overhead: the same re-ranked query batch through the same
/// OPH engine with `gas_obs` tracing disabled and enabled. The disabled
/// figure is what production serving pays for carrying the
/// instrumentation (a relaxed atomic load per span site); the
/// `bench_trend --obs` gate holds it against the committed baseline.
fn measure_obs_overhead(
    workload: &Workload,
    collection: &SampleCollection,
    queries: &[Vec<u64>],
) -> (f64, f64) {
    let config = IndexConfig::default()
        .with_signature_len(workload.signature_len)
        .with_threshold(0.4)
        .with_signer(SignerKind::Oph);
    let index = IndexOptions::from_config(config).build_index(collection).expect("overhead build");
    let engine = QueryEngine::with_collection(&index, collection);
    let opts = QueryOptions { top_k: TOP_K, rerank_exact: true, ..Default::default() };
    let qps = || {
        let s = time_averaged(|| {
            std::hint::black_box(engine.query_batch(queries, &opts).expect("overhead batch"));
        });
        queries.len() as f64 / s.max(1e-9)
    };
    gas_obs::set_enabled(false);
    let qps_disabled = qps();
    gas_obs::set_enabled(true);
    let qps_enabled = qps();
    gas_obs::set_enabled(false);
    // Drop the trace events the enabled pass accumulated.
    drop(gas_obs::take_events());
    (qps_disabled, qps_enabled)
}

/// Fault-injection overhead. Two legs:
///
/// * the re-ranked query batch with the global `gas_chaos` switch off
///   (the production default) and on — serving has no injection sites,
///   so the two figures bound what merely *linking* the chaos crate
///   costs the hot path; the `bench_trend --chaos` gate holds the
///   disabled figure against the committed baseline throughput;
/// * the same staged commit persisted through plain `RealFs` and
///   through `ChaosStorage` wrapping it with an inert plan (seeded,
///   zero fault rate) under an enabled switch — the storage path *does*
///   carry injection sites, and this is what each one costs when armed
///   but silent.
fn measure_chaos_overhead(
    workload: &Workload,
    collection: &SampleCollection,
    queries: &[Vec<u64>],
) -> (f64, f64, f64, f64) {
    let config = IndexConfig::default()
        .with_signature_len(workload.signature_len)
        .with_threshold(0.4)
        .with_signer(SignerKind::Oph);
    let index = IndexOptions::from_config(config).build_index(collection).expect("chaos build");
    let engine = QueryEngine::with_collection(&index, collection);
    let opts = QueryOptions { top_k: TOP_K, rerank_exact: true, ..Default::default() };
    let qps = || {
        let s = time_averaged(|| {
            std::hint::black_box(engine.query_batch(queries, &opts).expect("chaos batch"));
        });
        queries.len() as f64 / s.max(1e-9)
    };
    gas_chaos::set_enabled(false);
    let qps_disabled = qps();
    gas_chaos::set_enabled(true);
    let qps_enabled = qps();
    gas_chaos::set_enabled(false);

    let n_commit = collection.n().min(256);
    let commit_s = |storage: Option<std::sync::Arc<dyn Storage>>| {
        let path = std::env::temp_dir().join(format!(
            "gas_chaos_bench_{}_{}.gidx",
            std::process::id(),
            storage.is_some()
        ));
        let mut writer =
            IndexOptions::from_config(config).create_writer_at(&path).expect("bench writer");
        if let Some(storage) = storage {
            writer.set_storage(storage);
        }
        for i in 0..n_commit {
            writer.add(format!("c{i}"), collection.sample(i).to_vec()).expect("stage");
        }
        let t = Instant::now();
        writer.commit().expect("bench commit");
        let s = t.elapsed().as_secs_f64();
        std::fs::remove_file(&path).ok();
        s
    };
    let commit_realfs_s = commit_s(None);
    gas_chaos::set_enabled(true);
    let commit_chaos_s =
        commit_s(Some(std::sync::Arc::new(ChaosStorage::over_fs(FaultPlan::seeded(7, 0)))));
    gas_chaos::set_enabled(false);
    (qps_disabled, qps_enabled, commit_realfs_s, commit_chaos_s)
}

fn main() {
    let workload = if tiny() { Workload::tiny_scale() } else { Workload::default_scale() };
    let collection = workload.collection(42);
    let queries = workload.queries(&collection, 1337);
    println!(
        "workload '{}': {} samples ({} families), {} queries, signature length {}",
        workload.name,
        collection.n(),
        workload.families,
        queries.len(),
        workload.signature_len
    );

    // Exact linear-scan baseline (also the recall ground truth), shared
    // by both signer runs.
    let t = Instant::now();
    let exact: Vec<Vec<gas_index::Neighbor>> =
        queries.iter().map(|q| exact_top_k(&collection, q, TOP_K)).collect();
    let scan_s = t.elapsed().as_secs_f64();
    let scan_qps = queries.len() as f64 / scan_s.max(1e-9);

    let runs: Vec<SignerRun> = [SignerKind::KMins, SignerKind::Oph]
        .into_iter()
        .map(|signer| run_signer(signer, &workload, &collection, &queries, &exact))
        .collect();

    let sweep = segment_sweep(&workload, &collection, &queries);

    let mut table = Table::new(
        "Query serving: k-mins vs OPH signers, sharded distributed path",
        &[
            "workload",
            "signer",
            "n",
            "queries",
            "sign_s",
            "build_s",
            "incr_add_s",
            "rebuild_s",
            "incr_speedup",
            "serial_commit_s",
            "pipelined_commit_s",
            "pipeline_speedup",
            "container_bytes",
            "scan_qps",
            "engine_qps",
            "recall_estimate",
            "recall_reranked",
            "sig_bytes_per_rank_p4",
            "fetch_wire_bytes_p4",
            "wire_bytes_p4",
            "collectives_p4",
            "sig_bytes_replicated",
            "dist_ranks_ok",
        ],
    );
    for run in &runs {
        table.push_row(vec![
            workload.name.to_string(),
            run.signer.to_string(),
            collection.n().to_string(),
            queries.len().to_string(),
            format!("{:.6}", run.sign_s),
            format!("{:.4}", run.build_s),
            format!("{:.6}", run.incr_add_s),
            format!("{:.6}", run.rebuild_s),
            format!("{:.2}", run.rebuild_s / run.incr_add_s.max(1e-12)),
            format!("{:.6}", run.serial_commit_s),
            format!("{:.6}", run.pipelined_commit_s),
            format!("{:.2}", run.serial_commit_s / run.pipelined_commit_s.max(1e-12)),
            run.container_len.to_string(),
            format!("{scan_qps:.1}"),
            format!("{:.1}", run.engine_qps),
            format!("{:.4}", run.est_recall),
            format!("{:.4}", run.rr_recall),
            run.stats_p4.shard_bytes.to_string(),
            run.stats_p4.fetch_bytes.to_string(),
            run.stats_p4.wire_bytes().to_string(),
            run.stats_p4.collective_calls.to_string(),
            run.stats_p4.replicated_bytes.to_string(),
            if run.dist_ok { DIST_RANKS.map(|r| r.to_string()).join("+") } else { "FAIL".into() },
        ]);
    }
    table.print();

    let mut sweep_table = Table::new(
        "Segment sweep: keyed cross-segment exchange vs per-segment reference",
        &[
            "workload",
            "ranks",
            "segments",
            "keyed_collectives",
            "legacy_collectives",
            "keyed_wire_bytes",
            "legacy_wire_bytes",
            "identical",
        ],
    );
    for row in &sweep {
        sweep_table.push_row(vec![
            workload.name.to_string(),
            SWEEP_RANKS.to_string(),
            row.segments.to_string(),
            row.keyed_collectives.to_string(),
            row.legacy_collectives.to_string(),
            row.keyed_wire_bytes.to_string(),
            row.legacy_wire_bytes.to_string(),
            if row.identical { "yes".into() } else { "DIVERGENT".into() },
        ]);
    }
    sweep_table.print();

    let dir = gas_bench::report::results_dir();
    let csv = table.write_csv(&dir, "query_throughput").expect("write CSV");
    let json = table.write_json(&dir, "query_throughput").expect("write JSON");
    println!("Reports written to {} and {}", csv.display(), json.display());
    let sweep_csv = sweep_table.write_csv(&dir, "query_segment_sweep").expect("write sweep CSV");
    let sweep_json = sweep_table.write_json(&dir, "query_segment_sweep").expect("write sweep JSON");
    println!("Sweep reports written to {} and {}", sweep_csv.display(), sweep_json.display());

    // Tracing overhead: what the query path pays for carrying the
    // instrumentation, disabled (production default) and enabled.
    let (qps_disabled, qps_enabled) = measure_obs_overhead(&workload, &collection, &queries);
    println!(
        "[obs] tracing overhead: {qps_disabled:.1} qps disabled vs {qps_enabled:.1} qps \
         enabled ({:.2}× when tracing)",
        qps_disabled / qps_enabled.max(1e-9)
    );
    let mut obs_table = Table::new(
        "Tracing overhead: re-ranked query batch, gas_obs disabled vs enabled",
        &["workload", "signer", "queries", "qps_disabled", "qps_enabled"],
    );
    obs_table.push_row(vec![
        workload.name.to_string(),
        SignerKind::Oph.to_string(),
        queries.len().to_string(),
        format!("{qps_disabled:.1}"),
        format!("{qps_enabled:.1}"),
    ]);
    let obs_json = obs_table.write_json(&dir, "obs_overhead").expect("write obs JSON");
    println!("Tracing-overhead report written to {}", obs_json.display());

    // Fault-injection overhead: what the serving and commit paths pay
    // for carrying `gas_chaos`, disabled (production default) and armed
    // with an inert plan. Gated by `bench_trend --chaos`.
    let (chaos_qps_disabled, chaos_qps_enabled, commit_realfs_s, commit_chaos_s) =
        measure_chaos_overhead(&workload, &collection, &queries);
    println!(
        "[chaos] injection overhead: {chaos_qps_disabled:.1} qps disabled vs \
         {chaos_qps_enabled:.1} qps enabled; commit {} RealFs vs {} inert ChaosStorage",
        format_seconds(commit_realfs_s),
        format_seconds(commit_chaos_s)
    );
    let mut chaos_table = Table::new(
        "Fault-injection overhead: re-ranked query batch and staged commit, \
         gas_chaos disabled vs enabled with an inert plan",
        &[
            "workload",
            "signer",
            "queries",
            "qps_disabled",
            "qps_enabled",
            "commit_realfs_s",
            "commit_chaos_s",
        ],
    );
    chaos_table.push_row(vec![
        workload.name.to_string(),
        SignerKind::Oph.to_string(),
        queries.len().to_string(),
        format!("{chaos_qps_disabled:.1}"),
        format!("{chaos_qps_enabled:.1}"),
        format!("{commit_realfs_s:.6}"),
        format!("{commit_chaos_s:.6}"),
    ]);
    let chaos_json = chaos_table.write_json(&dir, "chaos_overhead").expect("write chaos JSON");
    println!("Injection-overhead report written to {}", chaos_json.display());

    // Acceptance gates. The reports above are already on disk, so a trip
    // here still leaves the diagnostic artifact for CI to upload.
    //
    // The collectives budget: the keyed exchange must cost *exactly* the
    // same number of collectives at every segment count (±0 — six with
    // exact re-ranking), while the retained per-segment reference pays
    // 4 + 2·segments; both must answer bit-identically.
    for row in &sweep {
        assert!(row.identical, "segment sweep diverged at {} segments", row.segments);
        assert_eq!(
            row.keyed_collectives, sweep[0].keyed_collectives,
            "keyed collectives drifted across segment counts"
        );
        assert_eq!(row.keyed_collectives, 6, "keyed exchange must cost 6 collectives re-ranked");
        assert_eq!(
            row.legacy_collectives,
            4 + 2 * row.segments,
            "per-segment reference collectives off at {} segments",
            row.segments
        );
    }
    let kmins = &runs[0];
    let oph = &runs[1];
    for run in &runs {
        assert!(
            run.rr_recall >= 0.9,
            "[{}] re-ranked recall@{TOP_K} {:.4} fell below the 0.9 acceptance floor",
            run.signer,
            run.rr_recall
        );
        assert!(run.dist_ok, "[{}] distributed serving diverged from single-rank", run.signer);
        assert!(
            run.stats_p4.shard_bytes * 10 <= run.stats_p4.replicated_bytes * 6,
            "[{}] per-rank signature bytes {} exceed 0.6× the replicated baseline {} at p = 4",
            run.signer,
            run.stats_p4.shard_bytes,
            run.stats_p4.replicated_bytes
        );
    }
    // The lifecycle gate: absorbing a 10% delta batch incrementally must
    // beat rebuilding the enlarged corpus by ≥ 5× (the delta is 1/11 of
    // the signing work; a relaxed ≥ 2× floor applies on the tiny CI
    // workload where both figures sit near timer resolution).
    let incr_floor = if tiny() { 2.0 } else { 5.0 };
    for run in &runs {
        let incr_speedup = run.rebuild_s / run.incr_add_s.max(1e-12);
        assert!(
            incr_speedup >= incr_floor,
            "[{}] incremental 10% add is only {incr_speedup:.1}× faster than a full rebuild \
             (floor {incr_floor}×: incremental {:.6} s vs rebuild {:.6} s)",
            run.signer,
            run.incr_add_s,
            run.rebuild_s
        );
    }
    // The pipeline gate: K delta batches through the service must take
    // ≤ 0.7× the wall-clock of the serial commit() loop at the default
    // bench scale. The serial loop leaves cores idle during its
    // single-threaded stretches (staging, sealing, persisting, and the
    // per-batch fork/join ramp of batch signing); the pipeline fills
    // them by signing later batches concurrently — which requires a
    // second core to exist. On a single-core machine no pipeline can
    // beat a serial loop at CPU-bound work, so there the gate instead
    // bounds the pipeline's overhead at ≤ 1.25×. (The tiny CI workload
    // reports the figure without asserting it — batches there sit near
    // thread-spawn noise.)
    if !tiny() {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let ceiling = if cores >= 2 { 0.7 } else { 1.25 };
        for run in &runs {
            let ratio = run.pipelined_commit_s / run.serial_commit_s.max(1e-12);
            assert!(
                ratio <= ceiling,
                "[{}] pipelined commits took {ratio:.2}× the serial loop (gate ≤ {ceiling}× \
                 on {cores} core(s): pipelined {:.6} s vs serial {:.6} s)",
                run.signer,
                run.pipelined_commit_s,
                run.serial_commit_s
            );
        }
    }
    let speedup = kmins.sign_s / oph.sign_s.max(1e-12);
    let floor = if tiny() { 2.0 } else { 5.0 };
    assert!(
        speedup >= floor,
        "OPH signing speedup {speedup:.1}× fell below the {floor}× floor \
         (kmins {:.6} s vs oph {:.6} s)",
        kmins.sign_s,
        oph.sign_s
    );
    println!(
        "OK: OPH signs {speedup:.1}× faster than k-mins; recall@{TOP_K} kmins {:.3} / oph {:.3}; \
         per-rank signature bytes {} of {} replicated ({:.2}×) at p = 4",
        kmins.rr_recall,
        oph.rr_recall,
        oph.stats_p4.shard_bytes,
        oph.stats_p4.replicated_bytes,
        oph.stats_p4.shard_bytes as f64 / oph.stats_p4.replicated_bytes.max(1) as f64
    );
}
