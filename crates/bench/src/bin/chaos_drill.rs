//! Deterministic chaos drill: exercise the fault-injection story end to
//! end — storage crashes, service retries and degraded queries, and
//! distributed failover — under a seeded plan, and pin the invariants
//! the README promises:
//!
//! * **storage** — every injected commit fault (scripted plus a seeded
//!   random plan) leaves the container servable at a previously
//!   committed generation with bit-identical answers, and the next
//!   clean commit heals the file (no torn bytes on reopen);
//! * **service** — a one-shot storage fault is absorbed by
//!   `commit_wait_retry` (bounded attempts, deterministic backoff), a
//!   persistent fault exhausts into a typed `RetryExhausted`, the next
//!   clean retry heals, and a stale cursor degrades into a
//!   fresh-snapshot restart with the explicit `degraded` flag instead
//!   of an error;
//! * **dist** — a crashed rank with surviving band replicas serves
//!   bit-identically to the fault-free run; without replicas the batch
//!   degrades with exact lost-band accounting, typed everywhere, and
//!   never panics.
//!
//! Configuration: `GAS_CHAOS_SEED` (default 1) seeds every fault plan;
//! `GAS_CHAOS_SCENARIO` picks `storage`, `service`, `dist` or `all`
//! (default). The same seed replays the same schedule bit-for-bit.
//!
//! Writes `results/chaos_drill.json` — one row per scenario — *before*
//! asserting, so a tripped invariant still leaves the diagnostic
//! artifact for CI to upload.

use std::collections::BTreeMap;
use std::sync::Arc;

use gas_bench::report::Table;
use gas_dstsim::{RankFaults, Runtime, SimError};
use gas_index::{
    dist_query_reader_batch, dist_query_reader_batch_replicated, ChaosStorage, FaultKind,
    FaultPlan, IndexConfig, IndexError, IndexOptions, IndexReader, IndexService, IndexWriter,
    Neighbor, PageRequest, QueryEngine, QueryOptions, RealFs,
};

fn seed() -> u64 {
    std::env::var("GAS_CHAOS_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(1)
}

fn scenario() -> String {
    std::env::var("GAS_CHAOS_SCENARIO").unwrap_or_else(|_| "all".into())
}

fn unique_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("gas_chaos_drill_{tag}_{}.gidx", std::process::id()))
}

fn sample(tag: u64) -> Vec<u64> {
    let base = (tag % 4) * 1_000;
    (base..base + 150).chain(tag * 7919..tag * 7919 + 25).collect()
}

fn probes() -> Vec<Vec<u64>> {
    (0..4u64).map(|f| (f * 1_000..f * 1_000 + 150).collect()).collect()
}

fn answers(reader: &IndexReader) -> Vec<Vec<Neighbor>> {
    let engine = QueryEngine::snapshot(reader.clone());
    let opts = QueryOptions { top_k: 5, ..Default::default() };
    probes().iter().map(|q| engine.query(q, &opts).expect("drill query")).collect()
}

/// One scenario's report row plus the violations it found (empty = ok).
struct Outcome {
    row: Vec<String>,
    violations: Vec<String>,
}

/// Storage drill: scripted one-shot faults of every kind, then a seeded
/// random plan, against a live commit history. After every injected
/// crash the file must reopen at a recorded generation bit-identically,
/// and a clean commit must heal it.
fn storage_drill(seed: u64) -> Outcome {
    let mut violations = Vec::new();
    let path = unique_path("storage");
    std::fs::remove_file(&path).ok();
    let config = IndexConfig::default().with_signature_len(64).with_threshold(0.5);
    let mut writer =
        IndexOptions::from_config(config).create_writer_at(&path).expect("create drill writer");

    let mut recorded: BTreeMap<u64, Vec<Vec<Neighbor>>> = BTreeMap::new();
    let mut next_tag = 0u64;
    let mut commit_two = |w: &mut IndexWriter| -> Result<(), IndexError> {
        for _ in 0..2 {
            w.add(format!("s{next_tag}"), sample(next_tag))?;
            next_tag += 1;
        }
        w.commit().map(|_| ())
    };
    commit_two(&mut writer).expect("seed generation");
    recorded.insert(writer.generation(), answers(&writer.reader()));

    gas_chaos::set_enabled(true);
    let mut injected = 0u64;
    let mut recoveries = 0u64;
    let kinds =
        [FaultKind::IoError, FaultKind::ShortWrite, FaultKind::TornWrite, FaultKind::FsyncLoss];
    // Scripted pass (one fault of each kind at the first storage op of a
    // commit), then ten rounds under the seeded random plan.
    let plans: Vec<FaultPlan> = kinds
        .iter()
        .map(|&k| FaultPlan::seeded(seed, 0).script(0, k))
        .chain((0..10).map(|round| FaultPlan::seeded(seed ^ round, 400)))
        .collect();
    for plan in plans {
        let chaos = Arc::new(ChaosStorage::over_fs(plan));
        writer.set_storage(chaos.clone());
        let crashed = match commit_two(&mut writer) {
            Ok(()) => {
                // A lying fsync reports success; treat any injected op
                // as a crash site and force the reopen check.
                recorded.insert(writer.generation(), answers(&writer.reader()));
                chaos.ops_seen() > 0 && IndexReader::open(&path).is_err()
            }
            Err(IndexError::Io(_)) => true,
            Err(other) => {
                violations.push(format!("commit failed with a non-Io error: {other}"));
                false
            }
        };
        if !crashed {
            // Even a clean round must leave the file openable; a silent
            // fsync loss surfaces here as a prior-generation fallback.
            let reader = IndexReader::open(&path).expect("reopen after clean round");
            if !recorded.contains_key(&reader.generation()) {
                violations.push(format!(
                    "clean round reopened at unrecorded generation {}",
                    reader.generation()
                ));
            }
            continue;
        }
        injected += 1;
        drop(writer);
        let reopened = match IndexWriter::open(&path) {
            Ok(reopened) => reopened,
            Err(e) => {
                violations.push(format!("file failed to reopen after injected crash: {e}"));
                break;
            }
        };
        let generation = reopened.generation();
        match recorded.get(&generation) {
            Some(want) if &answers(&reopened.reader()) == want => recoveries += 1,
            Some(_) => {
                violations.push(format!("generation {generation} answers diverged after crash"))
            }
            None => violations.push(format!("reopened at unrecorded generation {generation}")),
        }
        recorded.split_off(&(generation + 1));
        writer = reopened;
        // Heal under the real filesystem: commit must succeed and leave
        // no torn tail.
        commit_two(&mut writer).expect("healing commit");
        let (healed, report) = IndexReader::open_with_report(&path).expect("reopen healed");
        if report.torn_bytes != 0 {
            violations.push(format!("healing commit left {} torn bytes", report.torn_bytes));
        }
        recorded.insert(healed.generation(), answers(&healed));
    }
    gas_chaos::set_enabled(false);
    std::fs::remove_file(&path).ok();
    if injected == 0 {
        violations.push("the scripted plans injected no faults".into());
    }
    Outcome {
        row: vec![
            "storage".into(),
            seed.to_string(),
            injected.to_string(),
            recoveries.to_string(),
            String::new(),
            String::new(),
            if violations.is_empty() { "ok".into() } else { "FAIL".into() },
        ],
        violations,
    }
}

/// Service drill: retry absorbs a one-shot fault, exhausts typed under
/// a persistent one, heals clean, and a stale cursor degrades into a
/// flagged restart.
fn service_drill(seed: u64) -> Outcome {
    let mut violations = Vec::new();
    let path = unique_path("service");
    std::fs::remove_file(&path).ok();
    let service = IndexOptions::new()
        .with_signature_len(64)
        .with_threshold(0.5)
        .with_auto_compact(false)
        .with_snapshot_retention(1)
        .serve_at(&path)
        .expect("serve drill index");
    let batch = |from: u64| -> Vec<(String, Vec<u64>)> {
        (from..from + 2).map(|t| (format!("s{t}"), sample(t))).collect()
    };
    service.add_batch(batch(0)).expect("seed batch");
    service.commit_wait().expect("seed commit");

    gas_chaos::set_enabled(true);
    // One-shot fault: absorbed by the bounded retry loop.
    service.set_storage(Arc::new(ChaosStorage::over_fs(
        FaultPlan::seeded(seed, 0).script(0, FaultKind::IoError),
    )));
    service.add_batch(batch(2)).expect("stage retried batch");
    let mut retried_ok = false;
    match service.commit_wait_retry() {
        Ok(_) => retried_ok = true,
        Err(e) => violations.push(format!("retry failed to absorb a one-shot fault: {e}")),
    }
    // Persistent fault: bounded attempts exhaust into a typed error.
    service.set_storage(Arc::new(ChaosStorage::over_fs(
        FaultPlan::seeded(seed, 1_000).with_kinds(&[FaultKind::IoError]),
    )));
    service.add_batch(batch(4)).expect("stage doomed batch");
    let mut exhausted_typed = false;
    match service.commit_wait_retry() {
        Err(IndexError::RetryExhausted { attempts, .. }) if attempts >= 2 => {
            exhausted_typed = true;
        }
        Err(other) => violations.push(format!("persistent fault surfaced untyped: {other}")),
        Ok(_) => violations.push("persistent fault plan let a commit through".into()),
    }
    // Heal: the same staged state persists cleanly once faults stop.
    service.set_storage(Arc::new(RealFs));
    if let Err(e) = service.commit_wait_retry() {
        violations.push(format!("healing retry failed under RealFs: {e}"));
    }
    gas_chaos::set_enabled(false);

    // Stale cursor: retention 1 evicts the paged snapshot after two
    // commits; the degraded path restarts instead of erroring.
    let queries = probes();
    let first = service
        .query_paged(&queries, &PageRequest::new(1))
        .expect("first page")
        .into_iter()
        .next()
        .expect("one page per query");
    let Some(stale) = first.next_cursor else {
        violations.push("drill workload produced no second page".into());
        return Outcome {
            row: vec![
                "service".into(),
                seed.to_string(),
                String::new(),
                String::new(),
                retried_ok.to_string(),
                exhausted_typed.to_string(),
                "FAIL".into(),
            ],
            violations,
        };
    };
    for from in [6u64, 8] {
        service.add_batch(batch(from)).expect("staling batch");
        service.commit_wait().expect("staling commit");
    }
    // A fresh scan pins the new generation, evicting the cursor's
    // snapshot from the retention-1 cache.
    service.query_paged(&queries, &PageRequest::new(1)).expect("fresh scan");
    let mut request = PageRequest::new(1);
    request.cursor = Some(stale);
    let mut degraded_flagged = false;
    match service.query_paged_degraded(&queries, &request) {
        Ok(result) if result.degraded && result.causes.stale_cursor > 0 => {
            degraded_flagged = !result.pages.is_empty();
            if !degraded_flagged {
                violations.push("degraded restart returned no pages".into());
            }
        }
        Ok(_) => violations.push("stale cursor was not flagged as degraded".into()),
        Err(e) => violations.push(format!("degraded query errored instead of restarting: {e}")),
    }
    std::fs::remove_file(&path).ok();
    Outcome {
        row: vec![
            "service".into(),
            seed.to_string(),
            String::new(),
            String::new(),
            retried_ok.to_string(),
            format!("{}", exhausted_typed && degraded_flagged),
            if violations.is_empty() { "ok".into() } else { "FAIL".into() },
        ],
        violations,
    }
}

/// Distributed drill: a crashed rank fails over to surviving band
/// replicas bit-identically; without replicas the batch degrades with
/// exact lost-band accounting — typed, never a panic.
fn dist_drill(seed: u64) -> Outcome {
    let mut violations = Vec::new();
    const RANKS: usize = 4;
    let crashed = 1 + (seed as usize % (RANKS - 1));
    let make_reader = || {
        let mut writer = IndexOptions::new()
            .with_signature_len(64)
            .with_threshold(0.4)
            .open_writer()
            .expect("dist drill writer");
        for tag in 0..12u64 {
            writer.add(format!("s{tag}"), sample(tag)).expect("dist add");
            if tag % 5 == 4 {
                writer.commit().expect("dist commit");
            }
        }
        writer.commit().expect("dist final commit");
        writer.reader()
    };
    let opts = QueryOptions { top_k: 5, ..Default::default() };
    let queries = probes();

    // Fault-free baseline through the plain sharded path.
    let baseline = {
        let queries = queries.clone();
        let out = Runtime::new(RANKS)
            .run(move |ctx| {
                let reader = make_reader();
                let q = (ctx.rank() == 0).then_some(queries.as_slice());
                dist_query_reader_batch(ctx.world(), &reader, None, q, &opts)
            })
            .expect("fault-free run");
        out.results.into_iter().next().expect("rank 0 result").expect("fault-free answers")
    };

    // Crash with replication 2: every surviving rank answers
    // bit-identically to the baseline, degraded = false.
    let mut failover_ok = true;
    let faulted = Runtime::new(RANKS)
        .with_faults(RankFaults::none().crash(crashed).with_recv_timeout(2_000_000))
        .run({
            let queries = queries.clone();
            move |ctx| {
                let reader = make_reader();
                let alive_ingress = ctx.world().alive_world_ranks().first() == Some(&ctx.rank());
                let q = alive_ingress.then(|| queries.clone());
                dist_query_reader_batch_replicated(
                    ctx.world(),
                    &reader,
                    None,
                    q.as_deref(),
                    &opts,
                    2,
                )
            }
        })
        .expect("replicated run");
    for (rank, result) in faulted.results.into_iter().enumerate() {
        match result {
            Ok((got, report, _)) if rank != crashed => {
                if got != baseline {
                    failover_ok = false;
                    violations.push(format!("rank {rank} diverged from the fault-free answers"));
                }
                if report.degraded {
                    failover_ok = false;
                    violations.push(format!("rank {rank} reported degraded despite replicas"));
                }
            }
            Err(IndexError::Sim(SimError::RankCrashed { .. })) if rank == crashed => {}
            Ok(_) => {
                failover_ok = false;
                violations.push(format!("crashed rank {rank} returned answers"));
            }
            Err(e) => {
                failover_ok = false;
                violations.push(format!("rank {rank} failed typed-failover: {e}"));
            }
        }
    }

    // Crash with replication 1: typed degradation with exact lost-band
    // accounting on every survivor.
    let mut lost_bands_seen = 0usize;
    let unreplicated = Runtime::new(RANKS)
        .with_faults(RankFaults::none().crash(crashed).with_recv_timeout(2_000_000))
        .run({
            let queries = queries.clone();
            move |ctx| {
                let reader = make_reader();
                let expected_lost: Vec<usize> =
                    (0..reader.params().bands()).filter(|b| b % RANKS == crashed).collect();
                let alive_ingress = ctx.world().alive_world_ranks().first() == Some(&ctx.rank());
                let q = alive_ingress.then(|| queries.clone());
                dist_query_reader_batch_replicated(
                    ctx.world(),
                    &reader,
                    None,
                    q.as_deref(),
                    &opts,
                    1,
                )
                .map(|(answers, report, _)| (answers, report, expected_lost))
            }
        })
        .expect("unreplicated run");
    let mut survivor_answers: Option<Vec<Vec<Neighbor>>> = None;
    for (rank, result) in unreplicated.results.into_iter().enumerate() {
        match result {
            Ok((got, report, expected_lost)) if rank != crashed => {
                if !report.degraded || report.lost_bands != expected_lost {
                    violations.push(format!(
                        "rank {rank} mis-accounted the lost bands: {:?} vs {expected_lost:?}",
                        report.lost_bands
                    ));
                }
                lost_bands_seen = report.lost_bands.len();
                match &survivor_answers {
                    None => survivor_answers = Some(got),
                    Some(first) if first == &got => {}
                    Some(_) => {
                        violations.push(format!("rank {rank} disagreed with other survivors"))
                    }
                }
            }
            Err(IndexError::Sim(SimError::RankCrashed { .. })) if rank == crashed => {}
            Ok(_) => violations.push(format!("crashed rank {rank} returned answers")),
            Err(e) => violations.push(format!("rank {rank} panicked the typed path: {e}")),
        }
    }

    Outcome {
        row: vec![
            "dist".into(),
            seed.to_string(),
            crashed.to_string(),
            lost_bands_seen.to_string(),
            failover_ok.to_string(),
            String::new(),
            if violations.is_empty() { "ok".into() } else { "FAIL".into() },
        ],
        violations,
    }
}

fn main() {
    let seed = seed();
    let scenario = scenario();
    let outcomes: Vec<Outcome> = match scenario.as_str() {
        "storage" => vec![storage_drill(seed)],
        "service" => vec![service_drill(seed)],
        "dist" => vec![dist_drill(seed)],
        "all" => vec![storage_drill(seed), service_drill(seed), dist_drill(seed)],
        other => {
            eprintln!(
                "chaos_drill: unknown GAS_CHAOS_SCENARIO {other:?} (want storage|service|dist|all)"
            );
            std::process::exit(2);
        }
    };

    let mut table = Table::new(
        "Chaos drill: seeded fault injection across storage, service and dist",
        &[
            "scenario",
            "seed",
            "faults_injected",
            "recoveries",
            "retried_ok",
            "typed_degradation",
            "outcome",
        ],
    );
    for outcome in &outcomes {
        table.push_row(outcome.row.clone());
    }
    table.print();
    let dir = gas_bench::report::results_dir();
    let json = table.write_json(&dir, "chaos_drill").expect("write chaos_drill JSON");
    println!("Chaos-drill report written to {}", json.display());

    // The report is on disk; now trip on any violated invariant.
    let violations: Vec<&String> = outcomes.iter().flat_map(|o| o.violations.iter()).collect();
    for v in &violations {
        eprintln!("chaos_drill FAIL: {v}");
    }
    assert!(
        violations.is_empty(),
        "{} chaos invariant(s) violated under seed {seed} ({scenario})",
        violations.len()
    );
    println!("chaos_drill OK: all invariants held under seed {seed} ({scenario})");
}
