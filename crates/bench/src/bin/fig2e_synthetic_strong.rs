//! Figure 2e — synthetic dataset, strong scaling.
//!
//! Paper protocol: a uniform Bernoulli indicator matrix with `m = 32M`
//! k-mers, `n = 10k` samples, density `p = 0.01`; node counts sweep
//! 1 → 64 (32 → 2048 cores); the batch count grows with the node count
//! (1 batch at 1 node, 64 at 64 nodes) while the per-batch time shrinks
//! only mildly (117.9 s → 68.7 s per *full pass* divided into batches), so
//! the total time decreases roughly in proportion to the node count.
//!
//! The reproduction scales the matrix down (`GAS_SCALE` can grow it) and
//! prints total time, time per batch and batch count per node count.

use gas_bench::report::{format_seconds, Table};
use gas_bench::scaling::default_sim_rank_cap;
use gas_bench::workloads::{scale_factor, synthetic_collection};
use gas_core::algorithm::similarity_at_scale_distributed;
use gas_core::config::SimilarityConfig;
use gas_dstsim::machine::Machine;

fn main() {
    let m = (320_000.0 * scale_factor()) as usize;
    let n = (100.0 * scale_factor()) as usize;
    let collection = synthetic_collection(m, n, 0.01, 2020);
    let machine = Machine::stampede2_knl();
    println!(
        "Synthetic workload (paper: m = 32M, n = 10k, p = 0.01; scaled): m = {}, n = {}, nnz = {}",
        collection.m(),
        collection.n(),
        collection.nnz()
    );

    let mut table = Table::new(
        "Figure 2e: synthetic strong scaling (p = 0.01)",
        &["nodes", "cores", "sim_ranks", "batches", "s_per_batch", "total_time"],
    );
    let mut totals = Vec::new();
    for &nodes in &[1usize, 2, 4, 8, 16, 32, 64] {
        let sim_ranks = default_sim_rank_cap().min(nodes);
        // One batch per pass keeps the measured numbers dominated by the
        // product itself (the paper grows the batch count with the node
        // count; with the simulated rank cap that only adds per-batch
        // overhead without adding parallelism).
        let batches = 1usize;
        let config = SimilarityConfig::with_batches(batches);
        let summary = similarity_at_scale_distributed(&collection, &config, sim_ranks, &machine)
            .expect("simulated run succeeds");
        let per_batch = summary.mean_batch_seconds();
        let total = summary.measured_seconds;
        totals.push((nodes, total));
        table.push_row(vec![
            nodes.to_string(),
            (nodes * 32).to_string(),
            sim_ranks.to_string(),
            batches.to_string(),
            format!("{per_batch:.4}"),
            format_seconds(total),
        ]);
    }
    table.print();
    let path = table
        .write_csv(gas_bench::report::results_dir(), "fig2e_synthetic_strong")
        .expect("write CSV");
    println!("CSV written to {}", path.display());

    let host_cores = std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1);
    let first = totals.first().unwrap();
    let best = totals.iter().min_by(|a, b| a.1.partial_cmp(&b.1).unwrap()).unwrap();
    println!(
        "\nBest measured total: {:.3}s at {} simulated node(s) vs {:.3}s at 1 node; the host exposes {} CPU core(s), \
         so measured wall-clock can only improve while simulated ranks <= host cores (paper: total time decreases \
         in proportion to the node count). The scaling shape at the paper's node counts is carried by the \
         communication counters and the BSP model (see cost_model_scaling).",
        best.1, best.0, first.1, host_cores
    );
}
