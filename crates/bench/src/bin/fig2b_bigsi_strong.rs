//! Figure 2b — BIGSI dataset, strong scaling.
//!
//! Paper protocol: the BIGSI workload (446,506 samples) needs at least 64
//! nodes just to hold `A`, `B`, `C`; node counts sweep 128 → 1024; the
//! batch size doubles with the node count (16384 batches at 128 nodes down
//! to 2048 at 1024); per-batch time stays roughly constant (~37–44 s), so
//! the projected completion time falls from ~7 days to ~1 day at 1024
//! nodes.
//!
//! The reproduction runs a scaled-down BIGSI-like workload (same sample
//! proportions, per-sample k-mer counts and heavy per-column skew; see
//! DESIGN.md) and prints the same series.

use gas_bench::report::Table;
use gas_bench::scaling::{strong_scaling, ScalingPoint, ScalingSpec};
use gas_bench::workloads::bigsi_collection;

fn main() {
    let collection = bigsi_collection(0.002);
    println!(
        "BIGSI-like workload: n = {} samples, m = {} attributes, nnz = {}, density = {:.2e}",
        collection.n(),
        collection.m(),
        collection.nnz(),
        collection.density()
    );
    let mut spec =
        ScalingSpec::new("Figure 2b: BIGSI strong scaling", vec![128, 256, 512, 1024], 128);
    spec.replication = 1;
    let points = strong_scaling(&collection, &spec);

    let mut table = Table::new(&spec.name, &ScalingPoint::headers());
    for p in &points {
        table.push_row(p.row());
    }
    table.print();
    let path =
        table.write_csv(gas_bench::report::results_dir(), "fig2b_bigsi_strong").expect("write CSV");
    println!("CSV written to {}", path.display());

    let first = points.first().expect("at least one point");
    let last = points.last().expect("at least one point");
    println!(
        "\nProjected total time falls {:.2}x from {} to {} nodes (paper: ~7 days at 128 nodes -> ~1 day at 1024 nodes).",
        first.projected_total_seconds / last.projected_total_seconds.max(1e-9),
        first.nodes,
        last.nodes
    );
    println!(
        "Measured per-batch times on the capped simulation grow with the batch size ({:?}) because the \
         simulated rank count is fixed; on the real machine the rank count grows with the batch size, \
         keeping the per-batch time in a narrow band (paper: 37.3s - 43.9s). The projection column \
         therefore applies the paper's constant-per-batch protocol from the reference point.",
        points.iter().map(|p| format!("{:.3}s", p.measured_batch_seconds)).collect::<Vec<_>>()
    );
}
