//! Table II — comparison of alignment-free similarity tools.
//!
//! The paper's Table II contrasts DSM (exact, single node), Mash
//! (MinHash, single node), Libra (cosine, 10 nodes) and GenomeAtScale
//! (exact Jaccard, 1024 nodes) on problem size and parallelism. The
//! external tools cannot be rerun here, so this experiment compares the
//! corresponding *algorithm classes* implemented in this repository on one
//! common corpus:
//!
//! * exact single-node Jaccard (sequential and Rayon-parallel) — the DSM
//!   stand-in,
//! * MinHash sketching (Mash stand-in) — approximate, with its error
//!   reported,
//! * the allreduce-style distributed scheme — the MapReduce-era baseline,
//! * SimilarityAtScale (this paper) — exact and distributed.

use std::time::Instant;

use gas_bench::report::{format_seconds, Table};
use gas_bench::scaling::default_sim_rank_cap;
use gas_bench::workloads::kingsford_collection;
use gas_core::algorithm::similarity_at_scale_distributed;
use gas_core::baselines::{allreduce_jaccard_distributed, exact_pairwise_parallel};
use gas_core::config::SimilarityConfig;
use gas_core::jaccard::jaccard_exact_pairwise;
use gas_core::minhash::MinHasher;
use gas_dstsim::machine::Machine;

fn main() {
    let collection = kingsford_collection(0.05);
    let machine = Machine::stampede2_knl();
    let sim_ranks = default_sim_rank_cap();
    println!(
        "Common corpus: n = {} samples, nnz = {}, density = {:.2e}\n",
        collection.n(),
        collection.nnz(),
        collection.density()
    );

    let mut table = Table::new(
        "Table II analogue: tool-class comparison on a common corpus",
        &["tool_class", "paper_counterpart", "ranks", "similarity", "time", "max_abs_error"],
    );

    // Reference for error measurement.
    let t0 = Instant::now();
    let exact = jaccard_exact_pairwise(&collection);
    let exact_time = t0.elapsed().as_secs_f64();
    table.push_row(vec![
        "exact single-thread".into(),
        "DSM-like".into(),
        "1".into(),
        "Jaccard (exact)".into(),
        format_seconds(exact_time),
        "0".into(),
    ]);

    let t0 = Instant::now();
    let parallel = exact_pairwise_parallel(&collection);
    let par_time = t0.elapsed().as_secs_f64();
    table.push_row(vec![
        "exact single-node (Rayon)".into(),
        "DSM-like".into(),
        "1".into(),
        "Jaccard (exact)".into(),
        format_seconds(par_time),
        format!("{:.1e}", exact.max_similarity_diff(&parallel).unwrap()),
    ]);

    for sketch_size in [128usize, 1024] {
        let t0 = Instant::now();
        let approx = MinHasher::new(sketch_size).unwrap().approximate_similarity(&collection);
        let mh_time = t0.elapsed().as_secs_f64();
        let err = exact.similarity().max_abs_diff(&approx).unwrap();
        table.push_row(vec![
            format!("MinHash sketch s={sketch_size}"),
            "Mash-like".into(),
            "1".into(),
            "Jaccard (approx.)".into(),
            format_seconds(mh_time),
            format!("{err:.3}"),
        ]);
    }

    let config = SimilarityConfig::with_batches(4);
    let t0 = Instant::now();
    let allreduce =
        allreduce_jaccard_distributed(&collection, &config, sim_ranks, &machine).unwrap();
    let allreduce_time = t0.elapsed().as_secs_f64();
    table.push_row(vec![
        "allreduce-distributed".into(),
        "MapReduce-era schemes".into(),
        sim_ranks.to_string(),
        "Jaccard (exact)".into(),
        format_seconds(allreduce_time),
        format!("{:.1e}", exact.max_similarity_diff(&allreduce.result).unwrap()),
    ]);

    let t0 = Instant::now();
    let ours = similarity_at_scale_distributed(&collection, &config, sim_ranks, &machine).unwrap();
    let ours_time = t0.elapsed().as_secs_f64();
    table.push_row(vec![
        "SimilarityAtScale (this paper)".into(),
        "GenomeAtScale".into(),
        sim_ranks.to_string(),
        "Jaccard (exact)".into(),
        format_seconds(ours_time),
        format!("{:.1e}", exact.max_similarity_diff(&ours.result).unwrap()),
    ]);

    table.print();
    let path = table
        .write_csv(gas_bench::report::results_dir(), "table2_tool_comparison")
        .expect("write CSV");
    println!("CSV written to {}", path.display());

    println!(
        "\nCommunication volume: SimilarityAtScale moved {} bytes/rank vs {} bytes/rank for the allreduce scheme.",
        ours.aggregate.total_bytes_sent / ours.nranks as u64,
        allreduce.aggregate.total_bytes_sent / allreduce.nranks as u64
    );
    println!(
        "Paper context (Table II): GenomeAtScale handles 446,506 samples / 170 TB on 1024 nodes — \
         orders of magnitude beyond the single-node exact (DSM: 435 samples) and sketching (Mash: 54,118 samples) tools."
    );
}
