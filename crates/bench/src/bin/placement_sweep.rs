//! Placement & autotuning sweep — the `gas-plan` acceptance experiment.
//!
//! Two halves, one report (`results/placement_sweep.{json,csv}`):
//!
//! **Placement.** A skewed serving fixture — two large, hot segments
//! that every query targets plus a tail of small fresh segments nothing
//! probes — is served at p = 4 over a window of batches under three
//! placements: all segments sharded (the keyed exchange fetches hot
//! candidates every batch), all segments replicated (the install ships
//! the cold tail too), and the [`PlacementPlanner`]'s mixed plan fed
//! from the live `gas_plan_segment_*` probe-heat counters. Total wire
//! bytes (install + every batch, summed over ranks) must come out
//! lowest for the planned placement, and its answers must stay
//! bit-identical to the single-rank engine.
//!
//! **Autotuning.** The [`Autotuner`] picks the SUMMA replication factor
//! and the LSH signature length/split from machine parameters
//! (measured `results/machine_params.json` when present, the paper
//! preset otherwise). Both choices are held against brute force: the
//! grid choice's model-priced cost must stay within 2× of the best
//! replication factor found by running the distributed product at every
//! divisor, and the tuned LSH config's measured throughput must reach
//! at least half of the best recall-feasible configuration found by
//! grid-searching `(length, split)`.
//!
//! The report is written *before* any assertion fires, so CI always
//! uploads the artifact. `GAS_PLAN_TINY=1` selects the seconds-scale
//! smoke configuration gated by `bench_trend --plan` against
//! `bench/baselines/placement_sweep.tiny.json`.

use std::time::Instant;

use gas_bench::report::Table;
use gas_bench::workloads::synthetic_collection;
use gas_core::algorithm::similarity_at_scale_distributed;
use gas_core::config::SimilarityConfig;
use gas_core::costmodel::ProjectionInput;
use gas_core::indicator::SampleCollection;
use gas_dstsim::machine::Machine;
use gas_dstsim::runtime::Runtime;
use gas_index::dist::{dist_query_reader_batch_planned, install_placement, SegmentPlacement};
use gas_index::{
    exact_top_k, IndexConfig, IndexOptions, IndexWriter, Neighbor, QueryEngine, QueryOptions,
};
use gas_plan::{
    Autotuner, MachineParams, PlacementPlanner, PlannerConfig, SegmentObservation, WorkloadProfile,
};

fn tiny() -> bool {
    std::env::var("GAS_PLAN_TINY").is_ok_and(|v| v == "1")
}

/// The skewed serving fixture: `hot_families` large families (one
/// committed segment each) that every query targets, then `fresh_families`
/// small ones (one commit each) that no query touches.
struct Fixture {
    hot_families: usize,
    hot_members: usize,
    fresh_families: usize,
    fresh_members: usize,
    queries: usize,
    window: usize,
    signature_len: usize,
}

impl Fixture {
    fn new() -> Self {
        if tiny() {
            Fixture {
                hot_families: 2,
                hot_members: 20,
                fresh_families: 8,
                fresh_members: 4,
                queries: 6,
                window: 6,
                signature_len: 64,
            }
        } else {
            Fixture {
                hot_families: 2,
                hot_members: 40,
                fresh_families: 8,
                fresh_members: 6,
                queries: 8,
                window: 8,
                signature_len: 64,
            }
        }
    }

    /// Family `f`, member `m`: a 400-element core shared by the family
    /// plus a 50-element private extension — sibling Jaccard exactly
    /// 400 / 500 = 0.8, cross-family 0.
    fn member(f: usize, m: usize) -> Vec<u64> {
        let base = f as u64 * 100_000;
        let mut s: Vec<u64> = (base..base + 400).collect();
        s.extend(base + 50_000 + m as u64 * 60..base + 50_000 + m as u64 * 60 + 50);
        s
    }

    /// All samples in commit order: hot families first, fresh after.
    fn collection(&self) -> SampleCollection {
        let mut samples = Vec::new();
        for f in 0..self.hot_families {
            for m in 0..self.hot_members {
                samples.push(Self::member(f, m));
            }
        }
        for f in 0..self.fresh_families {
            for m in 0..self.fresh_members {
                samples.push(Self::member(self.hot_families + f, m));
            }
        }
        SampleCollection::from_sets(samples).expect("valid fixture sets")
    }

    /// One committed segment per family, in collection order.
    fn writer(&self, collection: &SampleCollection, config: &IndexConfig) -> IndexWriter {
        let mut writer = IndexOptions::from_config(*config).open_writer().expect("open writer");
        let mut next = 0usize;
        let sizes = std::iter::repeat(self.hot_members)
            .take(self.hot_families)
            .chain(std::iter::repeat(self.fresh_members).take(self.fresh_families));
        for size in sizes {
            for _ in 0..size {
                writer
                    .add(format!("s{next}"), collection.sample(next).to_vec())
                    .expect("add sample");
                next += 1;
            }
            writer.commit().expect("commit segment");
        }
        writer
    }

    /// Queries drawn from the hot families only — the skew.
    fn queries(&self, collection: &SampleCollection) -> Vec<Vec<u64>> {
        let hot = self.hot_families * self.hot_members;
        (0..self.queries).map(|i| collection.sample((i * 7) % hot).to_vec()).collect()
    }
}

/// Serve `window` batches at `p` ranks under one placement: install,
/// then batch after batch through the planned path. Returns the wire
/// bytes summed over every rank (install + all batches) and whether
/// every rank's answers matched the single-rank reference throughout.
#[allow(clippy::too_many_arguments)]
fn run_placement(
    p: usize,
    reader: &gas_index::IndexReader,
    collection: &SampleCollection,
    queries: &[Vec<u64>],
    opts: &QueryOptions,
    window: usize,
    placements: &[SegmentPlacement],
    reference: &[Vec<Neighbor>],
) -> (u64, bool) {
    let out = Runtime::new(p)
        .run(|ctx| {
            let (planned, install) =
                ctx.expect_ok("install", install_placement(ctx.world(), reader, placements, None));
            let mut wire = install.install_bytes;
            let mut identical = true;
            for _ in 0..window {
                let q = if ctx.rank() == 0 { Some(queries) } else { None };
                let (answers, stats) = ctx.expect_ok(
                    "planned batch",
                    dist_query_reader_batch_planned(
                        ctx.world(),
                        reader,
                        Some(collection),
                        q,
                        opts,
                        &planned,
                    ),
                );
                wire += stats.wire_bytes();
                identical &= answers == reference;
            }
            (wire, identical)
        })
        .expect("placement run");
    let total: u64 = out.results.iter().map(|(wire, _)| *wire as u64).sum();
    let identical = out.results.iter().all(|(_, ok)| *ok);
    (total, identical)
}

/// Repetition-averaged seconds per call of `f` (at least ~0.2 s of work
/// or the rep cap, whichever comes first).
fn time_averaged<F: FnMut()>(mut f: F) -> f64 {
    let mut reps = 1usize;
    loop {
        let t = Instant::now();
        for _ in 0..reps {
            f();
        }
        let elapsed = t.elapsed().as_secs_f64();
        if elapsed >= 0.2 || reps >= 256 {
            return elapsed / reps as f64;
        }
        reps *= 4;
    }
}

/// Score-weighted recall of `got` against the exact answers: the sum of
/// true similarities the approximate list captured over the sum the
/// exact list holds — robust to ties (a family of equal-similarity
/// siblings can satisfy a slot with any member).
fn scored_recall(
    collection: &SampleCollection,
    queries: &[Vec<u64>],
    got: &[Vec<Neighbor>],
    top_k: usize,
) -> f64 {
    let mut captured = 0.0;
    let mut ideal = 0.0;
    for (q, hits) in queries.iter().zip(got) {
        let full = exact_top_k(collection, q, collection.n());
        ideal += full.iter().take(top_k).map(|n| n.score).sum::<f64>();
        for hit in hits {
            captured += full.iter().find(|n| n.id == hit.id).map_or(0.0, |n| n.score);
        }
    }
    if ideal == 0.0 {
        return 1.0;
    }
    (captured / ideal).min(1.0)
}

/// Measured queries/second of one engine configuration over the batch.
fn measure_qps(engine: &QueryEngine, queries: &[Vec<u64>], opts: &QueryOptions) -> f64 {
    let per_call = time_averaged(|| {
        std::hint::black_box(engine.query_batch(queries, opts).expect("query batch"));
    });
    queries.len() as f64 / per_call
}

fn main() {
    let fx = Fixture::new();
    let params = MachineParams::from_report_or_paper("results/machine_params.json");
    println!("machine parameters from: {}", params.source);

    // ---- placement: skewed fixture, three strategies at p = 4 ----

    let collection = fx.collection();
    let config = IndexConfig::default().with_signature_len(fx.signature_len).with_threshold(0.4);
    let writer = fx.writer(&collection, &config);
    let reader = writer.reader();
    let queries = fx.queries(&collection);
    let opts = QueryOptions { top_k: 5, rerank_exact: false, ..Default::default() };
    let engine = QueryEngine::snapshot_with_collection(reader.clone(), &collection);
    let reference = engine.query_batch(&queries, &opts).expect("single-rank reference");

    // Observe serving heat on the single-rank engine, then plan from the
    // per-segment counters exactly as a serving frontend would.
    gas_obs::reset_metrics();
    engine.query_batch(&queries, &opts).expect("heat warmup");
    let snap = gas_obs::snapshot();
    let stats = reader.segment_stats();
    let hot_floor = fx.hot_members;
    let observations: Vec<SegmentObservation> = stats
        .iter()
        .map(|s| {
            let obs = SegmentObservation::from_stats(s, &snap, 1);
            if s.rows >= hot_floor {
                // Settled segments: the planner's default horizon.
                obs
            } else {
                // Fresh segments churn within the serving window.
                obs.with_residency(2.0)
            }
        })
        .collect();
    let p = 4usize;
    let planner = PlacementPlanner::new(params.clone(), PlannerConfig::new(p, fx.signature_len))
        .expect("valid planner");
    let plan = planner.plan(&observations).expect("plan");
    let planned_placements = plan.placements();
    println!(
        "plan: {} replicated, {} sharded (predicted {:.3e} s/batch/rank)",
        plan.replicated(),
        plan.sharded(),
        plan.predicted_batch_seconds()
    );

    let segments = stats.len();
    let (shard_total, shard_ok) = run_placement(
        p,
        &reader,
        &collection,
        &queries,
        &opts,
        fx.window,
        &vec![SegmentPlacement::Sharded; segments],
        &reference,
    );
    let (repl_total, repl_ok) = run_placement(
        p,
        &reader,
        &collection,
        &queries,
        &opts,
        fx.window,
        &vec![SegmentPlacement::Replicated; segments],
        &reference,
    );
    let (planned_total, planned_ok) = run_placement(
        p,
        &reader,
        &collection,
        &queries,
        &opts,
        fx.window,
        &planned_placements,
        &reference,
    );
    let planned_beats_both = planned_total <= shard_total && planned_total <= repl_total;
    let all_identical = shard_ok && repl_ok && planned_ok;

    // ---- autotune: grid replication vs the measured divisor sweep ----

    let grid_p = if tiny() { 4usize } else { 8 };
    let grid_coll = if tiny() {
        synthetic_collection(8_000, 32, 0.05, 11)
    } else {
        synthetic_collection(20_000, 48, 0.05, 11)
    };
    let machine = Machine::stampede2_knl();
    let cost_model = params.to_cost_model();
    let mut measured: Vec<(usize, f64, u64)> = Vec::new();
    for c in 1..=grid_p {
        if grid_p % c != 0 {
            continue;
        }
        let sim_config = SimilarityConfig::with_batches(2).with_replication(c);
        match similarity_at_scale_distributed(&grid_coll, &sim_config, grid_p, &machine) {
            Ok(summary) => {
                let priced = summary
                    .reports
                    .iter()
                    .map(|r| cost_model.predicted_seconds(r))
                    .fold(0.0f64, f64::max);
                let flops: u64 = summary.reports.iter().map(|r| r.flops).sum();
                measured.push((c, priced, flops));
            }
            Err(e) => println!("replication c={c} infeasible on this grid: {e}"),
        }
    }
    assert!(!measured.is_empty(), "no feasible replication factor ran");
    let tuner = Autotuner::new(params.clone()).expect("valid tuner");
    let total_flops = measured[0].2 as f64;
    let grid_input = ProjectionInput {
        n_samples: grid_coll.n(),
        total_nonzeros: grid_coll.nnz() as f64,
        total_flops,
        ranks: grid_p,
        mem_words_per_rank: (params.mem_per_rank / 8) as f64,
        replication: 1,
    };
    let grid_choice = tuner.tune_grid(&grid_input).expect("grid choice");
    let best_priced = measured.iter().map(|&(_, priced, _)| priced).fold(f64::INFINITY, f64::min);
    let auto_priced = measured
        .iter()
        .find(|&&(c, _, _)| c == grid_choice.replication)
        .map(|&(_, priced, _)| priced)
        .unwrap_or(f64::INFINITY);
    let grid_ratio = auto_priced / best_priced;
    println!(
        "grid: auto c={} priced {:.3e} s, best measured {:.3e} s (ratio {:.3})",
        grid_choice.replication, auto_priced, best_priced, grid_ratio
    );

    // ---- autotune: LSH (length, split) vs the measured grid search ----

    let lsh_lens: &[usize] = if tiny() { &[32, 64] } else { &[32, 64, 128] };
    let lsh_opts = QueryOptions { top_k: 5, rerank_exact: true, ..Default::default() };
    let recall_floor = 0.8;
    let mut best_feasible_qps = 0.0f64;
    let mut best_any_qps = 0.0f64;
    for &len in lsh_lens {
        for split in gas_index::LshParams::divisor_splits(len).expect("splits") {
            // Degenerate splits (one band or one row) have a threshold
            // pinned to an endpoint and no realizable config — skip.
            let threshold = split.threshold();
            if !(threshold > 0.0 && threshold < 1.0) {
                continue;
            }
            let cfg = IndexConfig::default().with_signature_len(len).with_threshold(threshold);
            let index =
                IndexOptions::from_config(cfg).build_index(&collection).expect("grid-search index");
            let engine = QueryEngine::with_collection(&index, &collection);
            let answers = engine.query_batch(&queries, &lsh_opts).expect("grid-search batch");
            let rec = scored_recall(&collection, &queries, &answers, lsh_opts.top_k);
            let qps = measure_qps(&engine, &queries, &lsh_opts);
            best_any_qps = best_any_qps.max(qps);
            if rec >= recall_floor {
                best_feasible_qps = best_feasible_qps.max(qps);
            }
        }
    }
    let best_qps = if best_feasible_qps > 0.0 { best_feasible_qps } else { best_any_qps };

    // The tuner prices the same workload: profile from the bench reports
    // when present, with the sample count pinned to this fixture.
    let profile =
        WorkloadProfile::from_reports("results/query_throughput.json", "results/comm_volume.json")
            .unwrap_or_default();
    let profile = WorkloadProfile { n_samples: collection.n(), ..profile };
    let lsh_choice = tuner.tune_lsh(&profile, lsh_lens).expect("lsh choice");
    let auto_cfg = IndexConfig::default()
        .with_signature_len(lsh_choice.signature_len)
        .with_threshold(lsh_choice.params.threshold());
    let auto_index =
        IndexOptions::from_config(auto_cfg).build_index(&collection).expect("auto index");
    let auto_engine = QueryEngine::with_collection(&auto_index, &collection);
    let auto_answers = auto_engine.query_batch(&queries, &lsh_opts).expect("auto batch");
    let auto_recall = scored_recall(&collection, &queries, &auto_answers, lsh_opts.top_k);
    let auto_qps = measure_qps(&auto_engine, &queries, &lsh_opts);
    let lsh_ratio = auto_qps / best_qps.max(1e-9);
    println!(
        "lsh: auto len={} split=({}, {}) qps {:.0} recall {:.3}, best grid-searched {:.0} \
         (ratio {:.3})",
        lsh_choice.signature_len,
        lsh_choice.params.bands(),
        lsh_choice.params.rows(),
        auto_qps,
        auto_recall,
        best_qps,
        lsh_ratio
    );

    let tier_factor = tuner
        .tune_tier_factor(collection.n(), fx.fresh_members, fx.queries as f64)
        .expect("tier factor");

    // ---- report first, assertions after ----

    let ok = |b: bool| if b { "1" } else { "0" }.to_string();
    let mut table = Table::new(
        "Placement & autotuning sweep (gas-plan acceptance)",
        &["kind", "name", "value", "ok"],
    );
    table.push_row(vec![
        "placement".into(),
        "all_shard_total_bytes".into(),
        shard_total.to_string(),
        "1".into(),
    ]);
    table.push_row(vec![
        "placement".into(),
        "all_replicate_total_bytes".into(),
        repl_total.to_string(),
        "1".into(),
    ]);
    table.push_row(vec![
        "placement".into(),
        "planned_total_bytes".into(),
        planned_total.to_string(),
        ok(planned_beats_both),
    ]);
    table.push_row(vec![
        "placement".into(),
        "planned_identical".into(),
        ok(all_identical),
        ok(all_identical),
    ]);
    table.push_row(vec![
        "placement".into(),
        "replicated_segments".into(),
        plan.replicated().to_string(),
        ok(plan.replicated() >= 1),
    ]);
    table.push_row(vec![
        "placement".into(),
        "sharded_segments".into(),
        plan.sharded().to_string(),
        ok(plan.sharded() >= 1),
    ]);
    table.push_row(vec![
        "autotune".into(),
        "grid_cost_ratio".into(),
        format!("{grid_ratio:.4}"),
        ok(grid_ratio <= 2.0),
    ]);
    table.push_row(vec![
        "autotune".into(),
        "grid_replication".into(),
        grid_choice.replication.to_string(),
        "1".into(),
    ]);
    table.push_row(vec![
        "autotune".into(),
        "lsh_throughput_ratio".into(),
        format!("{lsh_ratio:.4}"),
        ok(lsh_ratio >= 0.5),
    ]);
    table.push_row(vec![
        "autotune".into(),
        "lsh_signature_len".into(),
        lsh_choice.signature_len.to_string(),
        "1".into(),
    ]);
    table.push_row(vec![
        "autotune".into(),
        "lsh_recall".into(),
        format!("{auto_recall:.4}"),
        "1".into(),
    ]);
    table.push_row(vec![
        "autotune".into(),
        "tier_factor".into(),
        tier_factor.to_string(),
        ok((2..=8).contains(&tier_factor)),
    ]);
    table.print();
    let dir = gas_bench::report::results_dir();
    table.write_json(&dir, "placement_sweep").expect("write placement_sweep.json");
    table.write_csv(&dir, "placement_sweep").expect("write placement_sweep.csv");

    assert!(all_identical, "a distributed placement diverged from the single-rank engine");
    assert!(
        planned_beats_both,
        "planned placement moved {planned_total} wire bytes vs all-shard {shard_total} / \
         all-replicate {repl_total}"
    );
    assert!(plan.replicated() >= 1, "the planner replicated no hot segment");
    assert!(plan.sharded() >= 1, "the planner sharded no fresh segment");
    assert!(
        grid_ratio <= 2.0,
        "tuned replication c={} priced {grid_ratio:.3}× the best measured divisor",
        grid_choice.replication
    );
    assert!(
        lsh_ratio >= 0.5,
        "tuned LSH config reached only {lsh_ratio:.3}× the best grid-searched throughput"
    );
    println!(
        "\nplacement_sweep OK: planned {planned_total} B ≤ shard {shard_total} B, \
         replicate {repl_total} B; grid ratio {grid_ratio:.3} ≤ 2, lsh ratio {lsh_ratio:.3} ≥ 0.5"
    );
}
