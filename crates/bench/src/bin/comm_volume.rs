//! Communication-volume comparison (the "communication-efficient" claim).
//!
//! The paper's central argument against MapReduce-style schemes is their
//! asymptotically larger communication: allreducing the `n × n` partial
//! result every batch moves `Θ(r · n²)` words per rank, while the 2.5D
//! product moves `O(z/√(cp) + c·n²/p)` per batch. This experiment runs
//! both implementations on identical workloads and rank counts and
//! reports the measured bytes per rank.

use gas_bench::report::Table;
use gas_bench::workloads::synthetic_collection;
use gas_core::algorithm::similarity_at_scale_distributed;
use gas_core::baselines::allreduce_jaccard_distributed;
use gas_core::config::SimilarityConfig;
use gas_dstsim::machine::Machine;

fn main() {
    let collection = synthetic_collection(20_000, 200, 0.02, 77);
    let machine = Machine::stampede2_knl();
    let batches = 6usize;
    println!(
        "Workload: n = {} samples, nnz = {}, {} batches\n",
        collection.n(),
        collection.nnz(),
        batches
    );

    let mut table = Table::new(
        "Communication volume: SimilarityAtScale vs allreduce baseline",
        &["ranks", "ours_bytes_per_rank", "allreduce_bytes_per_rank", "ratio"],
    );
    for &ranks in &[2usize, 4, 8, 16] {
        let config = SimilarityConfig::with_batches(batches);
        let ours = similarity_at_scale_distributed(&collection, &config, ranks, &machine).unwrap();
        let baseline =
            allreduce_jaccard_distributed(&collection, &config, ranks, &machine).unwrap();
        assert_eq!(
            ours.result.intersections(),
            baseline.result.intersections(),
            "both schemes must agree exactly"
        );
        let ours_b = ours.aggregate.total_bytes_sent / ranks as u64;
        let base_b = baseline.aggregate.total_bytes_sent / ranks as u64;
        table.push_row(vec![
            ranks.to_string(),
            ours_b.to_string(),
            base_b.to_string(),
            format!("{:.2}x", base_b as f64 / ours_b.max(1) as f64),
        ]);
    }
    table.print();
    let path = table.write_csv(gas_bench::report::results_dir(), "comm_volume").expect("write CSV");
    println!("CSV written to {}", path.display());
    println!(
        "\nExpected shape: the allreduce baseline moves a growing multiple of SimilarityAtScale's \
         traffic as ranks and batch counts grow (the paper's motivation for the algebraic formulation)."
    );
}
