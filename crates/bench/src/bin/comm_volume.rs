//! Communication-volume comparison (the "communication-efficient" claim).
//!
//! Two experiments, both writing CSV and JSON reports under `results/`
//! (CI uploads the JSON as a workflow artifact):
//!
//! 1. **Product volume.** The paper's central argument against
//!    MapReduce-style schemes is their asymptotically larger
//!    communication: allreducing the `n × n` partial result every batch
//!    moves `Θ(r · n²)` words per rank, while the 2.5D product moves
//!    `O(z/√(cp) + c·n²/p)` per batch. Both implementations run on
//!    identical workloads and rank counts; measured bytes per rank are
//!    reported.
//! 2. **Filter volume.** The distributed zero-row filter used to
//!    allgather raw 8-byte row indices; the paper's bitmap formulation
//!    OR-allreduces one *bit* per batch row. Both formulations run on the
//!    same per-rank row sets; the bitmap must move ≥ 8× fewer bytes.
//!
//! Set `GAS_COMM_VOLUME_TINY=1` to run a seconds-scale configuration (the
//! CI bench-smoke step).

use gas_bench::report::Table;
use gas_bench::workloads::synthetic_collection;
use gas_core::algorithm::similarity_at_scale_distributed;
use gas_core::baselines::allreduce_jaccard_distributed;
use gas_core::config::SimilarityConfig;
use gas_core::indicator::SampleCollection;
use gas_dstsim::machine::Machine;
use gas_dstsim::runtime::Runtime;
use gas_sparse::dist::filter::{dist_row_filter, dist_row_filter_indexed};

fn tiny() -> bool {
    std::env::var("GAS_COMM_VOLUME_TINY").is_ok_and(|v| v == "1")
}

/// Total bytes moved by one collective filter construction over `ranks`
/// simulated ranks, where rank `r` observes `per_rank_rows[r]`.
fn filter_bytes(
    ranks: usize,
    batch_rows: usize,
    per_rank_rows: &[Vec<usize>],
    bitmap: bool,
) -> u64 {
    let out = Runtime::new(ranks)
        .run(|ctx| {
            let rows = &per_rank_rows[ctx.rank()];
            let filter = if bitmap {
                dist_row_filter(ctx.world(), batch_rows, rows).unwrap()
            } else {
                dist_row_filter_indexed(ctx.world(), batch_rows, rows).unwrap()
            };
            filter.num_nonzero_rows()
        })
        .unwrap();
    let kept = out.results[0];
    assert!(out.results.iter().all(|&k| k == kept), "all ranks must agree on the filter");
    out.aggregate().total_bytes_sent
}

fn product_volume(collection: &SampleCollection, rank_counts: &[usize], batches: usize) {
    let machine = Machine::stampede2_knl();
    let mut table = Table::new(
        "Communication volume: SimilarityAtScale vs allreduce baseline",
        &["ranks", "ours_bytes_per_rank", "allreduce_bytes_per_rank", "ratio"],
    );
    for &ranks in rank_counts {
        let config = SimilarityConfig::with_batches(batches);
        let ours = similarity_at_scale_distributed(collection, &config, ranks, &machine).unwrap();
        let baseline = allreduce_jaccard_distributed(collection, &config, ranks, &machine).unwrap();
        assert_eq!(
            ours.result.intersections(),
            baseline.result.intersections(),
            "both schemes must agree exactly"
        );
        assert_eq!(ours.active_ranks, ranks, "rectangular grids use every rank");
        let ours_b = ours.aggregate.total_bytes_sent / ranks as u64;
        let base_b = baseline.aggregate.total_bytes_sent / ranks as u64;
        table.push_row(vec![
            ranks.to_string(),
            ours_b.to_string(),
            base_b.to_string(),
            format!("{:.2}x", base_b as f64 / ours_b.max(1) as f64),
        ]);
    }
    table.print();
    let dir = gas_bench::report::results_dir();
    let csv = table.write_csv(&dir, "comm_volume").expect("write CSV");
    let json = table.write_json(&dir, "comm_volume").expect("write JSON");
    println!("Reports written to {} and {}", csv.display(), json.display());
}

fn filter_volume(collection: &SampleCollection, rank_counts: &[usize]) {
    let batch_rows = collection.m() as usize;
    let columns = collection.batch_columns_all(0, collection.m());
    let mut table = Table::new(
        "Filter volume: bitmap OR-allreduce vs index allgather",
        &["ranks", "bitmap_bytes_per_rank", "indexed_bytes_per_rank", "ratio"],
    );
    let mut min_ratio = f64::INFINITY;
    for &ranks in rank_counts {
        // Rank r observes the rows of its block of the sample columns —
        // the same reading discipline as the distributed driver.
        let per_rank_rows: Vec<Vec<usize>> = (0..ranks)
            .map(|r| {
                let lo = r * collection.n() / ranks;
                let hi = (r + 1) * collection.n() / ranks;
                columns[lo..hi].iter().flatten().copied().collect()
            })
            .collect();
        let bitmap = filter_bytes(ranks, batch_rows, &per_rank_rows, true);
        let indexed = filter_bytes(ranks, batch_rows, &per_rank_rows, false);
        let ratio = indexed as f64 / bitmap.max(1) as f64;
        min_ratio = min_ratio.min(ratio);
        table.push_row(vec![
            ranks.to_string(),
            (bitmap / ranks as u64).to_string(),
            (indexed / ranks as u64).to_string(),
            format!("{ratio:.2}x"),
        ]);
    }
    table.print();
    let dir = gas_bench::report::results_dir();
    let csv = table.write_csv(&dir, "filter_volume").expect("write CSV");
    let json = table.write_json(&dir, "filter_volume").expect("write JSON");
    println!("Reports written to {} and {}", csv.display(), json.display());
    assert!(
        min_ratio >= 8.0,
        "bitmap filter must move ≥ 8× fewer bytes than the index allgather (worst ratio {min_ratio:.2}x)"
    );
}

fn main() {
    let (collection, rank_counts, batches): (SampleCollection, Vec<usize>, usize) = if tiny() {
        (synthetic_collection(4_000, 32, 0.02, 77), vec![2, 4, 8], 2)
    } else {
        (synthetic_collection(20_000, 200, 0.02, 77), vec![2, 4, 8, 16], 6)
    };
    println!(
        "Workload: n = {} samples, nnz = {}, {} batches{}\n",
        collection.n(),
        collection.nnz(),
        batches,
        if tiny() { " (tiny smoke configuration)" } else { "" }
    );

    product_volume(&collection, &rank_counts, batches);
    println!();
    filter_volume(&collection, &rank_counts);
    println!(
        "\nExpected shape: the allreduce baseline moves a growing multiple of SimilarityAtScale's \
         traffic as ranks and batch counts grow, and the bitmap filter collapses the per-batch \
         filter exchange to one bit per row (the paper's motivation for the algebraic formulation)."
    );
}
