//! Section III-C — the analytic BSP cost model and strong-scaling
//! efficiency.
//!
//! The paper derives the per-batch BSP cost
//! `T(z, n, M, c, p)` and shows that, in the memory-bound regime with the
//! batch size chosen to fill memory, the algorithm achieves `E_p = O(1)`
//! parallel efficiency. This experiment tabulates the model at the
//! paper's scales (32 → 32,768 ranks on a Stampede2-like machine) and
//! cross-checks the model's communication-volume trend against the
//! simulator's measured byte counters at the rank counts the host can
//! execute.

use gas_bench::report::{format_seconds, Table};
use gas_bench::workloads::synthetic_collection;
use gas_core::algorithm::similarity_at_scale_distributed;
use gas_core::config::SimilarityConfig;
use gas_core::costmodel::{fit_cost_model, CostObservation, PaperCostModel, ProjectionInput};
use gas_dstsim::machine::Machine;

fn main() {
    let machine = Machine::stampede2_knl();
    let model = PaperCostModel::new(machine.cost_model().unwrap());

    // Paper-scale problem: BIGSI-like totals.
    let base = ProjectionInput {
        n_samples: 446_506,
        total_nonzeros: 2.0e12,
        total_flops: 1.0e15,
        ranks: 32 * 64,
        mem_words_per_rank: machine.mem_per_rank() as f64 / 8.0,
        replication: 1,
    };

    let mut table = Table::new(
        "Analytic BSP cost model at paper scale (BIGSI-like totals)",
        &["nodes", "ranks", "total_cost", "efficiency_vs_64_nodes"],
    );
    for &nodes in &[64usize, 128, 256, 512, 1024] {
        let ranks = machine.total_ranks(nodes);
        let input = ProjectionInput { ranks, ..base };
        let cost = model.total_cost(&input).unwrap();
        let eff = model.strong_scaling_efficiency(&base, ranks.max(base.ranks)).unwrap_or(1.0);
        table.push_row(vec![
            nodes.to_string(),
            ranks.to_string(),
            format_seconds(cost),
            format!("{eff:.2}"),
        ]);
    }
    table.print();
    table.write_csv(gas_bench::report::results_dir(), "cost_model_scaling").expect("write CSV");

    // Cross-check: measured communication per rank on the simulator drops
    // as ranks are added, consistent with the z/sqrt(cp) + c n^2/p term.
    let collection = synthetic_collection(100_000, 96, 0.02, 5);
    let mut check = Table::new(
        "Simulator cross-check: measured bytes/rank vs model trend",
        &["ranks", "measured_bytes_per_rank", "model_bandwidth_words_per_batch"],
    );
    let mut observations: Vec<CostObservation> = Vec::new();
    for &ranks in &[4usize, 9, 16] {
        // The replicated filter vector is a constant per-rank overhead, so
        // the cross-check isolates the product traffic by disabling it.
        let config =
            SimilarityConfig { use_zero_row_filter: false, ..SimilarityConfig::with_batches(2) };
        let summary =
            similarity_at_scale_distributed(&collection, &config, ranks, &machine).unwrap();
        observations.extend(summary.reports.iter().map(CostObservation::from_report));
        let z = collection.nnz() as f64;
        let n = collection.n() as f64;
        let words = z / (ranks as f64).sqrt() + n * n / ranks as f64 + ranks as f64;
        check.push_row(vec![
            ranks.to_string(),
            (summary.aggregate.total_bytes_sent / ranks as u64).to_string(),
            format!("{words:.0}"),
        ]);
    }
    check.print();
    check.write_csv(gas_bench::report::results_dir(), "cost_model_crosscheck").expect("write CSV");

    // Fit the machine parameters from the measured per-rank reports and
    // publish them where the planner and autotuner (`gas-plan`,
    // `MachineParams::from_report`) read measured α/β/γ instead of the
    // preset constants. The simulator charges time from the preset
    // machine, so the fit recovering finite non-negative parameters is
    // the gate, not a tolerance on the values themselves.
    let fitted = fit_cost_model(&observations, machine.cost_model().unwrap())
        .expect("fit machine parameters from the scaling runs");
    let mut params = Table::new(
        "Fitted machine parameters (least squares over per-rank cost reports)",
        &["alpha", "beta", "gamma", "mem_per_rank", "stream_bw", "observations"],
    );
    params.push_row(vec![
        format!("{:e}", fitted.alpha),
        format!("{:e}", fitted.beta),
        format!("{:e}", fitted.gamma),
        fitted.mem_per_rank.to_string(),
        format!("{:e}", fitted.stream_bw),
        observations.len().to_string(),
    ]);
    params.print();
    let dir = gas_bench::report::results_dir();
    params.write_json(&dir, "machine_params").expect("write machine_params.json");
    params.write_csv(&dir, "machine_params").expect("write machine_params CSV");
    println!(
        "\nExpected shape: the analytic total cost falls ~proportionally with node count \
         (E_p stays O(1)), and the measured per-rank traffic follows the model's downward trend."
    );
}
