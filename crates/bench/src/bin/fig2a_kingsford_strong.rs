//! Figure 2a — Kingsford dataset, strong scaling.
//!
//! Paper protocol: the Kingsford/BBB indicator matrix is fixed; node
//! counts sweep 1 → 256 (32 → 8192 cores); the batch size doubles with the
//! node count (so the batch count halves, from 8192 at one node to 32 at
//! 256 nodes); the plotted quantity is the projected total time
//! (time/batch × #batches), which drops from ~20 h to well under an hour
//! with a sweet spot around 32 nodes.
//!
//! This reproduction runs a scaled-down Kingsford-like workload (same
//! density and sample-count proportions; see DESIGN.md) under the
//! simulated runtime and prints the same series: batches, time/batch
//! (measured and BSP-modeled at 32 ranks/node), and the projected total.

use gas_bench::report::Table;
use gas_bench::scaling::{strong_scaling, ScalingPoint, ScalingSpec};
use gas_bench::workloads::kingsford_collection;

fn main() {
    let collection = kingsford_collection(0.2);
    println!(
        "Kingsford-like workload: n = {} samples, m = {} attributes, nnz = {}, density = {:.2e}",
        collection.n(),
        collection.m(),
        collection.nnz(),
        collection.density()
    );
    let mut spec = ScalingSpec::new(
        "Figure 2a: Kingsford strong scaling",
        vec![1, 2, 4, 8, 16, 32, 64, 128, 256],
        64,
    );
    spec.replication = 1;
    let points = strong_scaling(&collection, &spec);

    let mut table = Table::new(&spec.name, &ScalingPoint::headers());
    for p in &points {
        table.push_row(p.row());
    }
    table.print();
    let path = table
        .write_csv(gas_bench::report::results_dir(), "fig2a_kingsford_strong")
        .expect("write CSV");
    println!("CSV written to {}", path.display());

    // Qualitative check mirrored from the paper: projected total time
    // decreases as nodes are added (batch count shrinks while per-batch
    // time stays roughly flat).
    let first = points.first().expect("at least one point");
    let last = points.last().expect("at least one point");
    println!(
        "\nProjected total time: {:.2}x reduction from {} node(s) to {} nodes (paper: ~20h -> <1h).",
        first.projected_total_seconds / last.projected_total_seconds.max(1e-9),
        first.nodes,
        last.nodes
    );
}
