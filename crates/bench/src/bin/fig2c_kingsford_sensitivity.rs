//! Figure 2c — Kingsford dataset, batch-size sensitivity.
//!
//! Paper protocol: 8 nodes, fixed dataset, the number of batches sweeps
//! 1024 → 16384. Per-batch time shrinks with smaller batches (0.67 s at
//! 16384 batches vs 6.78 s at 1024), but not proportionally — larger
//! batches amortize latency and bandwidth overheads — so the projected
//! total time *grows* with the batch count (from ~2 h to ~6 h). The
//! conclusion: pick the batch size to use all available memory.

use gas_bench::report::{format_seconds, Table};
use gas_bench::scaling::default_sim_rank_cap;
use gas_bench::workloads::kingsford_collection;
use gas_core::algorithm::similarity_at_scale_distributed;
use gas_core::config::SimilarityConfig;
use gas_dstsim::machine::Machine;

fn main() {
    let collection = kingsford_collection(0.05);
    let nodes = 8usize;
    let sim_ranks = default_sim_rank_cap().min(nodes);
    let machine = Machine::stampede2_knl();
    println!(
        "Kingsford-like workload: n = {}, nnz = {}; {} paper nodes, {} simulated ranks",
        collection.n(),
        collection.nnz(),
        nodes,
        sim_ranks
    );

    let mut table = Table::new(
        "Figure 2c: Kingsford batch-size sensitivity (8 nodes)",
        &["batches", "s_per_batch_meas", "projected_total", "bytes_per_rank"],
    );
    let batch_counts = [2usize, 4, 8, 16, 32, 64];
    let mut rows = Vec::new();
    for &batches in &batch_counts {
        let config = SimilarityConfig::with_batches(batches);
        let summary = similarity_at_scale_distributed(&collection, &config, sim_ranks, &machine)
            .expect("simulated run succeeds");
        let per_batch = summary.mean_batch_seconds();
        let total = per_batch * batches as f64;
        rows.push((batches, per_batch, total));
        table.push_row(vec![
            batches.to_string(),
            format!("{per_batch:.4}"),
            format_seconds(total),
            (summary.aggregate.total_bytes_sent / summary.nranks as u64).to_string(),
        ]);
    }
    table.print();
    let path = table
        .write_csv(gas_bench::report::results_dir(), "fig2c_kingsford_sensitivity")
        .expect("write CSV");
    println!("CSV written to {}", path.display());

    let (first, last) = (rows.first().unwrap(), rows.last().unwrap());
    println!(
        "\nPer-batch time shrinks {:.2}x as batches go {} -> {} (paper: 6.78s -> 0.67s),",
        first.1 / last.1.max(1e-12),
        first.0,
        last.0
    );
    println!(
        "but the projected total grows {:.2}x (paper: ~2h -> ~6h) — larger batches win.",
        last.2 / first.2.max(1e-12)
    );
}
