//! Figure 2d — BIGSI dataset, batch-size sensitivity.
//!
//! Paper protocol: 128 nodes, fixed BIGSI workload, batch count sweeps
//! 16384 → 262144. As in Figure 2c, per-batch time falls with smaller
//! batches (39.78 s → 24.14 s) but the projected total time grows
//! (~1 week → ~5 months), so the largest batch that fits memory is best.

use gas_bench::report::{format_seconds, Table};
use gas_bench::scaling::default_sim_rank_cap;
use gas_bench::workloads::bigsi_collection;
use gas_core::algorithm::similarity_at_scale_distributed;
use gas_core::config::SimilarityConfig;
use gas_dstsim::machine::Machine;

fn main() {
    let collection = bigsi_collection(0.002);
    let nodes = 128usize;
    let sim_ranks = default_sim_rank_cap().min(nodes);
    let machine = Machine::stampede2_knl();
    println!(
        "BIGSI-like workload: n = {}, nnz = {}; {} paper nodes, {} simulated ranks",
        collection.n(),
        collection.nnz(),
        nodes,
        sim_ranks
    );

    let mut table = Table::new(
        "Figure 2d: BIGSI batch-size sensitivity (128 nodes)",
        &["batches", "s_per_batch_meas", "projected_total", "bytes_per_rank"],
    );
    let batch_counts = [4usize, 8, 16, 32, 64, 128];
    let mut rows = Vec::new();
    for &batches in &batch_counts {
        let config = SimilarityConfig::with_batches(batches);
        let summary = similarity_at_scale_distributed(&collection, &config, sim_ranks, &machine)
            .expect("simulated run succeeds");
        let per_batch = summary.mean_batch_seconds();
        let total = per_batch * batches as f64;
        rows.push((batches, per_batch, total));
        table.push_row(vec![
            batches.to_string(),
            format!("{per_batch:.4}"),
            format_seconds(total),
            (summary.aggregate.total_bytes_sent / summary.nranks as u64).to_string(),
        ]);
    }
    table.print();
    let path = table
        .write_csv(gas_bench::report::results_dir(), "fig2d_bigsi_sensitivity")
        .expect("write CSV");
    println!("CSV written to {}", path.display());

    let (first, last) = (rows.first().unwrap(), rows.last().unwrap());
    println!(
        "\nPer-batch time shrinks {:.2}x as batches go {} -> {} (paper: 39.8s -> 24.1s),",
        first.1 / last.1.max(1e-12),
        first.0,
        last.0
    );
    println!(
        "but the projected total grows {:.2}x (paper: ~1 week -> ~5 months).",
        last.2 / first.2.max(1e-12)
    );
}
