//! Workload construction shared by the experiment binaries.
//!
//! Each workload is a scaled-down synthetic stand-in for a dataset of
//! Section V-A, built through `gas-genomics::datasets` (the substitution
//! is documented in `DESIGN.md`). The scale factors default to values that
//! run in seconds on a laptop; the `GAS_SCALE` environment variable
//! multiplies them for larger runs.

use gas_core::indicator::SampleCollection;
use gas_genomics::datasets::DatasetSpec;

/// Global scale multiplier read from `GAS_SCALE` (default 1.0).
pub fn scale_factor() -> f64 {
    std::env::var("GAS_SCALE").ok().and_then(|v| v.parse::<f64>().ok()).unwrap_or(1.0).max(0.01)
}

/// Kingsford-like workload (low variability, density ≈ 1.5e-4).
pub fn kingsford_collection(base_scale: f64) -> SampleCollection {
    let spec = DatasetSpec::kingsford_like(base_scale * scale_factor());
    SampleCollection::from_sorted_sets(spec.generate().expect("valid preset"))
        .expect("generated samples are sorted")
        .with_universe(spec.m_attributes as u64)
        .expect("universe covers generated values")
}

/// BIGSI-like workload (extremely sparse, highly skewed column density).
pub fn bigsi_collection(base_scale: f64) -> SampleCollection {
    let spec = DatasetSpec::bigsi_like(base_scale * scale_factor());
    SampleCollection::from_sorted_sets(spec.generate().expect("valid preset"))
        .expect("generated samples are sorted")
        .with_universe(spec.m_attributes as u64)
        .expect("universe covers generated values")
}

/// The paper's synthetic workload with explicit dimensions and density.
pub fn synthetic_collection(m: usize, n: usize, density: f64, seed: u64) -> SampleCollection {
    let spec = DatasetSpec::explicit(m, n, density, seed);
    SampleCollection::from_sorted_sets(spec.generate().expect("valid spec"))
        .expect("generated samples are sorted")
        .with_universe(m as u64)
        .expect("universe covers generated values")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_have_expected_shapes() {
        let k = kingsford_collection(0.004);
        assert!(k.n() >= 4);
        assert!(k.nnz() > 0);
        let b = bigsi_collection(0.00005);
        assert!(b.n() >= 8);
        let s = synthetic_collection(5000, 16, 0.01, 3);
        assert_eq!(s.n(), 16);
        assert!((s.density() - 0.01).abs() < 0.005);
    }

    #[test]
    fn scale_factor_defaults_to_one() {
        assert!((scale_factor() - 1.0).abs() < 1e-9 || scale_factor() > 0.0);
    }
}
