//! Cost-model-driven segment placement: replicate hot, shard fresh.
//!
//! The distributed reader can serve a segment two ways. **Sharded**: its
//! rows stay spread over the ranks and every batch fetches the candidate
//! rows it needs through the keyed exchange — cost proportional to the
//! segment's *traffic*. **Replicated**: every rank installs a full copy
//! once and serves its candidates locally — cost proportional to the
//! segment's *size*, paid once per placement epoch and amortized over the
//! batches the copy stays valid for. The planner prices both per segment
//! with the α–β–γ machine parameters and the observed probe heat
//! ([`SegmentObservation`]), then emits a [`PlacementPlan`] choosing the
//! cheaper side under a per-rank memory budget. Large, old, compacted
//! segments attract sustained candidate traffic and win replication;
//! fresh segments churn before an install pays off and stay sharded —
//! the paper's replication-versus-communication trade, applied to
//! serving.

use gas_index::dist::SegmentPlacement;
use gas_index::SegmentStats;
use gas_obs::{segment_counter_name, MetricsSnapshot};
use serde::{Deserialize, Serialize};

use crate::error::{PlanError, PlanResult};
use crate::machine::MachineParams;

/// Observed serving signal for one segment: size from
/// [`IndexReader::segment_stats`](gas_index::IndexReader::segment_stats),
/// heat from the `gas_plan_segment_*` probe counters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SegmentObservation {
    /// Segment id (stable across commits and placements).
    pub segment_id: u64,
    /// Stored rows — what a replica install ships.
    pub rows: usize,
    /// Rows still live under the tombstone set.
    pub live_rows: usize,
    /// Probe calls that hit this segment (one per query per batch).
    pub probes: u64,
    /// Candidate rows those probes produced — the segment's fetch traffic.
    pub candidate_rows: u64,
    /// Query batches the counters cover.
    pub batches_observed: u64,
    /// Expected batches until churn (compaction or deletion) invalidates
    /// a replica of this segment; `None` uses the planner's default
    /// horizon. Fresh segments get small values, settled ones large.
    pub expected_batches_resident: Option<f64>,
}

impl SegmentObservation {
    /// Join a segment's size stats with its probe-heat counters from a
    /// metrics snapshot. Counters that were never bumped read as zero —
    /// a cold segment, which the planner always shards.
    pub fn from_stats(
        stats: &SegmentStats,
        snapshot: &MetricsSnapshot,
        batches_observed: u64,
    ) -> Self {
        let probes = snapshot
            .counter(&segment_counter_name("gas_plan_segment_probes", stats.segment_id))
            .unwrap_or(0);
        let candidate_rows = snapshot
            .counter(&segment_counter_name("gas_plan_segment_candidates", stats.segment_id))
            .unwrap_or(0);
        SegmentObservation {
            segment_id: stats.segment_id,
            rows: stats.rows,
            live_rows: stats.live_rows,
            probes,
            candidate_rows,
            batches_observed,
            expected_batches_resident: None,
        }
    }

    /// Set the churn horizon for this segment.
    pub fn with_residency(mut self, batches: f64) -> Self {
        self.expected_batches_resident = Some(batches);
        self
    }
}

/// Planner knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlannerConfig {
    /// Ranks the placement serves on.
    pub ranks: usize,
    /// Words per shipped row (signature words plus the key word — what
    /// both the keyed fetch and a replica install move per row).
    pub row_words: usize,
    /// Default batches a replica stays valid before churn, for segments
    /// without an explicit residency.
    pub horizon_batches: f64,
    /// Fraction of per-rank memory the replicas may occupy.
    pub mem_budget_fraction: f64,
}

impl PlannerConfig {
    /// Config for `ranks` ranks serving signatures of `signature_len`
    /// words (the shipped row adds one key word).
    pub fn new(ranks: usize, signature_len: usize) -> Self {
        PlannerConfig {
            ranks,
            row_words: signature_len + 1,
            horizon_batches: 64.0,
            mem_budget_fraction: 0.5,
        }
    }

    fn validate(&self) -> PlanResult<()> {
        if self.ranks == 0 || self.row_words == 0 {
            return Err(PlanError::InvalidConfig(
                "placement needs at least one rank and a positive row width".to_string(),
            ));
        }
        if self.horizon_batches.is_nan() || self.horizon_batches <= 0.0 {
            return Err(PlanError::InvalidConfig("the churn horizon must be positive".to_string()));
        }
        if !(self.mem_budget_fraction > 0.0 && self.mem_budget_fraction <= 1.0) {
            return Err(PlanError::InvalidConfig(
                "mem_budget_fraction must lie in (0, 1]".to_string(),
            ));
        }
        Ok(())
    }
}

/// One segment's priced assignment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SegmentAssignment {
    /// Segment id.
    pub segment_id: u64,
    /// Chosen placement.
    pub placement: SegmentPlacement,
    /// Modeled per-batch per-rank seconds if served sharded (fetch
    /// traffic through the keyed exchange).
    pub shard_cost_seconds: f64,
    /// Modeled per-batch per-rank seconds if served replicated (install
    /// bytes amortized over the residency horizon).
    pub replicate_cost_seconds: f64,
}

/// The plan: one assignment per observed segment, in input order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementPlan {
    /// Per-segment assignments, in the order the observations were given
    /// (the reader's segment order when fed from `segment_stats`).
    pub assignments: Vec<SegmentAssignment>,
}

impl PlacementPlan {
    /// The placement vector in input order — what
    /// [`install_placement`](gas_index::dist::install_placement) and
    /// [`dist_query_reader_batch_planned`](gas_index::dist::dist_query_reader_batch_planned)
    /// consume.
    pub fn placements(&self) -> Vec<SegmentPlacement> {
        self.assignments.iter().map(|a| a.placement).collect()
    }

    /// The placement of a segment by id.
    pub fn placement_for(&self, segment_id: u64) -> Option<SegmentPlacement> {
        self.assignments.iter().find(|a| a.segment_id == segment_id).map(|a| a.placement)
    }

    /// Number of replicated segments.
    pub fn replicated(&self) -> usize {
        self.assignments.iter().filter(|a| a.placement == SegmentPlacement::Replicated).count()
    }

    /// Number of sharded segments.
    pub fn sharded(&self) -> usize {
        self.assignments.len() - self.replicated()
    }

    /// Modeled per-batch per-rank seconds of the chosen mixed placement.
    pub fn predicted_batch_seconds(&self) -> f64 {
        self.assignments
            .iter()
            .map(|a| match a.placement {
                SegmentPlacement::Replicated => a.replicate_cost_seconds,
                SegmentPlacement::Sharded => a.shard_cost_seconds,
            })
            .sum()
    }
}

/// Prices segment placements against machine parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementPlanner {
    params: MachineParams,
    config: PlannerConfig,
}

impl PlacementPlanner {
    /// A planner for the given machine and knobs.
    pub fn new(params: MachineParams, config: PlannerConfig) -> PlanResult<Self> {
        params.validate()?;
        config.validate()?;
        Ok(PlacementPlanner { params, config })
    }

    /// Per-batch per-rank seconds to serve a segment sharded: the foreign
    /// fraction of its observed candidate rows crosses the wire every
    /// batch.
    fn shard_cost(&self, obs: &SegmentObservation) -> f64 {
        let p = self.config.ranks as f64;
        let rows_per_batch = obs.candidate_rows as f64 / obs.batches_observed.max(1) as f64;
        self.params.beta * rows_per_batch * self.row_bytes() * (p - 1.0) / p
    }

    /// Per-batch per-rank seconds to serve a segment replicated: every
    /// rank installs the foreign fraction of all stored rows once,
    /// amortized over the batches the replica stays valid.
    fn replicate_cost(&self, obs: &SegmentObservation) -> f64 {
        let p = self.config.ranks as f64;
        let horizon = obs.expected_batches_resident.unwrap_or(self.config.horizon_batches).max(1.0);
        self.params.beta * obs.rows as f64 * self.row_bytes() * (p - 1.0) / p / horizon
    }

    fn row_bytes(&self) -> f64 {
        (self.config.row_words * 8) as f64
    }

    /// Emit the plan. Replication must win on price *and* carry observed
    /// heat (a never-probed segment stays sharded no matter its size),
    /// and the winners are admitted hottest-benefit-first until the
    /// per-rank memory budget is spent.
    pub fn plan(&self, observations: &[SegmentObservation]) -> PlanResult<PlacementPlan> {
        let mut assignments: Vec<SegmentAssignment> = observations
            .iter()
            .map(|obs| {
                let shard = self.shard_cost(obs);
                let replicate = self.replicate_cost(obs);
                let wants_replica = obs.probes > 0 && replicate < shard;
                SegmentAssignment {
                    segment_id: obs.segment_id,
                    placement: if wants_replica {
                        SegmentPlacement::Replicated
                    } else {
                        SegmentPlacement::Sharded
                    },
                    shard_cost_seconds: shard,
                    replicate_cost_seconds: replicate,
                }
            })
            .collect();

        // Enforce the memory budget: keep the replicas with the largest
        // modeled benefit, demote the rest back to sharded.
        let budget_bytes = self.params.mem_per_rank as f64 * self.config.mem_budget_fraction;
        let mut candidates: Vec<usize> = (0..assignments.len())
            .filter(|&i| assignments[i].placement == SegmentPlacement::Replicated)
            .collect();
        candidates.sort_by(|&a, &b| {
            let benefit = |i: usize| {
                assignments[i].shard_cost_seconds - assignments[i].replicate_cost_seconds
            };
            benefit(b)
                .total_cmp(&benefit(a))
                .then(assignments[a].segment_id.cmp(&assignments[b].segment_id))
        });
        let mut spent = 0.0;
        for i in candidates {
            let bytes = observations[i].rows as f64 * self.row_bytes();
            if spent + bytes <= budget_bytes {
                spent += bytes;
            } else {
                assignments[i].placement = SegmentPlacement::Sharded;
            }
        }

        let plan = PlacementPlan { assignments };
        gas_obs::counter("gas_plan_plans_total").inc();
        gas_obs::gauge("gas_plan_replicated_segments").set(plan.replicated() as i64);
        gas_obs::gauge("gas_plan_sharded_segments").set(plan.sharded() as i64);
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> MachineParams {
        MachineParams::paper_machine()
    }

    fn obs(id: u64, rows: usize, candidates_per_batch: u64, residency: f64) -> SegmentObservation {
        SegmentObservation {
            segment_id: id,
            rows,
            live_rows: rows,
            probes: if candidates_per_batch > 0 { 10 } else { 0 },
            candidate_rows: candidates_per_batch * 10,
            batches_observed: 10,
            expected_batches_resident: Some(residency),
        }
    }

    fn planner() -> PlacementPlanner {
        PlacementPlanner::new(params(), PlannerConfig::new(4, 64)).unwrap()
    }

    #[test]
    fn hot_settled_segments_replicate_fresh_and_cold_ones_shard() {
        let p = planner();
        let observations = vec![
            // Hot and long-lived: 60 candidate rows per batch, 100 stored
            // rows, resident 64 batches → install amortizes to ~1.6
            // rows/batch, far below the 60 it saves.
            obs(1, 100, 60, 64.0),
            // Fresh: same traffic but churns in 2 batches → install costs
            // 50 rows/batch against 6 saved.
            obs(2, 100, 6, 2.0),
            // Cold: never probed, stays sharded no matter the size.
            SegmentObservation { probes: 0, candidate_rows: 0, ..obs(3, 5000, 0, 64.0) },
        ];
        let plan = p.plan(&observations).unwrap();
        assert_eq!(plan.placement_for(1), Some(SegmentPlacement::Replicated));
        assert_eq!(plan.placement_for(2), Some(SegmentPlacement::Sharded));
        assert_eq!(plan.placement_for(3), Some(SegmentPlacement::Sharded));
        assert_eq!((plan.replicated(), plan.sharded()), (1, 2));
        // Output preserves input order.
        assert_eq!(
            plan.placements(),
            vec![
                SegmentPlacement::Replicated,
                SegmentPlacement::Sharded,
                SegmentPlacement::Sharded
            ]
        );
        // The mixed plan is priced at most as high as either pure plan.
        let pure_shard: f64 = plan.assignments.iter().map(|a| a.shard_cost_seconds).sum();
        let pure_replicate: f64 = plan.assignments.iter().map(|a| a.replicate_cost_seconds).sum();
        assert!(plan.predicted_batch_seconds() <= pure_shard + 1e-15);
        assert!(plan.predicted_batch_seconds() <= pure_replicate + 1e-15);
    }

    #[test]
    fn single_rank_plans_everything_sharded() {
        let p = PlacementPlanner::new(params(), PlannerConfig::new(1, 64)).unwrap();
        let plan = p.plan(&[obs(1, 100, 60, 64.0)]).unwrap();
        // With p = 1 nothing crosses the wire either way; replication
        // cannot strictly win, so the cheaper no-op (sharded) stands.
        assert_eq!(plan.placement_for(1), Some(SegmentPlacement::Sharded));
    }

    #[test]
    fn memory_budget_admits_best_benefit_first() {
        let mut machine = params();
        // Budget fits exactly one 100-row replica of 65-word rows.
        machine.mem_per_rank = 2 * 100 * 65 * 8;
        let config = PlannerConfig { mem_budget_fraction: 0.5, ..PlannerConfig::new(4, 64) };
        let p = PlacementPlanner::new(machine, config).unwrap();
        let plan = p
            .plan(&[
                obs(1, 100, 30, 64.0), // replica-worthy, smaller benefit
                obs(2, 100, 90, 64.0), // replica-worthy, larger benefit
            ])
            .unwrap();
        assert_eq!(plan.placement_for(2), Some(SegmentPlacement::Replicated));
        assert_eq!(plan.placement_for(1), Some(SegmentPlacement::Sharded));
    }

    #[test]
    fn observations_join_stats_with_heat_counters() {
        let stats = SegmentStats { segment_id: 7, rows: 40, live_rows: 33 };
        let mut snap = MetricsSnapshot::default();
        snap.set_counter(&segment_counter_name("gas_plan_segment_probes", 7), 12);
        snap.set_counter(&segment_counter_name("gas_plan_segment_candidates", 7), 340);
        let o = SegmentObservation::from_stats(&stats, &snap, 6);
        assert_eq!((o.segment_id, o.rows, o.live_rows), (7, 40, 33));
        assert_eq!((o.probes, o.candidate_rows, o.batches_observed), (12, 340, 6));
        // A segment with no counters reads cold.
        let cold = SegmentObservation::from_stats(
            &SegmentStats { segment_id: 9, rows: 4, live_rows: 4 },
            &snap,
            6,
        );
        assert_eq!((cold.probes, cold.candidate_rows), (0, 0));
        assert_eq!(cold.with_residency(3.0).expected_batches_resident, Some(3.0));
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        assert!(PlacementPlanner::new(params(), PlannerConfig::new(0, 64)).is_err());
        let bad = PlannerConfig { horizon_batches: 0.0, ..PlannerConfig::new(4, 64) };
        assert!(PlacementPlanner::new(params(), bad).is_err());
        let bad = PlannerConfig { mem_budget_fraction: 0.0, ..PlannerConfig::new(4, 64) };
        assert!(PlacementPlanner::new(params(), bad).is_err());
        let mut bad_machine = params();
        bad_machine.beta = f64::NAN;
        assert!(PlacementPlanner::new(bad_machine, PlannerConfig::new(4, 64)).is_err());
    }
}
