//! Minimal reader for the JSON reports the bench binaries emit.
//!
//! The planner and autotuner consume reports written by gas-bench's
//! `Table::write_json` (`{"title": ..., "rows": [{header: value, ...}]}`),
//! but gas-bench depends on gas-plan (the `placement_sweep` binary), so
//! this crate carries its own reader for exactly that shape instead of
//! importing the bench crate. Like the bench-side reader it is
//! deliberately *not* a general JSON parser: anything that is not a
//! report written by `write_json` is a typed [`PlanError::Parse`], so a
//! stale or hand-edited report fails loudly instead of reading as empty.

use std::collections::BTreeMap;
use std::path::Path;

use crate::error::{PlanError, PlanResult};

/// One report row as a header → raw-value map. Scalar values keep their
/// raw JSON text (`"3.5"`, `"6"`); string values are unescaped.
pub type ReportRow = BTreeMap<String, String>;

/// Read the rows of a `Table::write_json` report.
pub fn read_report_rows(path: impl AsRef<Path>) -> PlanResult<Vec<ReportRow>> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path)
        .map_err(|e| PlanError::Io(format!("{}: {e}", path.display())))?;
    parse_report(&text).map_err(|msg| PlanError::Parse(format!("{}: {msg}", path.display())))
}

/// Fetch a named field from a row, as raw text.
pub fn field<'a>(row: &'a ReportRow, name: &str) -> PlanResult<&'a str> {
    row.get(name)
        .map(String::as_str)
        .ok_or_else(|| PlanError::Parse(format!("report row is missing field \"{name}\"")))
}

/// Fetch a named field from a row, parsed as `f64`.
pub fn number(row: &ReportRow, name: &str) -> PlanResult<f64> {
    let raw = field(row, name)?;
    raw.parse::<f64>()
        .map_err(|_| PlanError::Parse(format!("field \"{name}\" is not numeric: {raw:?}")))
}

fn parse_report(text: &str) -> Result<Vec<ReportRow>, String> {
    let mut p = Cursor { bytes: text.as_bytes(), pos: 0 };
    p.expect(b'{')?;
    if p.string()? != "title" {
        return Err("expected \"title\" first".into());
    }
    p.expect(b':')?;
    p.string()?;
    p.expect(b',')?;
    if p.string()? != "rows" {
        return Err("expected \"rows\" after the title".into());
    }
    p.expect(b':')?;
    p.expect(b'[')?;
    let mut rows = Vec::new();
    if !p.eat(b']') {
        loop {
            rows.push(p.flat_object()?);
            if !p.eat(b',') {
                p.expect(b']')?;
                break;
            }
        }
    }
    p.expect(b'}')?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err("trailing content after the report object".into());
    }
    Ok(rows)
}

/// Byte cursor over the report shape.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn skip_ws(&mut self) {
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, want: u8) -> bool {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&want) {
            self.pos += 1;
            return true;
        }
        false
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        if self.eat(want) {
            return Ok(());
        }
        Err(format!(
            "expected '{}' at byte {}, found {:?}",
            want as char,
            self.pos,
            self.bytes.get(self.pos).map(|&b| b as char)
        ))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("unsupported escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let ch = rest.chars().next().expect("non-empty checked above");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn flat_object(&mut self) -> Result<ReportRow, String> {
        self.expect(b'{')?;
        let mut fields = ReportRow::new();
        if self.eat(b'}') {
            return Ok(fields);
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            self.skip_ws();
            let value = if self.bytes.get(self.pos) == Some(&b'"') {
                self.string()?
            } else {
                let start = self.pos;
                while self
                    .bytes
                    .get(self.pos)
                    .is_some_and(|&b| !matches!(b, b',' | b'}') && !b.is_ascii_whitespace())
                {
                    self.pos += 1;
                }
                if self.pos == start {
                    return Err(format!("empty scalar for key \"{key}\""));
                }
                String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned()
            };
            fields.insert(key, value);
            if !self.eat(b',') {
                self.expect(b'}')?;
                return Ok(fields);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(name: &str, text: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("gas_plan_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, text).unwrap();
        path
    }

    #[test]
    fn reads_the_bench_report_shape() {
        let path = write(
            "ok.json",
            "{\n  \"title\": \"demo\",\n  \"rows\": [\n    {\"kind\": \"a\", \"value\": 3.5},\n    {\"kind\": \"b \\\"q\\\"\", \"value\": 7}\n  ]\n}\n",
        );
        let rows = read_report_rows(&path).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(field(&rows[0], "kind").unwrap(), "a");
        assert_eq!(number(&rows[0], "value").unwrap(), 3.5);
        assert_eq!(field(&rows[1], "kind").unwrap(), "b \"q\"");
        assert_eq!(number(&rows[1], "value").unwrap(), 7.0);
    }

    #[test]
    fn missing_and_non_numeric_fields_are_typed_errors() {
        let path = write(
            "fields.json",
            "{\n  \"title\": \"t\",\n  \"rows\": [\n    {\"a\": \"x\"}\n  ]\n}\n",
        );
        let rows = read_report_rows(&path).unwrap();
        assert!(matches!(field(&rows[0], "b"), Err(PlanError::Parse(_))));
        assert!(matches!(number(&rows[0], "a"), Err(PlanError::Parse(_))));
    }

    #[test]
    fn rejects_anything_that_is_not_a_report() {
        for (name, text) in [
            ("empty.json", ""),
            ("no_title.json", "{\"rows\": []}"),
            ("truncated.json", "{\n  \"title\": \"t\",\n  \"rows\": [\n    {\"a\": 1}"),
            ("trailing.json", "{\n  \"title\": \"t\",\n  \"rows\": []\n}\nextra"),
            ("nested.json", "{\n  \"title\": \"t\",\n  \"rows\": [{\"a\": {\"b\": 1}}]\n}"),
        ] {
            let path = write(name, text);
            assert!(
                matches!(read_report_rows(&path), Err(PlanError::Parse(_))),
                "{name} must be rejected"
            );
        }
        assert!(matches!(
            read_report_rows(std::env::temp_dir().join("gas_plan_definitely_missing.json")),
            Err(PlanError::Io(_))
        ));
    }
}
