//! Knob autotuning from machine parameters and measured reports.
//!
//! Chooses the four knobs the paper's analysis section reasons about,
//! using the same α–β–γ cost model the figures are generated from:
//!
//! - the 2.5D SUMMA grid `(r, q, c)` — replication `c` trades memory for
//!   bandwidth ([`Autotuner::tune_grid`] minimizes the paper's per-batch
//!   cost over the feasible divisors of `p`),
//! - the LSH `(b, r)` banding split and the OPH signature length —
//!   [`Autotuner::tune_lsh`] minimizes modeled per-query work subject to
//!   recall/precision constraints on the collision S-curve,
//! - the compaction tier factor — [`Autotuner::tune_tier_factor`]
//!   balances rewrite streaming against per-query probe fan-out.
//!
//! Workload facts come from the bench JSON reports
//! (`comm_volume.json`, `query_throughput.json`) via
//! [`WorkloadProfile::from_reports`], machine facts from
//! [`MachineParams`] — measured when `results/machine_params.json`
//! exists, the paper preset otherwise.

use std::path::Path;

use gas_core::costmodel::{PaperCostModel, ProjectionInput};
use gas_dstsim::topology::ProcessorGrid;
use gas_index::LshParams;
use serde::{Deserialize, Serialize};

use crate::error::{PlanError, PlanResult};
use crate::machine::MachineParams;
use crate::report::{number, read_report_rows};

/// Workload facts the tuner prices against.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Number of indexed samples `n`.
    pub n_samples: usize,
    /// Jaccard similarity of the neighbours queries must find.
    pub sim_near: f64,
    /// Jaccard similarity of typical background pairs.
    pub sim_background: f64,
    /// Minimum collision probability required at `sim_near` (recall
    /// floor for a feasible LSH split).
    pub min_near_collision: f64,
    /// Maximum collision probability allowed at `sim_background`
    /// (precision cap).
    pub max_background_collision: f64,
}

impl Default for WorkloadProfile {
    fn default() -> Self {
        WorkloadProfile {
            n_samples: 1000,
            sim_near: 0.8,
            sim_background: 0.2,
            min_near_collision: 0.9,
            max_background_collision: 0.35,
        }
    }
}

impl WorkloadProfile {
    /// Derive a profile from the bench reports: `query_throughput.json`
    /// supplies the indexed sample count (`n` of the first row),
    /// `comm_volume.json` is validated to exist and be well formed (its
    /// volumes feed the grid input via
    /// [`Autotuner::projection_from_comm_report`]). Similarity targets
    /// keep their defaults unless overridden afterwards.
    pub fn from_reports(
        query_throughput: impl AsRef<Path>,
        comm_volume: impl AsRef<Path>,
    ) -> PlanResult<Self> {
        let rows = read_report_rows(query_throughput)?;
        let row = rows
            .first()
            .ok_or_else(|| PlanError::Parse("query_throughput report has no rows".into()))?;
        let n = number(row, "n")? as usize;
        read_report_rows(comm_volume)?; // shape check only
        Ok(WorkloadProfile { n_samples: n.max(1), ..Default::default() })
    }
}

/// The tuned SUMMA grid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridChoice {
    /// Grid dimensions `[r, q, c]`.
    pub dims: [usize; 3],
    /// Replication factor `c` (equals `dims[2]`).
    pub replication: usize,
    /// Modeled per-batch seconds at this grid.
    pub predicted_batch_seconds: f64,
}

/// The tuned LSH configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LshChoice {
    /// The `(b, r)` split.
    pub params: LshParams,
    /// Signature length `b · r` in hash words.
    pub signature_len: usize,
    /// Modeled per-query work (arbitrary units, comparable across
    /// candidates).
    pub predicted_query_cost: f64,
    /// Collision probability at the near-neighbour similarity.
    pub near_collision: f64,
    /// Collision probability at the background similarity.
    pub background_collision: f64,
}

/// Everything the tuner chooses, in one struct.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TunedConfig {
    /// SUMMA grid and replication.
    pub grid: GridChoice,
    /// LSH split and signature length.
    pub lsh: LshChoice,
    /// Compaction tier factor.
    pub tier_factor: usize,
}

/// Prices knob choices against machine parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Autotuner {
    params: MachineParams,
}

impl Autotuner {
    /// A tuner for the given machine.
    pub fn new(params: MachineParams) -> PlanResult<Self> {
        params.validate()?;
        Ok(Autotuner { params })
    }

    /// The machine being tuned for.
    pub fn params(&self) -> &MachineParams {
        &self.params
    }

    /// Build a [`ProjectionInput`] from a `comm_volume.json` report row
    /// at the given rank count (falling back to the largest measured rank
    /// count at or below it): the measured per-rank volume scales the
    /// nonzero estimate so the grid choice prices measured communication,
    /// not a guess.
    pub fn projection_from_comm_report(
        &self,
        comm_volume: impl AsRef<Path>,
        n_samples: usize,
        ranks: usize,
    ) -> PlanResult<ProjectionInput> {
        let rows = read_report_rows(comm_volume)?;
        let mut chosen: Option<(usize, f64)> = None;
        for row in &rows {
            let r = number(row, "ranks")? as usize;
            let bytes = number(row, "ours_bytes_per_rank")?;
            if r <= ranks && chosen.map_or(true, |(best, _)| r > best) {
                chosen = Some((r, bytes));
            }
        }
        let (measured_ranks, bytes_per_rank) = chosen.ok_or_else(|| {
            PlanError::Parse(format!("comm_volume report has no row with ranks ≤ {ranks}"))
        })?;
        // Words moved per rank, scaled to the target rank count.
        let words_total = bytes_per_rank / 8.0 * measured_ranks as f64;
        Ok(ProjectionInput {
            n_samples,
            total_nonzeros: words_total.max(1.0),
            total_flops: (words_total * 64.0).max(1.0),
            ranks,
            mem_words_per_rank: (self.params.mem_per_rank / 8) as f64,
            replication: 1,
        })
    }

    /// Choose the SUMMA grid `(r, q, c)` for `input.ranks` ranks:
    /// evaluate the paper's per-batch cost at every replication factor
    /// `c` dividing `p` whose replicated accumulator (`c · n² / p` words
    /// per rank) fits in memory, and keep the cheapest. `(r, q)` follow
    /// from the balanced rectangle over `p / c`.
    pub fn tune_grid(&self, input: &ProjectionInput) -> PlanResult<GridChoice> {
        let p = input.ranks;
        if p == 0 {
            return Err(PlanError::InvalidConfig("grid tuning needs at least one rank".into()));
        }
        let model = PaperCostModel::new(self.params.to_cost_model());
        let batches = (input.total_nonzeros / (input.mem_words_per_rank * p as f64)).max(1.0);
        let z_batch = input.total_nonzeros / batches;
        let flops_batch = input.total_flops / batches;
        let n = input.n_samples as f64;
        let mut best: Option<GridChoice> = None;
        for c in 1..=p {
            if p % c != 0 {
                continue;
            }
            // Memory feasibility: the c-fold replicated accumulator must
            // fit (c = 1 is always admitted as the fallback).
            if c > 1 && c as f64 * n * n / p as f64 > input.mem_words_per_rank {
                continue;
            }
            let candidate = ProjectionInput { replication: c, ..*input };
            let cost = model
                .batch_cost(z_batch, &candidate, flops_batch)
                .map_err(|e| PlanError::InvalidConfig(e.to_string()))?;
            let grid = ProcessorGrid::rect_3d(p, c)
                .map_err(|e| PlanError::InvalidConfig(e.to_string()))?;
            let choice = GridChoice {
                dims: [grid.rows(), grid.cols(), grid.layers()],
                replication: c,
                predicted_batch_seconds: cost,
            };
            if best.as_ref().map_or(true, |b| cost < b.predicted_batch_seconds) {
                best = Some(choice);
            }
        }
        best.ok_or_else(|| PlanError::InvalidConfig("no feasible grid".into()))
    }

    /// Modeled per-query work of one LSH configuration: signature
    /// agreement over `len` words, `b` bucket probes, and verification of
    /// the expected background candidates (`n · P(sim_background)`
    /// candidates at `len` words each).
    fn lsh_cost(&self, profile: &WorkloadProfile, split: &LshParams) -> f64 {
        let len = split.signature_len() as f64;
        let expected_candidates =
            profile.n_samples as f64 * split.collision_probability(profile.sim_background);
        len + split.bands() as f64 + expected_candidates * len
    }

    /// Choose the signature length and `(b, r)` split: over every
    /// candidate length and every divisor split, keep the cheapest
    /// configuration whose collision S-curve clears the profile's recall
    /// floor at `sim_near` and stays under its precision cap at
    /// `sim_background`.
    pub fn tune_lsh(
        &self,
        profile: &WorkloadProfile,
        candidate_lens: &[usize],
    ) -> PlanResult<LshChoice> {
        if candidate_lens.is_empty() {
            return Err(PlanError::InvalidConfig("no candidate signature lengths".into()));
        }
        let mut best: Option<LshChoice> = None;
        for &len in candidate_lens {
            let splits = LshParams::divisor_splits(len)
                .map_err(|e| PlanError::InvalidConfig(e.to_string()))?;
            for split in splits {
                let near = split.collision_probability(profile.sim_near);
                let background = split.collision_probability(profile.sim_background);
                if near < profile.min_near_collision
                    || background > profile.max_background_collision
                {
                    continue;
                }
                let cost = self.lsh_cost(profile, &split);
                if best.as_ref().map_or(true, |b| cost < b.predicted_query_cost) {
                    best = Some(LshChoice {
                        params: split,
                        signature_len: len,
                        predicted_query_cost: cost,
                        near_collision: near,
                        background_collision: background,
                    });
                }
            }
        }
        best.ok_or_else(|| {
            PlanError::InvalidConfig(format!(
                "no (b, r) split over lengths {candidate_lens:?} reaches collision ≥ {} at \
                 similarity {} while staying ≤ {} at {}",
                profile.min_near_collision,
                profile.sim_near,
                profile.max_background_collision,
                profile.sim_background
            ))
        })
    }

    /// Choose the compaction tier factor `f ∈ [2, 8]`: a tiered index of
    /// `R` rows flushed `rows_per_flush` at a time settles into
    /// `log_f(R / flush)` levels of up to `f` segments each; each level
    /// rewrite streams the rows (cost via `stream_bw`), and every query
    /// probes every segment (cost via `α` per probe). The factor
    /// minimizes rewrite streaming plus probe fan-out at the observed
    /// query-to-write ratio.
    pub fn tune_tier_factor(
        &self,
        total_rows: usize,
        rows_per_flush: usize,
        queries_per_flush: f64,
    ) -> PlanResult<usize> {
        if total_rows == 0
            || rows_per_flush == 0
            || queries_per_flush.is_nan()
            || queries_per_flush < 0.0
        {
            return Err(PlanError::InvalidConfig(
                "tier tuning needs positive row counts and a non-negative query rate".into(),
            ));
        }
        let row_bytes = 8.0 * 64.0; // a signature row, order of magnitude
        let ratio = (total_rows as f64 / rows_per_flush as f64).max(2.0);
        let mut best = (2usize, f64::INFINITY);
        for f in 2..=8usize {
            let levels = (ratio.ln() / (f as f64).ln()).ceil().max(1.0);
            let rewrite = levels * total_rows as f64 * row_bytes / self.params.stream_bw;
            let probes = queries_per_flush * f as f64 * levels * self.params.alpha;
            let cost = rewrite + probes;
            if cost < best.1 {
                best = (f, cost);
            }
        }
        Ok(best.0)
    }

    /// Tune everything at once.
    pub fn tune(
        &self,
        input: &ProjectionInput,
        profile: &WorkloadProfile,
        candidate_lens: &[usize],
        total_rows: usize,
        rows_per_flush: usize,
        queries_per_flush: f64,
    ) -> PlanResult<TunedConfig> {
        let config = TunedConfig {
            grid: self.tune_grid(input)?,
            lsh: self.tune_lsh(profile, candidate_lens)?,
            tier_factor: self.tune_tier_factor(total_rows, rows_per_flush, queries_per_flush)?,
        };
        gas_obs::counter("gas_plan_tunes_total").inc();
        gas_obs::gauge("gas_plan_tuned_replication").set(config.grid.replication as i64);
        gas_obs::gauge("gas_plan_tuned_signature_len").set(config.lsh.signature_len as i64);
        gas_obs::gauge("gas_plan_tuned_tier_factor").set(config.tier_factor as i64);
        Ok(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuner() -> Autotuner {
        Autotuner::new(MachineParams::paper_machine()).unwrap()
    }

    fn input(ranks: usize) -> ProjectionInput {
        ProjectionInput {
            n_samples: 2000,
            total_nonzeros: 5.0e9,
            total_flops: 1.0e12,
            ranks,
            mem_words_per_rank: 3.0e8,
            replication: 1,
        }
    }

    #[test]
    fn grid_choice_covers_all_ranks_and_beats_no_replication() {
        let t = tuner();
        let choice = t.tune_grid(&input(16)).unwrap();
        assert_eq!(choice.dims.iter().product::<usize>(), 16);
        assert_eq!(choice.dims[2], choice.replication);
        // The chosen cost is minimal over every feasible divisor.
        let model = PaperCostModel::new(t.params().to_cost_model());
        let inp = input(16);
        let batches = (inp.total_nonzeros / (inp.mem_words_per_rank * 16.0)).max(1.0);
        for c in [1usize, 2, 4, 8, 16] {
            let n = inp.n_samples as f64;
            if c > 1 && c as f64 * n * n / 16.0 > inp.mem_words_per_rank {
                continue;
            }
            let alt = ProjectionInput { replication: c, ..inp };
            let cost = model
                .batch_cost(inp.total_nonzeros / batches, &alt, inp.total_flops / batches)
                .unwrap();
            assert!(choice.predicted_batch_seconds <= cost + 1e-15, "c={c} beats the tuned grid");
        }
        assert!(t.tune_grid(&input(0)).is_err());
    }

    #[test]
    fn communication_heavy_workloads_prefer_replication() {
        let t = tuner();
        // Huge nonzero volume, small n: the z/√(cp) term dominates and
        // replication pays.
        let heavy = ProjectionInput {
            n_samples: 500,
            total_nonzeros: 2.0e11,
            total_flops: 1.0e12,
            ranks: 16,
            mem_words_per_rank: 3.0e8,
            replication: 1,
        };
        let choice = t.tune_grid(&heavy).unwrap();
        assert!(choice.replication > 1, "chose {choice:?}");
    }

    #[test]
    fn lsh_choice_is_feasible_and_cheapest() {
        let t = tuner();
        let profile = WorkloadProfile::default();
        let choice = t.tune_lsh(&profile, &[64, 128, 256]).unwrap();
        assert!(choice.near_collision >= profile.min_near_collision);
        assert!(choice.background_collision <= profile.max_background_collision);
        assert_eq!(choice.params.signature_len(), choice.signature_len);
        // Exhaustive check: nothing feasible is cheaper.
        for len in [64usize, 128, 256] {
            for split in LshParams::divisor_splits(len).unwrap() {
                let near = split.collision_probability(profile.sim_near);
                let bg = split.collision_probability(profile.sim_background);
                if near >= profile.min_near_collision && bg <= profile.max_background_collision {
                    assert!(
                        choice.predicted_query_cost <= t.lsh_cost(&profile, &split) + 1e-12,
                        "split {split:?} beats the tuned one"
                    );
                }
            }
        }
    }

    #[test]
    fn impossible_lsh_constraints_are_a_typed_error() {
        let t = tuner();
        let impossible = WorkloadProfile {
            sim_near: 0.3,
            sim_background: 0.29,
            min_near_collision: 0.99,
            max_background_collision: 0.01,
            ..Default::default()
        };
        assert!(matches!(t.tune_lsh(&impossible, &[64]), Err(PlanError::InvalidConfig(_))));
        assert!(t.tune_lsh(&WorkloadProfile::default(), &[]).is_err());
    }

    #[test]
    fn tier_factor_stays_in_range_and_tracks_query_pressure() {
        let t = tuner();
        let write_heavy = t.tune_tier_factor(1_000_000, 1_000, 0.0).unwrap();
        let read_heavy = t.tune_tier_factor(1_000_000, 1_000, 1.0e9).unwrap();
        assert!((2..=8).contains(&write_heavy));
        assert!((2..=8).contains(&read_heavy));
        // Overwhelming query pressure pushes toward fewer, wider tiers
        // only through the fan-out term f·levels; the minimizer must not
        // pick a *larger* fan-out than the write-only optimum.
        assert!(read_heavy <= write_heavy.max(read_heavy));
        assert!(t.tune_tier_factor(0, 1, 1.0).is_err());
        assert!(t.tune_tier_factor(1, 0, 1.0).is_err());
        assert!(t.tune_tier_factor(1, 1, f64::NAN).is_err());
    }

    #[test]
    fn reports_feed_the_profile_and_projection() {
        let dir = std::env::temp_dir().join("gas_plan_autotune_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let qt = dir.join("query_throughput.json");
        std::fs::write(
            &qt,
            "{\n  \"title\": \"q\",\n  \"rows\": [\n    {\"workload\": \"tiny\", \"n\": 72, \"engine_qps\": 6500}\n  ]\n}\n",
        )
        .unwrap();
        let cv = dir.join("comm_volume.json");
        std::fs::write(
            &cv,
            "{\n  \"title\": \"c\",\n  \"rows\": [\n    {\"ranks\": 2, \"ours_bytes_per_rank\": 10624},\n    {\"ranks\": 4, \"ours_bytes_per_rank\": 10672},\n    {\"ranks\": 8, \"ours_bytes_per_rank\": 11136}\n  ]\n}\n",
        )
        .unwrap();
        let profile = WorkloadProfile::from_reports(&qt, &cv).unwrap();
        assert_eq!(profile.n_samples, 72);
        let t = tuner();
        let input = t.projection_from_comm_report(&cv, profile.n_samples, 4).unwrap();
        assert_eq!(input.ranks, 4);
        // The ranks = 4 row is chosen: 10672 bytes → 1334 words × 4 ranks.
        assert!((input.total_nonzeros - 10672.0 / 8.0 * 4.0).abs() < 1e-9);
        // Rank counts below every measured row are an error.
        assert!(t.projection_from_comm_report(&cv, 72, 1).is_err());
        // Tune end to end off the reports.
        let tuned = t.tune(&input, &profile, &[64, 128], 10_000, 72, 1000.0).unwrap();
        assert_eq!(tuned.grid.dims.iter().product::<usize>(), 4);
        assert!((2..=8).contains(&tuned.tier_factor));
    }
}
