//! `gas-plan`: cost-model-driven segment placement and knob autotuning.
//!
//! The paper's communication cost model used to be a figure-generator;
//! this crate makes it load-bearing. Two cooperating halves:
//!
//! - [`placement`]: a [`PlacementPlanner`] prices each index segment's
//!   two serving strategies — sharded (fetch candidate rows per batch
//!   through the keyed exchange) versus replicated (install once, serve
//!   locally) — against α–β–γ machine parameters and observed probe
//!   heat, and emits a [`PlacementPlan`] the mixed-placement reader
//!   (`gas_index::dist::dist_query_reader_batch_planned`) executes.
//! - [`autotune`]: an [`Autotuner`] chooses the SUMMA grid `(r, q, c)`,
//!   the LSH `(b, r)` split, the OPH signature length, and the
//!   compaction tier factor from the same machine parameters plus the
//!   bench JSON reports.
//!
//! Machine parameters come from [`MachineParams`]: a preset, or the
//! measured least-squares fit the `cost_model_scaling` bench writes to
//! `results/machine_params.json` ([`MachineParams::from_report`]).
//!
//! Planner decisions are observable under the `gas_plan_*` metrics
//! namespace (via `gas-obs`): the serving stack bumps
//! `gas_plan_segment_probes_total` / `gas_plan_segment_candidates_total`
//! and their per-segment `..._seg<id>_total` variants on every probe;
//! the planner and tuner record `gas_plan_plans_total`,
//! `gas_plan_replicated_segments`, `gas_plan_sharded_segments`,
//! `gas_plan_tunes_total` and the `gas_plan_tuned_*` gauges.

pub mod autotune;
pub mod error;
pub mod machine;
pub mod placement;
pub mod report;

pub use autotune::{Autotuner, GridChoice, LshChoice, TunedConfig, WorkloadProfile};
pub use error::{PlanError, PlanResult};
pub use machine::MachineParams;
pub use placement::{
    PlacementPlan, PlacementPlanner, PlannerConfig, SegmentAssignment, SegmentObservation,
};
pub use report::{field, number, read_report_rows, ReportRow};
