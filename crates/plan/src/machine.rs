//! Machine parameters for planning: α–β–γ plus memory and streaming
//! bandwidth, loadable from the fitted report the `cost_model_scaling`
//! bench writes.
//!
//! The planner and autotuner never hardcode machine constants: they take
//! a [`MachineParams`], which comes from one of three places — a
//! [`Machine`](gas_dstsim::machine::Machine) preset
//! ([`MachineParams::from_machine`]), a raw
//! [`CostModel`](gas_dstsim::cost::CostModel), or the
//! `results/machine_params.json` report of measured, least-squares-fitted
//! parameters ([`MachineParams::from_report`]). The report path closes
//! the loop the ROADMAP called out: the cost model stops being a
//! figure-generator and becomes the measured input of placement and
//! tuning decisions.

use std::path::Path;

use gas_dstsim::cost::CostModel;
use gas_dstsim::machine::Machine;
use serde::{Deserialize, Serialize};

use crate::error::{PlanError, PlanResult};
use crate::report::{number, read_report_rows};

/// The machine parameters every planning decision is priced against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineParams {
    /// Latency per message / superstep, seconds.
    pub alpha: f64,
    /// Inverse bandwidth, seconds per **byte**.
    pub beta: f64,
    /// Seconds per arithmetic operation.
    pub gamma: f64,
    /// Memory per rank, bytes.
    pub mem_per_rank: usize,
    /// Memory streaming bandwidth per rank, bytes/second.
    pub stream_bw: f64,
    /// Where the parameters came from (a preset name or a report path) —
    /// carried into reports so a plan states its evidence.
    pub source: String,
}

impl MachineParams {
    /// Parameters from a machine description's analytic cost model.
    pub fn from_machine(machine: &Machine) -> PlanResult<Self> {
        let model = machine
            .cost_model()
            .map_err(|e| PlanError::InvalidConfig(format!("machine {}: {e}", machine.name)))?;
        Ok(Self::from_cost_model(&model, &machine.name))
    }

    /// Parameters from a raw cost model with a stated provenance.
    pub fn from_cost_model(model: &CostModel, source: &str) -> Self {
        MachineParams {
            alpha: model.alpha,
            beta: model.beta,
            gamma: model.gamma,
            mem_per_rank: model.mem_per_rank,
            stream_bw: model.stream_bw,
            source: source.to_string(),
        }
    }

    /// The paper's Stampede2 KNL machine — the default when no fitted
    /// report is available.
    pub fn paper_machine() -> Self {
        Self::from_machine(&Machine::stampede2_knl()).expect("paper preset is valid")
    }

    /// Load measured parameters from the JSON report written by the
    /// `cost_model_scaling` bench (`results/machine_params.json`): a
    /// single row with `alpha`/`beta`/`gamma`/`mem_per_rank`/`stream_bw`
    /// fields holding the least-squares fit over simulated runs.
    pub fn from_report(path: impl AsRef<Path>) -> PlanResult<Self> {
        let path = path.as_ref();
        let rows = read_report_rows(path)?;
        let row = rows.first().ok_or_else(|| {
            PlanError::Parse(format!("{}: machine-parameter report has no rows", path.display()))
        })?;
        let params = MachineParams {
            alpha: number(row, "alpha")?,
            beta: number(row, "beta")?,
            gamma: number(row, "gamma")?,
            mem_per_rank: number(row, "mem_per_rank")? as usize,
            stream_bw: number(row, "stream_bw")?,
            source: path.display().to_string(),
        };
        params.validate()?;
        Ok(params)
    }

    /// Load from a report if it exists and parses, otherwise fall back to
    /// the paper machine — the pattern the bench binaries use so a fresh
    /// checkout (no `results/` yet) still plans.
    pub fn from_report_or_paper(path: impl AsRef<Path>) -> Self {
        Self::from_report(path).unwrap_or_else(|_| Self::paper_machine())
    }

    /// Reject non-finite or negative parameters.
    pub fn validate(&self) -> PlanResult<()> {
        for (name, v) in [("alpha", self.alpha), ("beta", self.beta), ("gamma", self.gamma)] {
            if !v.is_finite() || v < 0.0 {
                return Err(PlanError::InvalidConfig(format!(
                    "machine parameter {name} must be finite and non-negative (got {v})"
                )));
            }
        }
        if self.mem_per_rank == 0 || self.stream_bw.is_nan() || self.stream_bw <= 0.0 {
            return Err(PlanError::InvalidConfig(
                "mem_per_rank and stream_bw must be positive".to_string(),
            ));
        }
        Ok(())
    }

    /// The equivalent simulator [`CostModel`].
    pub fn to_cost_model(&self) -> CostModel {
        CostModel {
            alpha: self.alpha,
            beta: self.beta,
            gamma: self.gamma,
            mem_per_rank: self.mem_per_rank,
            stream_bw: self.stream_bw,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_presets_round_trip_through_params() {
        let m = Machine::stampede2_knl();
        let p = MachineParams::from_machine(&m).unwrap();
        let model = m.cost_model().unwrap();
        assert_eq!(p.alpha, model.alpha);
        assert_eq!(p.beta, model.beta);
        assert_eq!(p.gamma, model.gamma);
        assert_eq!(p.source, "stampede2-knl");
        assert_eq!(p.to_cost_model(), model);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn from_report_reads_the_fitted_row() {
        let dir = std::env::temp_dir().join("gas_plan_machine_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("machine_params.json");
        std::fs::write(
            &path,
            "{\n  \"title\": \"fitted machine parameters\",\n  \"rows\": [\n    {\"alpha\": 0.000002, \"beta\": 0.00000000008, \"gamma\": 0.000000001, \"mem_per_rank\": 3221225472, \"stream_bw\": 14000000000, \"observations\": 12}\n  ]\n}\n",
        )
        .unwrap();
        let p = MachineParams::from_report(&path).unwrap();
        assert!((p.alpha - 2.0e-6).abs() < 1e-18);
        assert!((p.beta - 8.0e-11).abs() < 1e-18);
        assert_eq!(p.mem_per_rank, 3 * (1usize << 30));
        assert!(p.source.ends_with("machine_params.json"));
        // The fallback loader prefers the report when it is readable…
        let fb = MachineParams::from_report_or_paper(&path);
        assert_eq!(fb.alpha, p.alpha);
        // …and degrades to the paper machine when it is not.
        let fb = MachineParams::from_report_or_paper(dir.join("missing.json"));
        assert_eq!(fb.source, "stampede2-knl");
    }

    #[test]
    fn invalid_reports_and_params_are_rejected() {
        let dir = std::env::temp_dir().join("gas_plan_machine_bad_test");
        std::fs::create_dir_all(&dir).unwrap();
        let empty = dir.join("empty_rows.json");
        std::fs::write(&empty, "{\n  \"title\": \"t\",\n  \"rows\": []\n}\n").unwrap();
        assert!(matches!(MachineParams::from_report(&empty), Err(PlanError::Parse(_))));
        let negative = dir.join("negative.json");
        std::fs::write(
            &negative,
            "{\n  \"title\": \"t\",\n  \"rows\": [\n    {\"alpha\": -1, \"beta\": 1, \"gamma\": 1, \"mem_per_rank\": 1, \"stream_bw\": 1}\n  ]\n}\n",
        )
        .unwrap();
        assert!(matches!(MachineParams::from_report(&negative), Err(PlanError::InvalidConfig(_))));
        let mut p = MachineParams::paper_machine();
        p.mem_per_rank = 0;
        assert!(p.validate().is_err());
    }
}
