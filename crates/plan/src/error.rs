//! Error type for planning and autotuning.

use std::fmt;

/// Errors surfaced by the planner and autotuner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// A configuration or input was internally inconsistent.
    InvalidConfig(String),
    /// An I/O failure while loading a report.
    Io(String),
    /// A report file did not have the expected shape.
    Parse(String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::InvalidConfig(msg) => write!(f, "invalid plan config: {msg}"),
            PlanError::Io(msg) => write!(f, "plan i/o error: {msg}"),
            PlanError::Parse(msg) => write!(f, "plan report parse error: {msg}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<std::io::Error> for PlanError {
    fn from(err: std::io::Error) -> Self {
        PlanError::Io(err.to_string())
    }
}

/// Result alias for planning operations.
pub type PlanResult<T> = Result<T, PlanError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_their_context() {
        assert!(PlanError::InvalidConfig("x".into()).to_string().contains("invalid"));
        assert!(PlanError::Io("gone".into()).to_string().contains("gone"));
        assert!(PlanError::Parse("bad".into()).to_string().contains("parse"));
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        assert!(matches!(PlanError::from(io), PlanError::Io(_)));
    }
}
