//! MPI-style collective operations on a [`Communicator`].
//!
//! Collectives are built from point-to-point messages using the standard
//! algorithms of production MPI libraries — binomial trees for
//! broadcast/reduce, a ring for allgather, direct exchange for
//! all-to-all-v, and Hillis–Steele doubling for scans — so the message
//! counts, byte volumes and round (superstep) counts charged to the cost
//! model match what a real distributed run would incur.
//!
//! All ranks of a communicator must call each collective in the same
//! order; internal messages are tagged with a per-communicator sequence
//! number so different collectives never interfere.

use crate::comm::{Communicator, Msg};
use crate::error::{SimError, SimResult};

impl Communicator {
    /// Synchronize all ranks (dissemination barrier, `⌈log₂ p⌉` rounds).
    pub fn barrier(&self) -> SimResult<()> {
        self.record_collective();
        let _coll_span = self.collective_span("barrier");
        let p = self.size();
        if p == 1 {
            self.record_superstep();
            return Ok(());
        }
        let tag_base = self.next_coll_tag();
        let me = self.rank();
        let mut d = 1usize;
        let mut round = 0u64;
        while d < p {
            let dest = (me + d) % p;
            let src = (me + p - d % p) % p;
            self.send(dest, tag_base + round, 0u8)?;
            let _: u8 = self.recv(src, tag_base + round)?;
            self.record_superstep();
            d <<= 1;
            round += 1;
        }
        Ok(())
    }

    /// Broadcast `data` from `root` to every rank (binomial tree).
    ///
    /// Non-root ranks may pass `None`; the broadcast value is returned on
    /// every rank.
    pub fn bcast<T: Msg + Clone>(&self, root: usize, data: Option<T>) -> SimResult<T> {
        self.record_collective();
        let _coll_span = self.collective_span("bcast");
        let p = self.size();
        if root >= p {
            return Err(SimError::InvalidRank { rank: root, size: p });
        }
        let me = self.rank();
        if p == 1 {
            return data.ok_or_else(|| {
                SimError::CollectiveMismatch("bcast root provided no data".to_string())
            });
        }
        let tag = self.next_coll_tag();
        let relative = (me + p - root) % p;
        let mut value: Option<T> = if relative == 0 {
            Some(data.ok_or_else(|| {
                SimError::CollectiveMismatch("bcast root provided no data".to_string())
            })?)
        } else {
            None
        };
        // Receive phase: find the bit at which this rank gets the value.
        let mut mask = 1usize;
        while mask < p {
            if relative & mask != 0 {
                let src = (relative - mask + root) % p;
                value = Some(self.recv(src, tag)?);
                self.record_superstep();
                break;
            }
            mask <<= 1;
        }
        // Send phase: forward to the sub-tree below this rank.
        let v = value.expect("every rank receives the broadcast value");
        mask >>= 1;
        while mask > 0 {
            if relative + mask < p {
                let dst = (relative + mask + root) % p;
                self.send(dst, tag, v.clone())?;
                self.record_superstep();
            }
            mask >>= 1;
        }
        Ok(v)
    }

    /// Reduce `data` element-wise with `op` onto `root` (binomial tree).
    /// Returns `Some(result)` on the root and `None` elsewhere.
    pub fn reduce<T, F>(&self, root: usize, data: &[T], op: F) -> SimResult<Option<Vec<T>>>
    where
        T: Msg + Clone,
        F: Fn(&T, &T) -> T,
    {
        self.record_collective();
        let _coll_span = self.collective_span("reduce");
        let p = self.size();
        if root >= p {
            return Err(SimError::InvalidRank { rank: root, size: p });
        }
        let me = self.rank();
        let tag = self.next_coll_tag();
        let mut acc: Vec<T> = data.to_vec();
        if p == 1 {
            return Ok(Some(acc));
        }
        let relative = (me + p - root) % p;
        let mut mask = 1usize;
        while mask < p {
            if relative & mask == 0 {
                let src_rel = relative | mask;
                if src_rel < p {
                    let src = (src_rel + root) % p;
                    let other: Vec<T> = self.recv(src, tag)?;
                    if other.len() != acc.len() {
                        return Err(SimError::CollectiveMismatch(format!(
                            "reduce buffers differ in length: {} vs {}",
                            acc.len(),
                            other.len()
                        )));
                    }
                    for (a, b) in acc.iter_mut().zip(other.iter()) {
                        *a = op(a, b);
                    }
                    self.add_flops(acc.len() as u64);
                }
            } else {
                let dst_rel = relative & !mask;
                let dst = (dst_rel + root) % p;
                self.send(dst, tag, acc.clone())?;
                self.record_superstep();
                return Ok(None);
            }
            self.record_superstep();
            mask <<= 1;
        }
        Ok(Some(acc))
    }

    /// Element-wise allreduce with a custom associative operation
    /// (reduce-to-root followed by broadcast).
    pub fn allreduce<T, F>(&self, data: &[T], op: F) -> SimResult<Vec<T>>
    where
        T: Msg + Clone,
        F: Fn(&T, &T) -> T,
    {
        let reduced = self.reduce(0, data, op)?;
        self.bcast(0, reduced)
    }

    /// Allreduce with element-wise addition.
    pub fn allreduce_sum<T>(&self, data: &[T]) -> SimResult<Vec<T>>
    where
        T: Msg + Clone + Copy + std::ops::Add<Output = T>,
    {
        self.allreduce(data, |a, b| *a + *b)
    }

    /// Allreduce with element-wise maximum.
    pub fn allreduce_max<T>(&self, data: &[T]) -> SimResult<Vec<T>>
    where
        T: Msg + Clone + Copy + PartialOrd,
    {
        self.allreduce(data, |a, b| if *a >= *b { *a } else { *b })
    }

    /// Gather variable-length contributions onto `root`. Returns
    /// `Some(per-rank vectors)` on the root, `None` elsewhere.
    pub fn gatherv<T: Msg + Clone>(
        &self,
        root: usize,
        data: &[T],
    ) -> SimResult<Option<Vec<Vec<T>>>> {
        self.record_collective();
        let _coll_span = self.collective_span("gatherv");
        let p = self.size();
        if root >= p {
            return Err(SimError::InvalidRank { rank: root, size: p });
        }
        let tag = self.next_coll_tag();
        let me = self.rank();
        if me == root {
            let mut out: Vec<Vec<T>> = vec![Vec::new(); p];
            out[root] = data.to_vec();
            for (src, slot) in out.iter_mut().enumerate() {
                if src != root {
                    *slot = self.recv(src, tag)?;
                }
            }
            self.record_superstep();
            Ok(Some(out))
        } else {
            self.send(root, tag, data.to_vec())?;
            self.record_superstep();
            Ok(None)
        }
    }

    /// Gather variable-length contributions from every rank onto every rank
    /// (ring algorithm, `p − 1` rounds). Returns the per-rank vectors in
    /// rank order.
    pub fn allgatherv<T: Msg + Clone>(&self, data: &[T]) -> SimResult<Vec<Vec<T>>> {
        self.record_collective();
        let _coll_span = self.collective_span("allgatherv");
        let p = self.size();
        let me = self.rank();
        let mut blocks: Vec<Option<Vec<T>>> = vec![None; p];
        blocks[me] = Some(data.to_vec());
        if p == 1 {
            return Ok(blocks.into_iter().map(|b| b.unwrap()).collect());
        }
        let tag = self.next_coll_tag();
        let right = (me + 1) % p;
        let left = (me + p - 1) % p;
        for step in 0..p - 1 {
            // Block that originated at rank (me - step) travels to the right.
            let send_origin = (me + p - step) % p;
            let recv_origin = (me + p - step - 1) % p;
            let to_send = blocks[send_origin]
                .clone()
                .expect("block to forward must have been received in a previous round");
            let received: Vec<T> =
                self.sendrecv(right, tag + step as u64, to_send, left, tag + step as u64)?;
            blocks[recv_origin] = Some(received);
            self.record_superstep();
        }
        Ok(blocks.into_iter().map(|b| b.unwrap()).collect())
    }

    /// Allgather returning the concatenation of all contributions in rank
    /// order.
    pub fn allgather<T: Msg + Clone>(&self, data: &[T]) -> SimResult<Vec<T>> {
        Ok(self.allgatherv(data)?.into_iter().flatten().collect())
    }

    /// Scatter one vector per destination rank from `root`. `data` must be
    /// `Some` on the root with exactly `p` entries.
    pub fn scatterv<T: Msg + Clone>(
        &self,
        root: usize,
        data: Option<Vec<Vec<T>>>,
    ) -> SimResult<Vec<T>> {
        self.record_collective();
        let _coll_span = self.collective_span("scatterv");
        let p = self.size();
        if root >= p {
            return Err(SimError::InvalidRank { rank: root, size: p });
        }
        let tag = self.next_coll_tag();
        let me = self.rank();
        if me == root {
            let mut data = data.ok_or_else(|| {
                SimError::CollectiveMismatch("scatterv root provided no data".to_string())
            })?;
            if data.len() != p {
                return Err(SimError::CollectiveMismatch(format!(
                    "scatterv root provided {} buffers for {} ranks",
                    data.len(),
                    p
                )));
            }
            for (dst, buf) in data.iter_mut().enumerate() {
                if dst != root {
                    self.send(dst, tag, std::mem::take(buf))?;
                }
            }
            self.record_superstep();
            Ok(std::mem::take(&mut data[root]))
        } else {
            let v = self.recv(root, tag)?;
            self.record_superstep();
            Ok(v)
        }
    }

    /// Personalized all-to-all with variable message sizes: `sendbufs[i]`
    /// goes to rank `i`; the result's entry `i` is the buffer received from
    /// rank `i`.
    pub fn alltoallv<T: Msg + Clone>(&self, sendbufs: Vec<Vec<T>>) -> SimResult<Vec<Vec<T>>> {
        self.record_collective();
        let _coll_span = self.collective_span("alltoallv");
        let p = self.size();
        if sendbufs.len() != p {
            return Err(SimError::CollectiveMismatch(format!(
                "alltoallv requires {} send buffers, got {}",
                p,
                sendbufs.len()
            )));
        }
        let tag = self.next_coll_tag();
        let me = self.rank();
        let mut out: Vec<Vec<T>> = vec![Vec::new(); p];
        let mut sendbufs = sendbufs;
        out[me] = std::mem::take(&mut sendbufs[me]);
        // Post all sends, then receive; channels are unbounded so this
        // cannot deadlock, and it mirrors the single-superstep h-relation.
        for offset in 1..p {
            let dst = (me + offset) % p;
            self.send(dst, tag, std::mem::take(&mut sendbufs[dst]))?;
        }
        for offset in 1..p {
            let src = (me + p - offset) % p;
            out[src] = self.recv(src, tag)?;
        }
        self.record_superstep();
        Ok(out)
    }

    /// Inclusive prefix sum (scan) of a scalar value across ranks
    /// (Hillis–Steele doubling, `⌈log₂ p⌉` rounds).
    pub fn scan_sum<T>(&self, value: T) -> SimResult<T>
    where
        T: Msg + Clone + Copy + std::ops::Add<Output = T>,
    {
        self.record_collective();
        let _coll_span = self.collective_span("scan_sum");
        let p = self.size();
        let me = self.rank();
        let tag = self.next_coll_tag();
        let mut incl = value;
        let mut d = 1usize;
        let mut round = 0u64;
        while d < p {
            if me + d < p {
                self.send(me + d, tag + round, incl)?;
            }
            if me >= d {
                let other: T = self.recv(me - d, tag + round)?;
                incl = other + incl;
                self.add_flops(1);
            }
            self.record_superstep();
            d <<= 1;
            round += 1;
        }
        Ok(incl)
    }

    /// Exclusive prefix sum: the sum of the values of all lower ranks
    /// (zero of `T` must be provided by `T: Default`; rank 0 receives it).
    pub fn exscan_sum<T>(&self, value: T) -> SimResult<T>
    where
        T: Msg + Clone + Copy + Default + std::ops::Add<Output = T> + std::ops::Sub<Output = T>,
    {
        let incl = self.scan_sum(value)?;
        Ok(incl - value)
    }

    /// Reduce-scatter with addition: element-wise sum of `data` across all
    /// ranks, then each rank keeps the block of the result assigned to it
    /// by `block_of` (a partition of indices into `p` contiguous blocks of
    /// the given lengths). Implemented as reduce + scatterv.
    pub fn reduce_scatter_sum<T>(&self, data: &[T], block_lens: &[usize]) -> SimResult<Vec<T>>
    where
        T: Msg + Clone + Copy + std::ops::Add<Output = T>,
    {
        let p = self.size();
        if block_lens.len() != p {
            return Err(SimError::CollectiveMismatch(format!(
                "reduce_scatter_sum needs {} block lengths, got {}",
                p,
                block_lens.len()
            )));
        }
        if block_lens.iter().sum::<usize>() != data.len() {
            return Err(SimError::CollectiveMismatch(
                "block lengths must sum to the buffer length".to_string(),
            ));
        }
        let reduced = self.reduce(0, data, |a, b| *a + *b)?;
        let chunks = reduced.map(|full| {
            let mut out = Vec::with_capacity(p);
            let mut offset = 0;
            for &len in block_lens {
                out.push(full[offset..offset + len].to_vec());
                offset += len;
            }
            out
        });
        self.scatterv(0, chunks)
    }
}

#[cfg(test)]
mod tests {
    use crate::runtime::Runtime;

    #[test]
    fn barrier_completes_for_various_sizes() {
        for p in [1, 2, 3, 5, 8] {
            let out = Runtime::new(p).run(|ctx| ctx.world().barrier().unwrap()).unwrap();
            assert_eq!(out.results.len(), p);
        }
    }

    #[test]
    fn bcast_distributes_root_value() {
        for p in [1, 2, 3, 4, 7] {
            for root in [0, p - 1] {
                let out = Runtime::new(p)
                    .run(|ctx| {
                        let data =
                            if ctx.rank() == root { Some(vec![1u64, 2, 3, 4]) } else { None };
                        ctx.world().bcast(root, data).unwrap()
                    })
                    .unwrap();
                for r in out.results {
                    assert_eq!(r, vec![1, 2, 3, 4]);
                }
            }
        }
    }

    #[test]
    fn bcast_invalid_root_errors() {
        let out = Runtime::new(2).run(|ctx| ctx.world().bcast(5, Some(1u8)).is_err()).unwrap();
        assert!(out.results.iter().all(|&e| e));
    }

    #[test]
    fn reduce_sums_on_root_only() {
        let p = 6;
        let out = Runtime::new(p)
            .run(|ctx| {
                let mine = vec![ctx.rank() as u64, 1u64];
                ctx.world().reduce(2, &mine, |a, b| a + b).unwrap()
            })
            .unwrap();
        let expected: u64 = (0..p as u64).sum();
        for (rank, r) in out.results.iter().enumerate() {
            if rank == 2 {
                assert_eq!(r.as_ref().unwrap(), &vec![expected, p as u64]);
            } else {
                assert!(r.is_none());
            }
        }
    }

    #[test]
    fn allreduce_sum_and_max() {
        let p = 5;
        let out = Runtime::new(p)
            .run(|ctx| {
                let mine = vec![ctx.rank() as u64, 100 - ctx.rank() as u64];
                let sum = ctx.world().allreduce_sum(&mine).unwrap();
                let max = ctx.world().allreduce_max(&mine).unwrap();
                (sum, max)
            })
            .unwrap();
        for (sum, max) in out.results {
            assert_eq!(sum, vec![10, 490]);
            assert_eq!(max, vec![4, 100]);
        }
    }

    #[test]
    fn allgatherv_returns_rank_ordered_blocks() {
        let p = 4;
        let out = Runtime::new(p)
            .run(|ctx| {
                // Rank r contributes r+1 copies of r.
                let mine = vec![ctx.rank() as u32; ctx.rank() + 1];
                ctx.world().allgatherv(&mine).unwrap()
            })
            .unwrap();
        for blocks in out.results {
            assert_eq!(blocks.len(), p);
            for (r, b) in blocks.iter().enumerate() {
                assert_eq!(b, &vec![r as u32; r + 1]);
            }
        }
    }

    #[test]
    fn gatherv_collects_on_root() {
        let p = 3;
        let out = Runtime::new(p)
            .run(|ctx| ctx.world().gatherv(1, &[ctx.rank() as u16]).unwrap())
            .unwrap();
        assert!(out.results[0].is_none());
        assert!(out.results[2].is_none());
        assert_eq!(out.results[1].as_ref().unwrap(), &vec![vec![0u16], vec![1], vec![2]]);
    }

    #[test]
    fn scatterv_distributes_blocks() {
        let p = 4;
        let out = Runtime::new(p)
            .run(|ctx| {
                let data = if ctx.rank() == 0 {
                    Some((0..4).map(|i| vec![i as u64 * 10, i as u64 * 10 + 1]).collect())
                } else {
                    None
                };
                ctx.world().scatterv(0, data).unwrap()
            })
            .unwrap();
        for (r, v) in out.results.iter().enumerate() {
            assert_eq!(v, &vec![r as u64 * 10, r as u64 * 10 + 1]);
        }
    }

    #[test]
    fn alltoallv_transposes_buffers() {
        let p = 4;
        let out = Runtime::new(p)
            .run(|ctx| {
                let me = ctx.rank();
                // Send [me, dst] to each dst.
                let bufs: Vec<Vec<u64>> = (0..p).map(|dst| vec![me as u64, dst as u64]).collect();
                ctx.world().alltoallv(bufs).unwrap()
            })
            .unwrap();
        for (me, received) in out.results.iter().enumerate() {
            for (src, buf) in received.iter().enumerate() {
                assert_eq!(buf, &vec![src as u64, me as u64]);
            }
        }
    }

    #[test]
    fn scan_and_exscan_compute_prefix_sums() {
        let p = 7;
        let out = Runtime::new(p)
            .run(|ctx| {
                let v = (ctx.rank() + 1) as u64;
                let incl = ctx.world().scan_sum(v).unwrap();
                let excl = ctx.world().exscan_sum(v).unwrap();
                (incl, excl)
            })
            .unwrap();
        for (rank, (incl, excl)) in out.results.iter().enumerate() {
            let expected_incl: u64 = (1..=rank as u64 + 1).sum();
            assert_eq!(*incl, expected_incl);
            assert_eq!(*excl, expected_incl - (rank as u64 + 1));
        }
    }

    #[test]
    fn reduce_scatter_sum_partitions_result() {
        let p = 3;
        let out = Runtime::new(p)
            .run(|ctx| {
                let data = vec![1u64; 6];
                ctx.world().reduce_scatter_sum(&data, &[1, 2, 3]).unwrap()
            })
            .unwrap();
        assert_eq!(out.results[0], vec![3]);
        assert_eq!(out.results[1], vec![3, 3]);
        assert_eq!(out.results[2], vec![3, 3, 3]);
    }

    #[test]
    fn split_creates_independent_row_communicators() {
        let p = 6;
        let out = Runtime::new(p)
            .run(|ctx| {
                // Two groups: even ranks and odd ranks.
                let color = (ctx.rank() % 2) as u64;
                let sub = ctx.world().split(color).unwrap();
                let sum = sub.allreduce_sum(&[ctx.rank() as u64]).unwrap()[0];
                (sub.rank(), sub.size(), sum)
            })
            .unwrap();
        for (rank, (sub_rank, sub_size, sum)) in out.results.iter().enumerate() {
            assert_eq!(*sub_size, 3);
            assert_eq!(*sub_rank, rank / 2);
            let expected: u64 = if rank % 2 == 0 { 2 + 4 } else { 1 + 3 + 5 };
            assert_eq!(*sum, expected);
        }
    }

    #[test]
    fn collective_spans_carry_predicted_cost() {
        gas_obs::set_enabled(true);
        Runtime::new(2)
            .run(|ctx| {
                ctx.world().allreduce_sum(&vec![1u64; 64]).unwrap();
            })
            .unwrap();
        gas_obs::set_enabled(false);
        let events = gas_obs::take_events();
        let colls: Vec<_> = events.iter().filter(|e| e.phase == "collective").collect();
        // allreduce decomposes into a reduce followed by a bcast.
        assert!(colls.iter().any(|e| e.name == "reduce"));
        assert!(colls.iter().any(|e| e.name == "bcast"));
        for e in &colls {
            let predicted = e
                .attrs
                .iter()
                .find(|(k, _)| *k == "predicted_us")
                .map(|(_, v)| *v)
                .expect("every collective span carries a predicted cost");
            assert!(predicted > 0.0, "{} predicted {predicted}", e.name);
        }
    }

    #[test]
    fn collective_costs_are_charged() {
        let p = 4;
        let out = Runtime::new(p)
            .run(|ctx| {
                ctx.world().allreduce_sum(&vec![1u64; 128]).unwrap();
            })
            .unwrap();
        let agg = out.aggregate();
        assert!(agg.total_bytes_sent > 0);
        assert!(agg.max_supersteps > 0);
        // Reduce+bcast over 4 ranks moves far less than p^2 messages.
        assert!(agg.total_msgs <= 2 * 4 * 3);
    }
}
