//! Processor grids and grid sub-communicators.
//!
//! Section III-C of the paper distributes the sparse product over a
//! `√(p/c) × √(p/c) × c` processor grid: each of the `c` layers computes a
//! share of the contributions to `B = AᵀA`, and the layers are reduced at
//! the end (a 2.5D / communication-avoiding matrix-multiplication layout).
//! [`ProcessorGrid`] maps ranks to grid coordinates and builds the row,
//! column and fiber (layer-crossing) communicators needed by the
//! distributed kernels in `gas-sparse`.

use crate::comm::Communicator;
use crate::error::{SimError, SimResult};
use serde::{Deserialize, Serialize};

/// A logical processor grid of up to three dimensions.
///
/// Ranks are laid out in row-major order over the dimensions:
/// `rank = ((k * dims[1]) + j) * dims[0] + i` for coordinates `(i, j, k)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcessorGrid {
    dims: Vec<usize>,
}

impl ProcessorGrid {
    /// A 1D grid (a plain communicator ordering).
    pub fn dims_1d(p: usize) -> SimResult<Self> {
        if p == 0 {
            return Err(SimError::InvalidGrid("grid must have at least one rank".to_string()));
        }
        Ok(ProcessorGrid { dims: vec![p] })
    }

    /// The most-square 2D grid with `rows × cols = p`.
    pub fn square_2d(p: usize) -> SimResult<Self> {
        if p == 0 {
            return Err(SimError::InvalidGrid("grid must have at least one rank".to_string()));
        }
        let mut rows = (p as f64).sqrt().floor() as usize;
        while rows > 1 && p % rows != 0 {
            rows -= 1;
        }
        let cols = p / rows.max(1);
        Ok(ProcessorGrid { dims: vec![rows.max(1), cols] })
    }

    /// An explicit grid with the given dimensions (2 or 3 of them).
    pub fn explicit(dims: &[usize]) -> SimResult<Self> {
        if dims.is_empty() || dims.len() > 3 {
            return Err(SimError::InvalidGrid(format!(
                "grids must have 1..=3 dimensions, got {}",
                dims.len()
            )));
        }
        if dims.contains(&0) {
            return Err(SimError::InvalidGrid("grid dimensions must be positive".to_string()));
        }
        Ok(ProcessorGrid { dims: dims.to_vec() })
    }

    /// The paper's 2.5D grid: `√(p/c) × √(p/c) × c`.
    ///
    /// `c` is clamped down to the largest replication factor for which
    /// `p / c` is a perfect square and `c` divides `p`; this mirrors how
    /// the implementation "replicates B in so far as possible".
    pub fn grid_25d(p: usize, c: usize) -> SimResult<Self> {
        if p == 0 {
            return Err(SimError::InvalidGrid("grid must have at least one rank".to_string()));
        }
        let mut c = c.clamp(1, p);
        loop {
            if p % c == 0 {
                let layer = p / c;
                let s = (layer as f64).sqrt().round() as usize;
                if s * s == layer {
                    return Ok(ProcessorGrid { dims: vec![s, s, c] });
                }
            }
            if c == 1 {
                break;
            }
            c -= 1;
        }
        // Fall back to the most-square 2D grid with a single layer.
        let g = ProcessorGrid::square_2d(p)?;
        Ok(ProcessorGrid { dims: vec![g.dims[0], g.dims[1], 1] })
    }

    /// The most-balanced rectangle `r × q = n` with `r ≤ q`: `r` is the
    /// largest divisor of `n` not exceeding `√n`. Every rank count has
    /// such a factorization (worst case `1 × n`), so rectangular grids
    /// never idle ranks the way square-only grids do.
    pub fn balanced_rect(n: usize) -> SimResult<(usize, usize)> {
        if n == 0 {
            return Err(SimError::InvalidGrid("grid must have at least one rank".to_string()));
        }
        let mut r = (n as f64).sqrt().floor() as usize;
        // Guard against floating-point rounding at perfect squares.
        while r > 1 && (r * r > n || n % r != 0) {
            r -= 1;
        }
        let r = r.max(1);
        Ok((r, n / r))
    }

    /// The rectangular 2.5D grid `r × q × c` with `r · q = p / c`: the
    /// replication factor is clamped down to the largest divisor of `p`
    /// not exceeding the request, and each layer is the most-balanced
    /// rectangle of `p / c` ranks. Unlike [`ProcessorGrid::grid_25d`]
    /// (which requires square layers), this covers *all* `p` ranks for
    /// every rank count.
    pub fn rect_3d(p: usize, c: usize) -> SimResult<Self> {
        if p == 0 {
            return Err(SimError::InvalidGrid("grid must have at least one rank".to_string()));
        }
        let mut c = c.clamp(1, p);
        while c > 1 && p % c != 0 {
            c -= 1;
        }
        let (r, q) = Self::balanced_rect(p / c)?;
        Ok(ProcessorGrid { dims: vec![r, q, c] })
    }

    /// Grid dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of ranks covered by the grid.
    pub fn size(&self) -> usize {
        self.dims.iter().product()
    }

    /// Number of rows (dimension 0).
    pub fn rows(&self) -> usize {
        self.dims[0]
    }

    /// Number of columns (dimension 1, or 1 for a 1D grid).
    pub fn cols(&self) -> usize {
        *self.dims.get(1).unwrap_or(&1)
    }

    /// Number of layers (dimension 2, or 1 for 1D/2D grids).
    pub fn layers(&self) -> usize {
        *self.dims.get(2).unwrap_or(&1)
    }

    /// Map a rank to its grid coordinates (always 3 entries; missing
    /// dimensions are 0).
    pub fn coords_of(&self, rank: usize) -> SimResult<[usize; 3]> {
        if rank >= self.size() {
            return Err(SimError::InvalidRank { rank, size: self.size() });
        }
        let rows = self.rows();
        let cols = self.cols();
        let i = rank % rows;
        let j = (rank / rows) % cols;
        let k = rank / (rows * cols);
        Ok([i, j, k])
    }

    /// Map grid coordinates to a rank.
    pub fn rank_of(&self, coords: [usize; 3]) -> SimResult<usize> {
        let [i, j, k] = coords;
        if i >= self.rows() || j >= self.cols() || k >= self.layers() {
            return Err(SimError::InvalidGrid(format!(
                "coordinates ({i}, {j}, {k}) outside grid {:?}",
                self.dims
            )));
        }
        Ok((k * self.cols() + j) * self.rows() + i)
    }

    /// Split `comm` into per-row communicators: all ranks that share the
    /// same (row, layer) — i.e. vary only along the column dimension.
    pub fn row_comm(&self, comm: &Communicator) -> SimResult<Communicator> {
        let c = self.coords_of(comm.rank())?;
        comm.split((c[0] + c[2] * self.rows()) as u64)
    }

    /// Split `comm` into per-column communicators: all ranks that share
    /// the same (column, layer) — i.e. vary only along the row dimension.
    pub fn col_comm(&self, comm: &Communicator) -> SimResult<Communicator> {
        let c = self.coords_of(comm.rank())?;
        comm.split((c[1] + c[2] * self.cols()) as u64)
    }

    /// Split `comm` into per-layer communicators: all ranks with the same
    /// layer index (a full 2D subgrid each).
    pub fn layer_comm(&self, comm: &Communicator) -> SimResult<Communicator> {
        let c = self.coords_of(comm.rank())?;
        comm.split(c[2] as u64)
    }

    /// Split `comm` into fiber communicators: ranks that share (row,
    /// column) and differ only in the layer index. Used for the final
    /// reduction across replicas in the 2.5D algorithm.
    pub fn fiber_comm(&self, comm: &Communicator) -> SimResult<Communicator> {
        let c = self.coords_of(comm.rank())?;
        comm.split((c[0] * self.cols() + c[1]) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Runtime;

    #[test]
    fn square_2d_prefers_square_factors() {
        assert_eq!(ProcessorGrid::square_2d(16).unwrap().dims(), &[4, 4]);
        assert_eq!(ProcessorGrid::square_2d(12).unwrap().dims(), &[3, 4]);
        assert_eq!(ProcessorGrid::square_2d(7).unwrap().dims(), &[1, 7]);
        assert_eq!(ProcessorGrid::square_2d(1).unwrap().dims(), &[1, 1]);
        assert!(ProcessorGrid::square_2d(0).is_err());
    }

    #[test]
    fn grid_25d_matches_paper_layout() {
        // p = 32, c = 2 -> 4 x 4 x 2
        assert_eq!(ProcessorGrid::grid_25d(32, 2).unwrap().dims(), &[4, 4, 2]);
        // p = 64, c = 4 -> 4 x 4 x 4
        assert_eq!(ProcessorGrid::grid_25d(64, 4).unwrap().dims(), &[4, 4, 4]);
        // Requested replication too large / not factorable: clamped down.
        assert_eq!(ProcessorGrid::grid_25d(16, 3).unwrap().dims(), &[4, 4, 1]);
        // Non-square p falls back to a 2D-ish grid with one layer.
        let g = ProcessorGrid::grid_25d(24, 1).unwrap();
        assert_eq!(g.size(), 24);
        assert_eq!(g.layers(), 1);
    }

    #[test]
    fn balanced_rect_is_the_most_square_factorization() {
        assert_eq!(ProcessorGrid::balanced_rect(1).unwrap(), (1, 1));
        assert_eq!(ProcessorGrid::balanced_rect(4).unwrap(), (2, 2));
        assert_eq!(ProcessorGrid::balanced_rect(6).unwrap(), (2, 3));
        assert_eq!(ProcessorGrid::balanced_rect(8).unwrap(), (2, 4));
        assert_eq!(ProcessorGrid::balanced_rect(12).unwrap(), (3, 4));
        assert_eq!(ProcessorGrid::balanced_rect(16).unwrap(), (4, 4));
        assert_eq!(ProcessorGrid::balanced_rect(7).unwrap(), (1, 7));
        assert!(ProcessorGrid::balanced_rect(0).is_err());
    }

    #[test]
    fn rect_3d_covers_every_rank() {
        for p in 1..=32 {
            for c in 1..=4 {
                let g = ProcessorGrid::rect_3d(p, c).unwrap();
                assert_eq!(g.size(), p, "p = {p}, c = {c}: grid {:?}", g.dims());
                assert!(g.layers() <= c.max(1));
            }
        }
        // The headline cases from the roadmap: non-square rank counts.
        assert_eq!(ProcessorGrid::rect_3d(8, 1).unwrap().dims(), &[2, 4, 1]);
        assert_eq!(ProcessorGrid::rect_3d(8, 2).unwrap().dims(), &[2, 2, 2]);
        assert_eq!(ProcessorGrid::rect_3d(12, 2).unwrap().dims(), &[2, 3, 2]);
        assert_eq!(ProcessorGrid::rect_3d(6, 1).unwrap().dims(), &[2, 3, 1]);
        // Replication that does not divide p is clamped down.
        assert_eq!(ProcessorGrid::rect_3d(7, 2).unwrap().dims(), &[1, 7, 1]);
        assert!(ProcessorGrid::rect_3d(0, 1).is_err());
    }

    #[test]
    fn coords_roundtrip() {
        let g = ProcessorGrid::explicit(&[3, 4, 2]).unwrap();
        assert_eq!(g.size(), 24);
        for rank in 0..g.size() {
            let c = g.coords_of(rank).unwrap();
            assert_eq!(g.rank_of(c).unwrap(), rank);
        }
        assert!(g.coords_of(24).is_err());
        assert!(g.rank_of([3, 0, 0]).is_err());
    }

    #[test]
    fn explicit_rejects_bad_dims() {
        assert!(ProcessorGrid::explicit(&[]).is_err());
        assert!(ProcessorGrid::explicit(&[2, 0]).is_err());
        assert!(ProcessorGrid::explicit(&[2, 2, 2, 2]).is_err());
    }

    #[test]
    fn row_col_fiber_comms_have_expected_sizes() {
        let p = 8;
        let grid = ProcessorGrid::explicit(&[2, 2, 2]).unwrap();
        let out = Runtime::new(p)
            .run(|ctx| {
                let grid = ProcessorGrid::explicit(&[2, 2, 2]).unwrap();
                let world = ctx.world();
                let row = grid.row_comm(world).unwrap();
                let col = grid.col_comm(world).unwrap();
                let layer = grid.layer_comm(world).unwrap();
                let fiber = grid.fiber_comm(world).unwrap();
                (row.size(), col.size(), layer.size(), fiber.size())
            })
            .unwrap();
        assert_eq!(grid.size(), p);
        for (r, c, l, f) in out.results {
            assert_eq!(r, 2);
            assert_eq!(c, 2);
            assert_eq!(l, 4);
            assert_eq!(f, 2);
        }
    }

    #[test]
    fn fiber_reduction_sums_across_layers() {
        // 2 x 2 x 2 grid; each rank contributes its layer index; the fiber
        // allreduce should give 0 + 1 = 1 everywhere.
        let out = Runtime::new(8)
            .run(|ctx| {
                let grid = ProcessorGrid::explicit(&[2, 2, 2]).unwrap();
                let coords = grid.coords_of(ctx.rank()).unwrap();
                let fiber = grid.fiber_comm(ctx.world()).unwrap();
                fiber.allreduce_sum(&[coords[2] as u64]).unwrap()[0]
            })
            .unwrap();
        assert!(out.results.iter().all(|&v| v == 1));
    }
}
