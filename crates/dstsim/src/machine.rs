//! Machine descriptions: node and network parameters for cost projection.
//!
//! The paper evaluates on Stampede2: Intel Xeon Phi 7250 (KNL) nodes with
//! 68 cores, 96 GB DDR4 plus 16 GB MCDRAM (configurable as a direct-mapped
//! L3 cache or as flat memory), connected by a 100 Gb/s Omni-Path fat
//! tree, running 32 MPI processes per node. A [`Machine`] captures the
//! parameters of such a system that matter for the BSP cost model and
//! produces the corresponding [`CostModel`] for a given rank layout.

use crate::cost::CostModel;
use crate::error::{SimError, SimResult};
use serde::{Deserialize, Serialize};

/// Description of a target distributed-memory machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Machine {
    /// Human-readable name (used in reports).
    pub name: String,
    /// Number of physical cores per node.
    pub cores_per_node: usize,
    /// MPI-style ranks launched per node (the paper uses 32 on KNL).
    pub ranks_per_node: usize,
    /// DRAM per node in bytes.
    pub mem_per_node: usize,
    /// Network latency per message / superstep, seconds.
    pub net_latency: f64,
    /// Network injection bandwidth per node, bytes/second.
    pub net_bandwidth: f64,
    /// Effective scalar arithmetic rate per rank, ops/second.
    pub flops_per_rank: f64,
    /// Memory streaming bandwidth per rank when the fast on-package memory
    /// (MCDRAM) acts as a cache, bytes/second.
    pub stream_bw_cached: f64,
    /// Memory streaming bandwidth per rank without the fast cache (flat /
    /// DDR-only mode), bytes/second.
    pub stream_bw_flat: f64,
    /// Whether MCDRAM (or the equivalent fast memory) is used as a cache.
    pub mcdram_cache: bool,
}

impl Machine {
    /// A Stampede2-like KNL cluster node: 68 cores, 96 GB DDR4, 16 GB
    /// MCDRAM, 100 Gb/s Omni-Path, 32 ranks per node (the configuration
    /// used throughout the paper's evaluation).
    pub fn stampede2_knl() -> Self {
        Machine {
            name: "stampede2-knl".to_string(),
            cores_per_node: 68,
            ranks_per_node: 32,
            mem_per_node: 96 * (1usize << 30),
            net_latency: 2.0e-6,
            // 100 Gb/s = 12.5 GB/s injection per node.
            net_bandwidth: 12.5e9,
            // KNL scalar-ish effective rate per rank for irregular sparse
            // kernels (popcount/AND over CSR) — deliberately modest.
            flops_per_rank: 1.2e9,
            // ~450 GB/s MCDRAM vs ~90 GB/s DDR4 per node, divided by ranks.
            stream_bw_cached: 450.0e9 / 32.0,
            stream_bw_flat: 90.0e9 / 32.0,
            mcdram_cache: true,
        }
    }

    /// A small commodity workstation (useful for local experiments and to
    /// contrast against the cluster model).
    pub fn laptop() -> Self {
        Machine {
            name: "laptop".to_string(),
            cores_per_node: 8,
            ranks_per_node: 8,
            mem_per_node: 16 * (1usize << 30),
            net_latency: 0.5e-6,
            net_bandwidth: 20.0e9,
            flops_per_rank: 2.0e9,
            stream_bw_cached: 30.0e9 / 8.0,
            stream_bw_flat: 30.0e9 / 8.0,
            mcdram_cache: true,
        }
    }

    /// Return a copy with MCDRAM-as-cache enabled or disabled
    /// (the Section V-D study).
    pub fn with_mcdram_cache(mut self, enabled: bool) -> Self {
        self.mcdram_cache = enabled;
        self
    }

    /// Memory available to each rank, in bytes.
    pub fn mem_per_rank(&self) -> usize {
        self.mem_per_node / self.ranks_per_node.max(1)
    }

    /// Build the α–β–γ [`CostModel`] for this machine.
    ///
    /// β is derived from the per-node injection bandwidth divided across
    /// the ranks sharing the NIC; γ from the effective per-rank arithmetic
    /// rate; the streaming bandwidth depends on the MCDRAM mode.
    pub fn cost_model(&self) -> SimResult<CostModel> {
        if self.ranks_per_node == 0 || self.cores_per_node == 0 {
            return Err(SimError::InvalidConfig(
                "ranks_per_node and cores_per_node must be positive".to_string(),
            ));
        }
        if self.net_bandwidth <= 0.0 || self.flops_per_rank <= 0.0 {
            return Err(SimError::InvalidConfig(
                "bandwidth and flop rate must be positive".to_string(),
            ));
        }
        let model = CostModel {
            alpha: self.net_latency,
            beta: self.ranks_per_node as f64 / self.net_bandwidth,
            gamma: 1.0 / self.flops_per_rank,
            mem_per_rank: self.mem_per_rank(),
            stream_bw: if self.mcdram_cache { self.stream_bw_cached } else { self.stream_bw_flat },
        };
        model.validate()?;
        Ok(model)
    }

    /// Total ranks when using `nodes` nodes of this machine.
    pub fn total_ranks(&self, nodes: usize) -> usize {
        nodes * self.ranks_per_node
    }
}

impl Default for Machine {
    fn default() -> Self {
        Machine::stampede2_knl()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stampede2_preset_matches_paper_configuration() {
        let m = Machine::stampede2_knl();
        assert_eq!(m.cores_per_node, 68);
        assert_eq!(m.ranks_per_node, 32);
        assert_eq!(m.mem_per_node, 96 * (1usize << 30));
        assert!(m.mcdram_cache);
        assert_eq!(m.total_ranks(1024), 32_768);
    }

    #[test]
    fn mem_per_rank_divides_node_memory() {
        let m = Machine::stampede2_knl();
        assert_eq!(m.mem_per_rank(), 96 * (1usize << 30) / 32);
    }

    #[test]
    fn cost_model_reflects_mcdram_mode() {
        let cached = Machine::stampede2_knl().cost_model().unwrap();
        let flat = Machine::stampede2_knl().with_mcdram_cache(false).cost_model().unwrap();
        assert!(cached.stream_bw > flat.stream_bw);
        assert_eq!(cached.alpha, flat.alpha);
        assert_eq!(cached.beta, flat.beta);
    }

    #[test]
    fn cost_model_rejects_degenerate_machines() {
        let mut m = Machine::laptop();
        m.ranks_per_node = 0;
        assert!(m.cost_model().is_err());
        let mut m = Machine::laptop();
        m.net_bandwidth = 0.0;
        assert!(m.cost_model().is_err());
    }

    #[test]
    fn beta_scales_with_ranks_sharing_the_nic() {
        let m = Machine::stampede2_knl();
        let c = m.cost_model().unwrap();
        // 32 ranks share 12.5 GB/s.
        let expected = 32.0 / 12.5e9;
        assert!((c.beta - expected).abs() / expected < 1e-12);
    }
}
