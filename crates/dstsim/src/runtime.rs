//! The simulated distributed runtime: spawns ranks as threads and collects
//! per-rank results and cost reports.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::unbounded;

use crate::comm::{Communicator, Fabric, Mailbox};
use crate::cost::{AggregateCost, CostModel, CostReport, CostTracker};
use crate::error::{SimError, SimResult};
use crate::faults::RankFaults;
use crate::machine::Machine;

/// Per-rank execution context handed to the user closure by
/// [`Runtime::run`].
///
/// It exposes the rank id, the world [`Communicator`] and the machine
/// description, and forwards cost-charging helpers to the rank's tracker.
pub struct RankCtx {
    rank: usize,
    nranks: usize,
    world: Communicator,
    machine: Machine,
    cost: Rc<RefCell<CostTracker>>,
    faults: Arc<RankFaults>,
}

impl RankCtx {
    /// This rank's id in the world communicator.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of ranks in the run.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// The world communicator (all ranks).
    pub fn world(&self) -> &Communicator {
        &self.world
    }

    /// The machine description used for cost projection.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Charge `n` local arithmetic operations to this rank.
    pub fn add_flops(&self, n: u64) {
        self.cost.borrow_mut().add_flops(n);
    }

    /// Charge `bytes` of local streaming memory traffic to this rank.
    pub fn add_mem_traffic(&self, bytes: u64) {
        self.cost.borrow_mut().add_mem_traffic(bytes);
    }

    /// Record one explicit superstep boundary in the caller's algorithm.
    pub fn record_superstep(&self) {
        self.cost.borrow_mut().record_superstep();
    }

    /// Memory budget available to this rank (bytes), from the machine.
    pub fn mem_per_rank(&self) -> usize {
        self.machine.mem_per_rank()
    }

    /// The injected fault spec for this run (empty by default).
    pub fn faults(&self) -> &RankFaults {
        &self.faults
    }

    /// Is this rank injected as crashed? Crashed ranks should return
    /// early from their closure; any communication they attempt fails
    /// with [`SimError::RankCrashed`].
    pub fn is_crashed(&self) -> bool {
        self.faults.is_crashed(self.rank)
    }

    /// Ranks not injected as crashed, ascending — the membership list a
    /// survivor passes to `Communicator::subgroup` to regroup.
    pub fn alive_ranks(&self) -> Vec<usize> {
        self.faults.alive_ranks(self.nranks)
    }

    /// Unwrap `result`, panicking with this rank's id, the world size,
    /// a caller-supplied operation name and the error.
    ///
    /// Rank closures that `.unwrap()` surface through
    /// [`SimError::RankPanicked`] with only the raw panic payload —
    /// "called `Result::unwrap()` on an `Err` value" tells a CI log
    /// nothing about *which* collective failed on *which* rank. Tests and
    /// distributed drivers should unwrap through this helper instead so
    /// dist-matrix failures are diagnosable from the message alone.
    #[track_caller]
    pub fn expect_ok<T, E: std::fmt::Debug>(&self, what: &str, result: Result<T, E>) -> T {
        match result {
            Ok(v) => v,
            Err(e) => panic!("rank {}/{}: {what} failed: {e:?}", self.rank, self.nranks),
        }
    }
}

/// Output of a completed [`Runtime::run`]: the per-rank return values (in
/// rank order) and their cost reports.
#[derive(Debug)]
pub struct RunOutput<R> {
    /// Value returned by each rank's closure, indexed by rank.
    pub results: Vec<R>,
    /// Per-rank cost counters.
    pub reports: Vec<CostReport>,
}

impl<R> RunOutput<R> {
    /// Aggregate communication/computation statistics over all ranks.
    pub fn aggregate(&self) -> AggregateCost {
        AggregateCost::from_reports(&self.reports)
    }

    /// BSP-projected execution time under `model`.
    pub fn projected_time(&self, model: &CostModel) -> f64 {
        model.project(&self.reports)
    }

    /// Maximum measured wall-clock time across ranks (the simulator's own
    /// notion of elapsed time for the parallel section).
    pub fn measured_time(&self) -> f64 {
        self.reports.iter().map(|r| r.measured_seconds).fold(0.0, f64::max)
    }
}

/// A simulated distributed machine runner.
///
/// `Runtime::new(p)` prepares a world of `p` ranks; [`Runtime::run`]
/// executes a closure on every rank concurrently (each rank on its own OS
/// thread) and returns their results together with cost reports.
pub struct Runtime {
    nranks: usize,
    machine: Machine,
    faults: Arc<RankFaults>,
}

impl Runtime {
    /// Create a runtime with `nranks` simulated ranks and the default
    /// (Stampede2-like) machine model.
    pub fn new(nranks: usize) -> Self {
        Runtime { nranks, machine: Machine::default(), faults: Arc::new(RankFaults::none()) }
    }

    /// Use a specific machine description for memory budgets and cost
    /// projection.
    pub fn with_machine(mut self, machine: Machine) -> Self {
        self.machine = machine;
        self
    }

    /// Inject a fault spec: crashed/slowed ranks and receive timeouts.
    /// The spec is fixed for the whole run, so the failure schedule is
    /// deterministic.
    pub fn with_faults(mut self, faults: RankFaults) -> Self {
        self.faults = Arc::new(faults);
        self
    }

    /// Number of ranks this runtime will spawn.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// The machine model in use.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Run `f` on every rank. Blocks until all ranks finish.
    ///
    /// The closure receives a [`RankCtx`]; its return values are collected
    /// in rank order. If any rank panics the whole run fails with
    /// [`SimError::RankPanicked`].
    pub fn run<F, R>(&self, f: F) -> SimResult<RunOutput<R>>
    where
        F: Fn(&mut RankCtx) -> R + Send + Sync,
        R: Send,
    {
        if self.nranks == 0 {
            return Err(SimError::InvalidWorldSize(0));
        }
        let p = self.nranks;
        // Build the fabric: one unbounded channel per rank.
        let mut senders = Vec::with_capacity(p);
        let mut receivers = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(Some(rx));
        }
        let fabric = Arc::new(Fabric { senders });
        let f = &f;
        let machine = &self.machine;

        let mut slots: Vec<Option<std::thread::Result<(R, CostReport)>>> = Vec::with_capacity(p);
        for _ in 0..p {
            slots.push(None);
        }

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for (rank, rx) in receivers.iter_mut().enumerate() {
                let rx = rx.take().expect("receiver taken once");
                let fabric = Arc::clone(&fabric);
                let faults = Arc::clone(&self.faults);
                handles.push(scope.spawn(move || {
                    let cost = Rc::new(RefCell::new(CostTracker::new()));
                    let mailbox = Rc::new(RefCell::new(Mailbox { rx, pending: Vec::new() }));
                    let world = Communicator::world(
                        rank,
                        p,
                        fabric,
                        mailbox,
                        Rc::clone(&cost),
                        Arc::clone(&faults),
                    );
                    let mut ctx = RankCtx {
                        rank,
                        nranks: p,
                        world,
                        machine: machine.clone(),
                        cost: Rc::clone(&cost),
                        faults,
                    };
                    let start = Instant::now();
                    let result = f(&mut ctx);
                    let elapsed = start.elapsed().as_secs_f64();
                    let report = cost.borrow().report(rank, elapsed);
                    (result, report)
                }));
            }
            for (rank, handle) in handles.into_iter().enumerate() {
                slots[rank] = Some(handle.join());
            }
        });

        let mut results = Vec::with_capacity(p);
        let mut reports = Vec::with_capacity(p);
        for (rank, slot) in slots.into_iter().enumerate() {
            match slot.expect("every rank produces a slot") {
                Ok((r, rep)) => {
                    results.push(r);
                    reports.push(rep);
                }
                Err(payload) => {
                    let message = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "unknown panic".to_string());
                    return Err(SimError::RankPanicked { rank, message });
                }
            }
        }
        Ok(RunOutput { results, reports })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_returns_results_in_rank_order() {
        let rt = Runtime::new(5);
        let out = rt.run(|ctx| ctx.rank() * 10).unwrap();
        assert_eq!(out.results, vec![0, 10, 20, 30, 40]);
        assert_eq!(out.reports.len(), 5);
        for (i, r) in out.reports.iter().enumerate() {
            assert_eq!(r.rank, i);
        }
    }

    #[test]
    fn zero_ranks_is_an_error() {
        let rt = Runtime::new(0);
        assert_eq!(rt.run(|_| ()).unwrap_err(), SimError::InvalidWorldSize(0));
    }

    #[test]
    fn point_to_point_ring_exchange() {
        let p = 4;
        let rt = Runtime::new(p);
        let out = rt
            .run(|ctx| {
                let comm = ctx.world();
                let right = (ctx.rank() + 1) % ctx.nranks();
                let left = (ctx.rank() + ctx.nranks() - 1) % ctx.nranks();
                let recvd: u64 = ctx.expect_ok(
                    "ring sendrecv",
                    comm.sendrecv(right, 7, ctx.rank() as u64, left, 7),
                );
                recvd
            })
            .unwrap();
        assert_eq!(out.results, vec![3, 0, 1, 2]);
        // Every rank sent and received exactly one 8-byte message.
        for r in &out.reports {
            assert_eq!(r.msgs_sent, 1);
            assert_eq!(r.msgs_received, 1);
            assert_eq!(r.bytes_sent, 8);
            assert_eq!(r.bytes_received, 8);
        }
    }

    #[test]
    fn panicking_rank_is_reported() {
        let rt = Runtime::new(3);
        let err = rt
            .run(|ctx| {
                if ctx.rank() == 1 {
                    panic!("rank one failed");
                }
                ctx.rank()
            })
            .unwrap_err();
        match err {
            SimError::RankPanicked { rank, message } => {
                assert_eq!(rank, 1);
                assert!(message.contains("rank one failed"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn flops_and_mem_traffic_are_charged() {
        let rt = Runtime::new(2);
        let out = rt
            .run(|ctx| {
                ctx.add_flops(100);
                ctx.add_mem_traffic(4096);
                ctx.record_superstep();
            })
            .unwrap();
        for r in &out.reports {
            assert_eq!(r.flops, 100);
            assert_eq!(r.mem_traffic, 4096);
            assert_eq!(r.supersteps, 1);
        }
        let agg = out.aggregate();
        assert_eq!(agg.total_flops, 200);
    }

    #[test]
    fn expect_ok_panics_with_rank_and_error_context() {
        // The raw payload of a failed `.unwrap()` says nothing about which
        // rank died; `expect_ok` must name the rank, the world size, the
        // operation and the error so dist-matrix logs are diagnosable.
        let rt = Runtime::new(3);
        let err = rt
            .run(|ctx| {
                let result: Result<(), SimError> = if ctx.rank() == 1 {
                    Err(SimError::TypeMismatch { src: 0, tag: 9 })
                } else {
                    Ok(())
                };
                ctx.expect_ok("probe shard buckets", result)
            })
            .unwrap_err();
        match err {
            SimError::RankPanicked { rank, message } => {
                assert_eq!(rank, 1);
                assert!(message.contains("rank 1/3"), "missing rank context: {message}");
                assert!(
                    message.contains("probe shard buckets"),
                    "missing operation name: {message}"
                );
                assert!(message.contains("TypeMismatch"), "missing error detail: {message}");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn type_mismatch_on_recv_is_detected() {
        let rt = Runtime::new(2);
        let err = rt
            .run(|ctx| {
                let comm = ctx.world();
                if ctx.rank() == 0 {
                    ctx.expect_ok("send to rank 1", comm.send(1, 3, 42u64));
                    Ok(())
                } else {
                    // Expect a f32 although a u64 was sent.
                    match comm.recv::<f32>(0, 3) {
                        Err(e) => Err(e),
                        Ok(_) => Ok(()),
                    }
                }
            })
            .unwrap();
        assert_eq!(err.results[1], Err(SimError::TypeMismatch { src: 0, tag: 3 }));
    }

    #[test]
    fn crashed_rank_surfaces_as_typed_errors_not_hangs() {
        // A crashed rank fails its own ops; peers addressing it fail
        // too — immediately and deterministically, no timers involved.
        let rt = Runtime::new(3).with_faults(RankFaults::none().crash(1));
        let out = rt
            .run(|ctx| {
                let comm = ctx.world();
                if ctx.is_crashed() {
                    return comm.send(0, 5, 1u64).map(|_| 0);
                }
                if ctx.rank() == 0 {
                    comm.recv::<u64>(1, 5).map(|v| v as usize)
                } else {
                    Ok(ctx.rank())
                }
            })
            .unwrap();
        assert_eq!(out.results[0], Err(SimError::RankCrashed { rank: 1 }));
        assert_eq!(out.results[1], Err(SimError::RankCrashed { rank: 1 }));
        assert_eq!(out.results[2], Ok(2));
    }

    #[test]
    fn collective_with_a_crashed_rank_errors_instead_of_poisoning_the_run() {
        // The satellite pin: a failed collective must surface as a typed
        // error on every alive rank, never as a panic/hang. An alive
        // rank either hits the crashed peer directly (RankCrashed) or
        // waits on another alive rank that already aborted (Timeout).
        let faults = RankFaults::none().crash(2).with_recv_timeout(50_000);
        let rt = Runtime::new(4).with_faults(faults);
        let out = rt
            .run(|ctx| {
                if ctx.is_crashed() {
                    return Err(SimError::RankCrashed { rank: ctx.rank() });
                }
                ctx.world().allreduce_sum(&[ctx.rank() as u64]).map(|v| v[0])
            })
            .unwrap();
        for (rank, result) in out.results.iter().enumerate() {
            assert!(
                matches!(result, Err(SimError::RankCrashed { .. }) | Err(SimError::Timeout { .. })),
                "rank {rank} should see the crash as a typed error, got {result:?}"
            );
        }
    }

    #[test]
    fn survivors_regroup_with_subgroup_and_finish_the_collective() {
        let faults = RankFaults::none().crash(1);
        let rt = Runtime::new(4).with_faults(faults);
        let out = rt
            .run(|ctx| {
                if ctx.is_crashed() {
                    return Ok(0);
                }
                let alive = ctx.alive_ranks();
                let sub = ctx.world().subgroup(&alive)?;
                sub.allreduce_sum(&[ctx.rank() as u64]).map(|v| v[0])
            })
            .unwrap();
        assert_eq!(out.results, vec![Ok(2 + 3), Ok(0), Ok(5), Ok(5)]);
    }

    #[test]
    fn silent_peer_with_recv_timeout_yields_typed_timeout() {
        let rt = Runtime::new(2).with_faults(RankFaults::none().with_recv_timeout(5_000));
        let out = rt
            .run(|ctx| {
                if ctx.rank() == 0 {
                    // Rank 1 never sends: the receive must time out.
                    ctx.world().recv::<u64>(1, 9).err()
                } else {
                    None
                }
            })
            .unwrap();
        assert_eq!(out.results[0], Some(SimError::Timeout { src: 1, waited_micros: 5_000 }));
    }

    #[test]
    fn subgroup_rejects_bad_member_lists() {
        let rt = Runtime::new(3);
        rt.run(|ctx| {
            let w = ctx.world();
            assert!(w.subgroup(&[]).is_err());
            assert!(w.subgroup(&[0, 0, 1]).is_err(), "duplicates must be rejected");
            assert!(w.subgroup(&[0, 9]).is_err(), "out-of-world rank must be rejected");
            if ctx.rank() == 2 {
                assert!(w.subgroup(&[0, 1]).is_err(), "caller must be a member");
            }
        })
        .unwrap();
    }

    #[test]
    fn mem_per_rank_comes_from_machine() {
        let rt = Runtime::new(1).with_machine(Machine::laptop());
        let out = rt.run(|ctx| ctx.mem_per_rank()).unwrap();
        assert_eq!(out.results[0], Machine::laptop().mem_per_rank());
    }
}
