//! # gas-dstsim — a distributed-memory runtime simulator
//!
//! The SimilarityAtScale paper (Besta et al., IPDPS 2020) runs on up to
//! 1024 Stampede2 nodes with MPI. Mature MPI bindings are not available in
//! this reproduction environment, so this crate provides the substrate the
//! algorithm needs:
//!
//! * a **runtime** that executes `p` ranks as OS threads, each with its own
//!   address space discipline (ranks only exchange data through explicit
//!   messages),
//! * an MPI-like **communicator** with typed point-to-point messages and a
//!   full set of **collectives** (barrier, broadcast, reduce, allreduce,
//!   gather, allgather, scatter, all-to-all-v, scan, exclusive scan,
//!   reduce-scatter) implemented with realistic algorithms (binomial trees,
//!   recursive doubling, rings) so message and byte counts match what a
//!   real MPI library would produce,
//! * **processor grids** (1D / 2D / `√(p/c) × √(p/c) × c`) with row,
//!   column and fiber sub-communicators — the layout used by the paper's
//!   2.5D sparse matrix multiplication,
//! * a **BSP α–β–γ cost model**: every send, receive, collective and local
//!   arithmetic operation is charged to a per-rank [`cost::CostTracker`],
//!   and a [`cost::CostModel`] turns those counters into projected times
//!   for a target machine (e.g. a Stampede2-like KNL cluster with
//!   Omni-Path), including larger scales than the host can run natively.
//!
//! The simulator runs the *real* algorithm — data genuinely moves between
//! ranks and results are bit-exact — while the cost model reproduces the
//! communication/synchronization behaviour the paper's evaluation is about.
//!
//! ## Example
//!
//! ```
//! use gas_dstsim::runtime::Runtime;
//!
//! // Sum rank ids with an allreduce across 4 simulated ranks.
//! let runtime = Runtime::new(4);
//! let out = runtime
//!     .run(|ctx| {
//!         let mine = vec![ctx.rank() as u64];
//!         ctx.world().allreduce_sum(&mine).unwrap()
//!     })
//!     .unwrap();
//! assert!(out.results.iter().all(|v| v[0] == 0 + 1 + 2 + 3));
//! ```

pub mod collectives;
pub mod comm;
pub mod cost;
pub mod error;
pub mod faults;
pub mod machine;
pub mod runtime;
pub mod topology;

pub use comm::Communicator;
pub use cost::{CostModel, CostReport, CostTracker};
pub use error::{SimError, SimResult};
pub use faults::RankFaults;
pub use machine::Machine;
pub use runtime::{RankCtx, RunOutput, Runtime};
pub use topology::ProcessorGrid;
