//! Error types for the distributed runtime simulator.

use std::fmt;

/// Result alias used throughout the simulator.
pub type SimResult<T> = Result<T, SimError>;

/// Errors produced by the simulated distributed runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A rank index was outside `0..nranks` for the communicator at hand.
    InvalidRank {
        /// Offending rank.
        rank: usize,
        /// Size of the communicator.
        size: usize,
    },
    /// The requested number of ranks is zero or otherwise unusable.
    InvalidWorldSize(usize),
    /// A received message could not be downcast to the requested type.
    TypeMismatch {
        /// Source rank of the offending message.
        src: usize,
        /// Tag of the offending message.
        tag: u64,
    },
    /// A peer disconnected (its thread terminated) while a receive was
    /// still pending.
    Disconnected {
        /// Rank that was being waited on.
        src: usize,
    },
    /// A processor grid could not be formed with the requested shape.
    InvalidGrid(String),
    /// Collective called with inconsistent arguments across ranks
    /// (e.g. mismatched lengths where equal lengths are required).
    CollectiveMismatch(String),
    /// One or more ranks panicked during `Runtime::run`.
    RankPanicked {
        /// Rank whose closure panicked.
        rank: usize,
        /// Best-effort panic message.
        message: String,
    },
    /// Generic configuration error (bad machine/cost-model parameters).
    InvalidConfig(String),
    /// A communication op touched a rank injected as crashed (fault
    /// injection): the sender/receiver itself, or the peer it addressed.
    RankCrashed {
        /// The crashed rank (world numbering).
        rank: usize,
    },
    /// A receive waited longer than the injected timeout without the
    /// matching message arriving.
    Timeout {
        /// Local rank the receive was waiting on.
        src: usize,
        /// The configured timeout that elapsed, in microseconds.
        waited_micros: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidRank { rank, size } => {
                write!(f, "invalid rank {rank} for communicator of size {size}")
            }
            SimError::InvalidWorldSize(p) => write!(f, "invalid world size {p}"),
            SimError::TypeMismatch { src, tag } => {
                write!(f, "message from rank {src} with tag {tag} has unexpected payload type")
            }
            SimError::Disconnected { src } => {
                write!(f, "rank {src} disconnected while a receive was pending")
            }
            SimError::InvalidGrid(msg) => write!(f, "invalid processor grid: {msg}"),
            SimError::CollectiveMismatch(msg) => write!(f, "collective mismatch: {msg}"),
            SimError::RankPanicked { rank, message } => {
                write!(f, "rank {rank} panicked: {message}")
            }
            SimError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SimError::RankCrashed { rank } => {
                write!(f, "rank {rank} is crashed (injected fault)")
            }
            SimError::Timeout { src, waited_micros } => {
                write!(f, "receive from rank {src} timed out after {waited_micros} us")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SimError::InvalidRank { rank: 9, size: 4 };
        assert!(e.to_string().contains("invalid rank 9"));
        let e = SimError::InvalidWorldSize(0);
        assert!(e.to_string().contains("world size 0"));
        let e = SimError::TypeMismatch { src: 1, tag: 7 };
        assert!(e.to_string().contains("tag 7"));
        let e = SimError::Disconnected { src: 3 };
        assert!(e.to_string().contains("rank 3"));
        let e = SimError::InvalidGrid("p=3 not square".into());
        assert!(e.to_string().contains("not square"));
        let e = SimError::CollectiveMismatch("len".into());
        assert!(e.to_string().contains("len"));
        let e = SimError::RankPanicked { rank: 2, message: "boom".into() };
        assert!(e.to_string().contains("boom"));
        let e = SimError::InvalidConfig("alpha < 0".into());
        assert!(e.to_string().contains("alpha"));
        let e = SimError::RankCrashed { rank: 5 };
        assert!(e.to_string().contains("rank 5"));
        let e = SimError::Timeout { src: 2, waited_micros: 1500 };
        assert!(e.to_string().contains("1500"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(SimError::InvalidWorldSize(0), SimError::InvalidWorldSize(0));
        assert_ne!(SimError::InvalidWorldSize(0), SimError::InvalidWorldSize(1));
    }
}
