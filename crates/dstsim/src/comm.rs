//! Point-to-point messaging between simulated ranks.
//!
//! Ranks run as threads but are only allowed to exchange data through a
//! [`Communicator`], mirroring the discipline of a distributed-memory
//! (MPI) program. Every message is charged to the sending and receiving
//! rank's [`CostTracker`](crate::cost::CostTracker) so that the BSP cost
//! model sees the same traffic a real MPI run would produce.
//!
//! Messages carry owned Rust values (no serialization is performed — the
//! simulator runs in one process), but the number of bytes a message
//! *would* occupy on the wire is computed through the [`Msg`] trait.

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::rc::Rc;
use std::sync::Arc;

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};

use crate::cost::{CostModel, CostTracker};
use crate::error::{SimError, SimResult};
use crate::faults::RankFaults;

/// RAII guard around one collective call: a `gas_obs` span plus a
/// snapshot of the rank's cost counters at entry. When the span closes,
/// the counter deltas are converted through [`CostModel::default`] into
/// the BSP-predicted time of the collective and attached as a
/// `predicted_us` attribute — so a trace carries the model's prediction
/// right next to the measured wall-clock duration of the same call.
pub(crate) struct CollectiveSpan {
    span: gas_obs::Span,
    cost: Rc<RefCell<CostTracker>>,
    start_supersteps: u64,
    start_bytes: u64,
    start_flops: u64,
}

impl Drop for CollectiveSpan {
    fn drop(&mut self) {
        if !self.span.is_recording() {
            return;
        }
        let (supersteps, bytes, flops) = {
            let c = self.cost.borrow();
            (
                c.supersteps() - self.start_supersteps,
                c.bytes_received() - self.start_bytes,
                c.flops() - self.start_flops,
            )
        };
        let model = CostModel::default();
        let predicted_seconds = supersteps as f64 * model.alpha
            + bytes as f64 * model.beta
            + flops as f64 * model.gamma;
        self.span.annotate("predicted_us", predicted_seconds * 1e6);
        self.span.annotate("supersteps", supersteps as f64);
        self.span.annotate("bytes", bytes as f64);
    }
}

/// Trait for values that can be sent between ranks.
///
/// `nbytes` reports the wire size of the value; it is used purely for cost
/// accounting (α–β–γ model), the value itself is moved by ownership.
pub trait Msg: Send + 'static {
    /// Number of bytes this value would occupy on the network.
    fn nbytes(&self) -> usize;
}

macro_rules! impl_msg_primitive {
    ($($t:ty),*) => {
        $(impl Msg for $t {
            fn nbytes(&self) -> usize { std::mem::size_of::<$t>() }
        })*
    };
}

impl_msg_primitive!(
    u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, bool, char
);

impl Msg for () {
    fn nbytes(&self) -> usize {
        0
    }
}

impl Msg for String {
    fn nbytes(&self) -> usize {
        self.len()
    }
}

impl<T: Msg> Msg for Vec<T> {
    fn nbytes(&self) -> usize {
        self.iter().map(Msg::nbytes).sum()
    }
}

impl<T: Msg> Msg for Option<T> {
    fn nbytes(&self) -> usize {
        1 + self.as_ref().map(Msg::nbytes).unwrap_or(0)
    }
}

impl<T: Msg> Msg for Box<T> {
    fn nbytes(&self) -> usize {
        (**self).nbytes()
    }
}

impl<A: Msg, B: Msg> Msg for (A, B) {
    fn nbytes(&self) -> usize {
        self.0.nbytes() + self.1.nbytes()
    }
}

impl<A: Msg, B: Msg, C: Msg> Msg for (A, B, C) {
    fn nbytes(&self) -> usize {
        self.0.nbytes() + self.1.nbytes() + self.2.nbytes()
    }
}

impl<A: Msg, B: Msg, C: Msg, D: Msg> Msg for (A, B, C, D) {
    fn nbytes(&self) -> usize {
        self.0.nbytes() + self.1.nbytes() + self.2.nbytes() + self.3.nbytes()
    }
}

/// A message in flight between two ranks.
pub(crate) struct Envelope {
    /// World rank of the sender.
    pub src_world: usize,
    /// Communicator the message was sent on.
    pub comm_id: u64,
    /// User or collective tag.
    pub tag: u64,
    /// Wire size in bytes (for cost accounting on the receiver side).
    pub bytes: usize,
    /// The value itself.
    pub payload: Box<dyn Any + Send>,
}

/// The shared "network": one inbound channel per world rank.
pub(crate) struct Fabric {
    pub senders: Vec<Sender<Envelope>>,
}

/// Per-rank inbound mailbox: the channel receiver plus a buffer of
/// messages that arrived out of matching order.
pub(crate) struct Mailbox {
    pub rx: Receiver<Envelope>,
    pub pending: Vec<Envelope>,
}

impl Mailbox {
    fn take_matching(&mut self, src_world: usize, comm_id: u64, tag: u64) -> Option<Envelope> {
        let idx = self
            .pending
            .iter()
            .position(|e| e.src_world == src_world && e.comm_id == comm_id && e.tag == tag)?;
        Some(self.pending.swap_remove(idx))
    }
}

/// Identifier of the world communicator.
pub(crate) const WORLD_COMM_ID: u64 = 0;
/// Tag bit reserved for collective-internal messages.
pub(crate) const COLLECTIVE_TAG_BIT: u64 = 1 << 63;

fn derive_comm_id(parent: u64, split_seq: u64, color: u64) -> u64 {
    let mut h = DefaultHasher::new();
    (parent, split_seq, color).hash(&mut h);
    // Never collide with the world communicator id.
    h.finish() | 1
}

/// An MPI-style communicator: an ordered group of ranks that can exchange
/// point-to-point messages and participate in collectives.
///
/// A `Communicator` is a per-rank handle; it is cheap to clone and is not
/// `Send` (it never needs to leave its rank's thread).
pub struct Communicator {
    comm_id: u64,
    /// World ranks of the members, indexed by local rank.
    members: Arc<Vec<usize>>,
    /// This rank's index within `members`.
    my_local: usize,
    fabric: Arc<Fabric>,
    mailbox: Rc<RefCell<Mailbox>>,
    cost: Rc<RefCell<CostTracker>>,
    coll_seq: Rc<Cell<u64>>,
    split_seq: Rc<Cell<u64>>,
    /// Injected fault spec for the run (empty by default).
    faults: Arc<RankFaults>,
    /// Cached `faults.active()` — the per-site gate is one boolean test.
    faults_active: bool,
}

impl Communicator {
    pub(crate) fn world(
        world_rank: usize,
        world_size: usize,
        fabric: Arc<Fabric>,
        mailbox: Rc<RefCell<Mailbox>>,
        cost: Rc<RefCell<CostTracker>>,
        faults: Arc<RankFaults>,
    ) -> Self {
        let faults_active = faults.active();
        Communicator {
            comm_id: WORLD_COMM_ID,
            members: Arc::new((0..world_size).collect()),
            my_local: world_rank,
            fabric,
            mailbox,
            cost,
            coll_seq: Rc::new(Cell::new(0)),
            split_seq: Rc::new(Cell::new(0)),
            faults,
            faults_active,
        }
    }

    /// This rank's index within the communicator.
    pub fn rank(&self) -> usize {
        self.my_local
    }

    /// Number of ranks in the communicator.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// World rank of local rank `local`.
    pub fn world_rank_of(&self, local: usize) -> SimResult<usize> {
        self.members
            .get(local)
            .copied()
            .ok_or(SimError::InvalidRank { rank: local, size: self.members.len() })
    }

    /// Charge `n` arithmetic operations to this rank's cost tracker.
    pub fn add_flops(&self, n: u64) {
        self.cost.borrow_mut().add_flops(n);
    }

    /// Charge `bytes` of local memory traffic to this rank's tracker.
    pub fn add_mem_traffic(&self, bytes: u64) {
        self.cost.borrow_mut().add_mem_traffic(bytes);
    }

    /// Record one superstep (global synchronization) on this rank.
    pub fn record_superstep(&self) {
        self.cost.borrow_mut().record_superstep();
    }

    pub(crate) fn record_collective(&self) {
        self.cost.borrow_mut().record_collective();
    }

    /// Open a tracing span for the collective `name`, capturing the cost
    /// counters so the drop can annotate the span with the modeled time.
    /// When tracing is disabled this is a single relaxed atomic load.
    pub(crate) fn collective_span(&self, name: &'static str) -> CollectiveSpan {
        let span = gas_obs::span("collective", name);
        let (start_supersteps, start_bytes, start_flops) = if span.is_recording() {
            let c = self.cost.borrow();
            (c.supersteps(), c.bytes_received(), c.flops())
        } else {
            (0, 0, 0)
        };
        CollectiveSpan {
            span,
            cost: Rc::clone(&self.cost),
            start_supersteps,
            start_bytes,
            start_flops,
        }
    }

    /// Next collective-internal tag; all ranks of a communicator call
    /// collectives in the same order, so the sequence stays consistent.
    /// Each collective gets a window of 2^20 tags so multi-round
    /// algorithms can use `tag + round` without colliding with the next
    /// collective.
    pub(crate) fn next_coll_tag(&self) -> u64 {
        let seq = self.coll_seq.get();
        self.coll_seq.set(seq + 1);
        COLLECTIVE_TAG_BIT | (seq << 20)
    }

    /// The injected fault spec this communicator runs under.
    pub fn faults(&self) -> &RankFaults {
        &self.faults
    }

    /// Is this rank itself injected as crashed?
    pub fn is_crashed(&self) -> bool {
        self.faults_active && self.faults.is_crashed(self.members[self.my_local])
    }

    /// World ranks that are not injected as crashed, ascending — the
    /// membership list survivors pass to [`Communicator::subgroup`].
    pub fn alive_world_ranks(&self) -> Vec<usize> {
        self.faults.alive_ranks(self.fabric.senders.len())
    }

    /// The effective receive timeout: the injected one, else — whenever
    /// any fault is active — a generous safety net, because a crashed
    /// peer can make an *alive* rank abort a collective mid-flight and
    /// leave another alive rank waiting on a message that will never be
    /// sent. `None` (block forever) only in fault-free runs.
    fn recv_timeout_micros(&self) -> Option<u64> {
        if !self.faults_active {
            return None;
        }
        const FAULTED_RUN_SAFETY_NET_US: u64 = 5_000_000;
        Some(self.faults.recv_timeout_micros().unwrap_or(FAULTED_RUN_SAFETY_NET_US))
    }

    /// Typed crash check for a communication touching world rank
    /// `world` (self or peer). `None` when no faults are configured —
    /// the common case costs one boolean test.
    fn crash_check(&self, world: usize) -> Option<SimError> {
        if !self.faults_active {
            return None;
        }
        let me_world = self.members[self.my_local];
        for rank in [me_world, world] {
            if self.faults.is_crashed(rank) {
                gas_obs::counter("gas_chaos_rank_crash_hits_total").inc();
                return Some(SimError::RankCrashed { rank });
            }
        }
        None
    }

    /// Send `data` to local rank `dest` with `tag`.
    ///
    /// User tags must not set the highest bit (reserved for collectives).
    pub fn send<T: Msg>(&self, dest: usize, tag: u64, data: T) -> SimResult<()> {
        let dest_world = self.world_rank_of(dest)?;
        if let Some(err) = self.crash_check(dest_world) {
            return Err(err);
        }
        if self.faults_active {
            let delay = self.faults.slow_micros(self.members[self.my_local]);
            if delay > 0 {
                gas_obs::counter("gas_chaos_slow_delays_total").inc();
                std::thread::sleep(std::time::Duration::from_micros(delay));
            }
        }
        let bytes = data.nbytes();
        self.cost.borrow_mut().record_send(bytes);
        let env = Envelope {
            src_world: self.members[self.my_local],
            comm_id: self.comm_id,
            tag,
            bytes,
            payload: Box::new(data),
        };
        self.fabric.senders[dest_world].send(env).map_err(|_| SimError::Disconnected { src: dest })
    }

    /// Receive a `T` from local rank `src` with `tag`, blocking until the
    /// matching message arrives.
    pub fn recv<T: Msg>(&self, src: usize, tag: u64) -> SimResult<T> {
        let src_world = self.world_rank_of(src)?;
        if let Some(err) = self.crash_check(src_world) {
            return Err(err);
        }
        let mut mb = self.mailbox.borrow_mut();
        // Check the out-of-order buffer first.
        let env = if let Some(env) = mb.take_matching(src_world, self.comm_id, tag) {
            env
        } else if let Some(timeout_us) = self.recv_timeout_micros() {
            // Bounded wait instead of a blocking recv, so a slowed or
            // silent peer — e.g. an alive rank that aborted a collective
            // after hitting a crashed peer — surfaces as a typed Timeout
            // rather than a hung collective.
            let deadline = std::time::Instant::now() + std::time::Duration::from_micros(timeout_us);
            loop {
                let left = deadline.saturating_duration_since(std::time::Instant::now());
                let env = match mb.rx.recv_timeout(left) {
                    Ok(env) => env,
                    Err(RecvTimeoutError::Timeout) => {
                        gas_obs::counter("gas_chaos_timeouts_total").inc();
                        return Err(SimError::Timeout { src, waited_micros: timeout_us });
                    }
                    Err(RecvTimeoutError::Disconnected) => {
                        return Err(SimError::Disconnected { src });
                    }
                };
                if env.src_world == src_world && env.comm_id == self.comm_id && env.tag == tag {
                    break env;
                }
                mb.pending.push(env);
            }
        } else {
            loop {
                let env = mb.rx.recv().map_err(|_| SimError::Disconnected { src })?;
                if env.src_world == src_world && env.comm_id == self.comm_id && env.tag == tag {
                    break env;
                }
                mb.pending.push(env);
            }
        };
        self.cost.borrow_mut().record_recv(env.bytes);
        env.payload.downcast::<T>().map(|b| *b).map_err(|_| SimError::TypeMismatch { src, tag })
    }

    /// Combined send to `dest` and receive from `src` (both local ranks).
    ///
    /// The send is posted before the receive, so exchanges along a ring or
    /// hypercube do not deadlock (channels are unbounded).
    pub fn sendrecv<T: Msg, U: Msg>(
        &self,
        dest: usize,
        send_tag: u64,
        data: T,
        src: usize,
        recv_tag: u64,
    ) -> SimResult<U> {
        self.send(dest, send_tag, data)?;
        self.recv(src, recv_tag)
    }

    /// Split the communicator into disjoint sub-communicators by `color`
    /// (MPI_Comm_split with `key = rank`). All ranks must call this with
    /// some color; ranks with equal colors end up in the same communicator,
    /// ordered by their rank in the parent.
    pub fn split(&self, color: u64) -> SimResult<Communicator> {
        // Gather (color, parent_rank) from everyone.
        let gathered: Vec<(u64, u64)> = self.allgather(&[(color, self.my_local as u64)])?;
        let split_seq = self.split_seq.get();
        self.split_seq.set(split_seq + 1);
        let mut members: Vec<usize> = gathered
            .iter()
            .filter(|(c, _)| *c == color)
            .map(|(_, r)| self.members[*r as usize])
            .collect();
        members
            .sort_by_key(|w| self.members.iter().position(|m| m == w).expect("member must exist"));
        let my_world = self.members[self.my_local];
        let my_local = members
            .iter()
            .position(|w| *w == my_world)
            .expect("calling rank must be a member of its own color group");
        Ok(Communicator {
            comm_id: derive_comm_id(self.comm_id, split_seq, color),
            members: Arc::new(members),
            my_local,
            fabric: Arc::clone(&self.fabric),
            mailbox: Rc::clone(&self.mailbox),
            cost: Rc::clone(&self.cost),
            coll_seq: Rc::new(Cell::new(0)),
            split_seq: Rc::new(Cell::new(0)),
            faults: Arc::clone(&self.faults),
            faults_active: self.faults_active,
        })
    }

    /// Form a sub-communicator over `members` (world ranks, strictly
    /// ascending) **without a collective**: unlike [`split`], no message
    /// exchange happens, so ranks outside `members` — crashed ones in
    /// particular — need not participate. Every member must call
    /// `subgroup` with the *same* list (the communicator id is derived
    /// from it), which is how survivors of an injected crash regroup:
    /// the fault spec is common knowledge, standing in for a membership
    /// service.
    ///
    /// [`split`]: Communicator::split
    pub fn subgroup(&self, members: &[usize]) -> SimResult<Communicator> {
        if members.is_empty() {
            return Err(SimError::InvalidWorldSize(0));
        }
        let world_size = self.fabric.senders.len();
        for pair in members.windows(2) {
            if pair[0] >= pair[1] {
                return Err(SimError::CollectiveMismatch(
                    "subgroup members must be strictly ascending".into(),
                ));
            }
        }
        if let Some(&last) = members.last() {
            if last >= world_size {
                return Err(SimError::InvalidRank { rank: last, size: world_size });
            }
        }
        let my_world = self.members[self.my_local];
        let Some(my_local) = members.iter().position(|&w| w == my_world) else {
            return Err(SimError::InvalidRank { rank: my_world, size: members.len() });
        };
        // Deterministic id from the member list itself: every member
        // computes the same id with no exchange. The "color" slot hashes
        // the list; the split_seq slot is a fixed salt distinguishing
        // subgroup ids from split ids of the same parent.
        let mut h = DefaultHasher::new();
        members.hash(&mut h);
        Ok(Communicator {
            comm_id: derive_comm_id(self.comm_id, u64::MAX, h.finish()),
            members: Arc::new(members.to_vec()),
            my_local,
            fabric: Arc::clone(&self.fabric),
            mailbox: Rc::clone(&self.mailbox),
            cost: Rc::clone(&self.cost),
            coll_seq: Rc::new(Cell::new(0)),
            split_seq: Rc::new(Cell::new(0)),
            faults: Arc::clone(&self.faults),
            faults_active: self.faults_active,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msg_nbytes_for_primitives_and_containers() {
        assert_eq!(3u8.nbytes(), 1);
        assert_eq!(3u64.nbytes(), 8);
        assert_eq!(1.5f64.nbytes(), 8);
        assert_eq!(().nbytes(), 0);
        assert_eq!("abcd".to_string().nbytes(), 4);
        assert_eq!(vec![1u32, 2, 3].nbytes(), 12);
        assert_eq!((1u8, 2u64).nbytes(), 9);
        assert_eq!((1u8, 2u64, 3u32).nbytes(), 13);
        assert_eq!((1u8, 2u64, 3u32, 4u16).nbytes(), 15);
        assert_eq!(Some(7u64).nbytes(), 9);
        assert_eq!(Option::<u64>::None.nbytes(), 1);
        assert_eq!(Box::new(5u32).nbytes(), 4);
        assert_eq!(vec![vec![1u8, 2], vec![3u8]].nbytes(), 3);
    }

    #[test]
    fn derive_comm_id_is_deterministic_and_nonzero() {
        let a = derive_comm_id(0, 1, 5);
        let b = derive_comm_id(0, 1, 5);
        let c = derive_comm_id(0, 2, 5);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, WORLD_COMM_ID);
    }
}
