//! BSP α–β–γ cost accounting.
//!
//! The paper analyses SimilarityAtScale in a Bulk Synchronous Parallel
//! (BSP) model where a superstep (global synchronization) costs `α`, each
//! byte moved costs `β` and each arithmetic operation costs `γ`
//! (Section III-C, with `α ≥ β ≥ γ`). The simulator charges every
//! point-to-point message, collective round and locally-counted arithmetic
//! operation to a per-rank [`CostTracker`]; a [`CostModel`] then converts
//! the counters into a projected execution time.
//!
//! Two times are reported for every run:
//!
//! * **measured** — the wall-clock time the host actually spent inside the
//!   rank closure (this captures local kernel speed on the machine the
//!   reproduction runs on), and
//! * **modeled** — `supersteps·α + max_rank(bytes)·β + max_rank(flops)·γ +
//!   max_rank(mem_traffic)/stream_bw`, the BSP projection for the target
//!   machine described by the [`CostModel`].

use serde::{Deserialize, Serialize};

/// Parameters of the α–β–γ BSP machine model plus local-memory parameters.
///
/// All times are in seconds, bandwidths in bytes per second.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Latency / synchronization cost of one superstep (seconds).
    pub alpha: f64,
    /// Inverse network bandwidth (seconds per byte).
    pub beta: f64,
    /// Cost of one arithmetic operation (seconds per flop).
    pub gamma: f64,
    /// Usable memory per rank, in bytes (the `M` of the paper).
    pub mem_per_rank: usize,
    /// Effective local memory streaming bandwidth (bytes/second). On a KNL
    /// node this differs between MCDRAM-as-cache and DDR-only (flat) modes.
    pub stream_bw: f64,
}

impl CostModel {
    /// A model with all costs zero — useful in tests that only care about
    /// counters, not projections.
    pub fn zero() -> Self {
        CostModel {
            alpha: 0.0,
            beta: 0.0,
            gamma: 0.0,
            mem_per_rank: usize::MAX,
            stream_bw: f64::INFINITY,
        }
    }

    /// Validate that parameters are non-negative and ordered sensibly.
    pub fn validate(&self) -> Result<(), crate::error::SimError> {
        if !(self.alpha >= 0.0 && self.beta >= 0.0 && self.gamma >= 0.0) {
            return Err(crate::error::SimError::InvalidConfig(
                "alpha, beta, gamma must be non-negative".to_string(),
            ));
        }
        if self.stream_bw <= 0.0 {
            return Err(crate::error::SimError::InvalidConfig(
                "stream_bw must be positive".to_string(),
            ));
        }
        Ok(())
    }

    /// BSP time of a single superstep moving `bytes` and performing
    /// `flops` arithmetic operations per rank (the h-relation view).
    pub fn superstep_time(&self, bytes: u64, flops: u64) -> f64 {
        self.alpha + bytes as f64 * self.beta + flops as f64 * self.gamma
    }

    /// Per-rank BSP time prediction for one finished report:
    /// `supersteps·α + bytes_received·β + flops·γ`. This is the per-rank
    /// view whose maximum [`Self::project`] takes; exposing it lets the
    /// machine-parameter fit compare predicted against measured seconds
    /// rank by rank instead of only at the run level.
    pub fn predicted_seconds(&self, report: &CostReport) -> f64 {
        report.supersteps as f64 * self.alpha
            + report.bytes_received as f64 * self.beta
            + report.flops as f64 * self.gamma
    }

    /// Project the total BSP time of a run from per-rank counters.
    ///
    /// The projection is `supersteps·α + bytes·β + flops·γ +
    /// mem_traffic / stream_bw`, evaluated on the maximum per-rank values
    /// (the BSP bound is governed by the most loaded rank in each
    /// superstep; using the global per-run maximum is a standard and
    /// slightly conservative approximation).
    pub fn project(&self, reports: &[CostReport]) -> f64 {
        let supersteps = reports.iter().map(|r| r.supersteps).max().unwrap_or(0);
        let bytes = reports.iter().map(|r| r.bytes_sent.max(r.bytes_received)).max().unwrap_or(0);
        let flops = reports.iter().map(|r| r.flops).max().unwrap_or(0);
        let mem = reports.iter().map(|r| r.mem_traffic).max().unwrap_or(0);
        supersteps as f64 * self.alpha
            + bytes as f64 * self.beta
            + flops as f64 * self.gamma
            + mem as f64 / self.stream_bw
    }
}

impl Default for CostModel {
    /// A generic commodity-cluster model: 1 µs latency, 10 GB/s network,
    /// 1 Gflop/s effective scalar rate, 4 GiB per rank, 80 GB/s stream.
    fn default() -> Self {
        CostModel {
            alpha: 1.0e-6,
            beta: 1.0 / 10.0e9,
            gamma: 1.0e-9,
            mem_per_rank: 4 << 30,
            stream_bw: 80.0e9,
        }
    }
}

/// Per-rank communication/computation counters accumulated during a run.
///
/// A tracker is owned by a single rank (no sharing, no atomics); the
/// runtime collects the final values into [`CostReport`]s.
#[derive(Debug, Default, Clone)]
pub struct CostTracker {
    msgs_sent: u64,
    msgs_received: u64,
    bytes_sent: u64,
    bytes_received: u64,
    flops: u64,
    mem_traffic: u64,
    supersteps: u64,
    collectives: u64,
}

impl CostTracker {
    /// Create a tracker with all counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a point-to-point send of `bytes` bytes.
    pub fn record_send(&mut self, bytes: usize) {
        self.msgs_sent += 1;
        self.bytes_sent += bytes as u64;
    }

    /// Record a point-to-point receive of `bytes` bytes.
    pub fn record_recv(&mut self, bytes: usize) {
        self.msgs_received += 1;
        self.bytes_received += bytes as u64;
    }

    /// Record `n` arithmetic operations performed locally.
    pub fn add_flops(&mut self, n: u64) {
        self.flops += n;
    }

    /// Record `bytes` of local memory traffic (streaming loads/stores of a
    /// kernel); used by the MCDRAM study.
    pub fn add_mem_traffic(&mut self, bytes: u64) {
        self.mem_traffic += bytes;
    }

    /// Record the completion of a superstep (a global synchronization).
    pub fn record_superstep(&mut self) {
        self.supersteps += 1;
    }

    /// Record participation in one collective operation.
    pub fn record_collective(&mut self) {
        self.collectives += 1;
    }

    /// Snapshot the counters into an immutable report for `rank`.
    pub fn report(&self, rank: usize, measured_seconds: f64) -> CostReport {
        CostReport {
            rank,
            msgs_sent: self.msgs_sent,
            msgs_received: self.msgs_received,
            bytes_sent: self.bytes_sent,
            bytes_received: self.bytes_received,
            flops: self.flops,
            mem_traffic: self.mem_traffic,
            supersteps: self.supersteps,
            collectives: self.collectives,
            measured_seconds,
        }
    }

    /// Number of supersteps recorded so far.
    pub fn supersteps(&self) -> u64 {
        self.supersteps
    }

    /// Total bytes sent so far.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Total bytes received so far.
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received
    }

    /// Total arithmetic operations recorded so far.
    pub fn flops(&self) -> u64 {
        self.flops
    }
}

/// Immutable per-rank summary of a finished run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostReport {
    /// Rank the report belongs to.
    pub rank: usize,
    /// Number of point-to-point messages sent.
    pub msgs_sent: u64,
    /// Number of point-to-point messages received.
    pub msgs_received: u64,
    /// Bytes sent.
    pub bytes_sent: u64,
    /// Bytes received.
    pub bytes_received: u64,
    /// Arithmetic operations charged with [`CostTracker::add_flops`].
    pub flops: u64,
    /// Local memory traffic charged with [`CostTracker::add_mem_traffic`].
    pub mem_traffic: u64,
    /// Supersteps (global synchronizations) this rank participated in.
    pub supersteps: u64,
    /// Collective operations this rank participated in.
    pub collectives: u64,
    /// Wall-clock seconds the rank spent inside its closure.
    pub measured_seconds: f64,
}

/// Aggregate statistics over all ranks of a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregateCost {
    /// Number of ranks aggregated.
    pub nranks: usize,
    /// Total bytes sent across all ranks.
    pub total_bytes_sent: u64,
    /// Maximum bytes sent by any single rank.
    pub max_bytes_sent: u64,
    /// Total messages sent across all ranks.
    pub total_msgs: u64,
    /// Maximum supersteps seen on any rank.
    pub max_supersteps: u64,
    /// Total arithmetic operations.
    pub total_flops: u64,
    /// Maximum flops on any single rank (load balance indicator).
    pub max_flops: u64,
    /// Maximum measured wall-clock time of any rank.
    pub max_measured_seconds: f64,
}

impl AggregateCost {
    /// Summarize a slice of per-rank reports.
    pub fn from_reports(reports: &[CostReport]) -> Self {
        AggregateCost {
            nranks: reports.len(),
            total_bytes_sent: reports.iter().map(|r| r.bytes_sent).sum(),
            max_bytes_sent: reports.iter().map(|r| r.bytes_sent).max().unwrap_or(0),
            total_msgs: reports.iter().map(|r| r.msgs_sent).sum(),
            max_supersteps: reports.iter().map(|r| r.supersteps).max().unwrap_or(0),
            total_flops: reports.iter().map(|r| r.flops).sum(),
            max_flops: reports.iter().map(|r| r.flops).max().unwrap_or(0),
            max_measured_seconds: reports.iter().map(|r| r.measured_seconds).fold(0.0, f64::max),
        }
    }

    /// Flop load imbalance: `max_flops / (total_flops / nranks)`.
    /// Returns 1.0 for an empty or perfectly balanced run.
    pub fn flop_imbalance(&self) -> f64 {
        if self.total_flops == 0 || self.nranks == 0 {
            return 1.0;
        }
        let avg = self.total_flops as f64 / self.nranks as f64;
        self.max_flops as f64 / avg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_accumulates_counters() {
        let mut t = CostTracker::new();
        t.record_send(100);
        t.record_send(50);
        t.record_recv(25);
        t.add_flops(1000);
        t.add_mem_traffic(4096);
        t.record_superstep();
        t.record_superstep();
        t.record_collective();
        let r = t.report(3, 1.5);
        assert_eq!(r.rank, 3);
        assert_eq!(r.msgs_sent, 2);
        assert_eq!(r.bytes_sent, 150);
        assert_eq!(r.msgs_received, 1);
        assert_eq!(r.bytes_received, 25);
        assert_eq!(r.flops, 1000);
        assert_eq!(r.mem_traffic, 4096);
        assert_eq!(r.supersteps, 2);
        assert_eq!(r.collectives, 1);
        assert!((r.measured_seconds - 1.5).abs() < 1e-12);
    }

    #[test]
    fn model_projects_superstep_time() {
        let m =
            CostModel { alpha: 1.0, beta: 0.5, gamma: 0.25, mem_per_rank: 1 << 20, stream_bw: 1e9 };
        let t = m.superstep_time(10, 4);
        assert!((t - (1.0 + 5.0 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn projection_uses_max_per_rank() {
        let m =
            CostModel { alpha: 1.0, beta: 1.0, gamma: 1.0, mem_per_rank: 1 << 20, stream_bw: 1.0 };
        let mut a = CostTracker::new();
        a.record_send(5);
        a.add_flops(2);
        a.record_superstep();
        let mut b = CostTracker::new();
        b.record_send(10);
        b.add_flops(1);
        b.record_superstep();
        b.record_superstep();
        let reports = vec![a.report(0, 0.0), b.report(1, 0.0)];
        // supersteps = 2, bytes = 10, flops = 2, mem = 0
        let t = m.project(&reports);
        assert!((t - (2.0 + 10.0 + 2.0)).abs() < 1e-12);
    }

    #[test]
    fn aggregate_and_imbalance() {
        let mut a = CostTracker::new();
        a.add_flops(30);
        let mut b = CostTracker::new();
        b.add_flops(10);
        let reports = vec![a.report(0, 0.2), b.report(1, 0.4)];
        let agg = AggregateCost::from_reports(&reports);
        assert_eq!(agg.nranks, 2);
        assert_eq!(agg.total_flops, 40);
        assert_eq!(agg.max_flops, 30);
        assert!((agg.flop_imbalance() - 1.5).abs() < 1e-12);
        assert!((agg.max_measured_seconds - 0.4).abs() < 1e-12);
    }

    #[test]
    fn imbalance_of_empty_run_is_one() {
        let agg = AggregateCost::from_reports(&[]);
        assert_eq!(agg.flop_imbalance(), 1.0);
    }

    #[test]
    fn validate_rejects_bad_parameters() {
        let mut m = CostModel::default();
        assert!(m.validate().is_ok());
        m.alpha = -1.0;
        assert!(m.validate().is_err());
        let m = CostModel { stream_bw: 0.0, ..CostModel::default() };
        assert!(m.validate().is_err());
    }

    #[test]
    fn zero_model_projects_zero() {
        let m = CostModel::zero();
        let mut t = CostTracker::new();
        t.record_send(1 << 20);
        t.add_flops(1 << 20);
        t.record_superstep();
        assert_eq!(m.project(&[t.report(0, 0.0)]), 0.0);
    }
}
