//! Injected rank faults for the simulated runtime.
//!
//! A [`RankFaults`] spec marks ranks as **crashed** (every communication
//! op touching them returns [`SimError::RankCrashed`] immediately —
//! deterministic, no timers involved) or **slowed** (the rank sleeps a
//! fixed delay before every send, so peers with an injected receive
//! timeout observe [`SimError::Timeout`]). The spec is plain data
//! attached to a [`Runtime`](crate::runtime::Runtime) before the run
//! starts, so the fault schedule is a pure function of the spec — the
//! same spec replays the same failures.
//!
//! Crashes use a *crash-at-start* model: the crashed rank's closure
//! still runs (so `Runtime::run` keeps returning one result per rank),
//! but its first communication attempt — and every peer's attempt to
//! talk to it — fails with a typed error. This is the shape that lets
//! serving code practice failover: survivors learn about the crash
//! through errors or out-of-band knowledge of the spec (standing in for
//! a membership service), regroup with
//! [`Communicator::subgroup`](crate::comm::Communicator::subgroup), and
//! keep answering.
//!
//! Every fault observation bumps a `gas_chaos_*` counter in the
//! `gas_obs` registry. A default (empty) spec costs one boolean test
//! per site.

use std::collections::{BTreeMap, BTreeSet};

/// Fault spec for one simulated run: which ranks are crashed, which are
/// slowed (and by how much), and an optional receive timeout every rank
/// applies to blocking receives.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RankFaults {
    crashed: BTreeSet<usize>,
    slow_micros: BTreeMap<usize, u64>,
    recv_timeout_micros: Option<u64>,
}

impl RankFaults {
    /// A spec with no faults (the default).
    pub fn none() -> Self {
        RankFaults::default()
    }

    /// Mark `rank` (world numbering) as crashed from the start.
    pub fn crash(mut self, rank: usize) -> Self {
        self.crashed.insert(rank);
        self
    }

    /// Slow `rank` by `micros` before every send it performs.
    pub fn slow(mut self, rank: usize, micros: u64) -> Self {
        self.slow_micros.insert(rank, micros);
        self
    }

    /// Apply a timeout (microseconds) to every blocking receive; a
    /// receive that waits longer fails with [`SimError::Timeout`]
    /// (crate::error::SimError::Timeout) instead of blocking forever.
    pub fn with_recv_timeout(mut self, micros: u64) -> Self {
        self.recv_timeout_micros = Some(micros);
        self
    }

    /// Is any fault configured? Checked once per communicator op.
    pub fn active(&self) -> bool {
        !self.crashed.is_empty()
            || !self.slow_micros.is_empty()
            || self.recv_timeout_micros.is_some()
    }

    /// Is `rank` (world numbering) injected as crashed?
    pub fn is_crashed(&self, rank: usize) -> bool {
        self.crashed.contains(&rank)
    }

    /// The crashed ranks, ascending (world numbering).
    pub fn crashed_ranks(&self) -> impl Iterator<Item = usize> + '_ {
        self.crashed.iter().copied()
    }

    /// Injected per-send delay for `rank`, or 0.
    pub fn slow_micros(&self, rank: usize) -> u64 {
        self.slow_micros.get(&rank).copied().unwrap_or(0)
    }

    /// The injected receive timeout, if any.
    pub fn recv_timeout_micros(&self) -> Option<u64> {
        self.recv_timeout_micros
    }

    /// The ranks of a world of size `p` that are *not* crashed,
    /// ascending — the membership list survivors regroup on.
    pub fn alive_ranks(&self, p: usize) -> Vec<usize> {
        (0..p).filter(|r| !self.crashed.contains(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_accessors_round_trip() {
        let f = RankFaults::none().crash(2).slow(1, 500).with_recv_timeout(2000);
        assert!(f.active());
        assert!(f.is_crashed(2));
        assert!(!f.is_crashed(1));
        assert_eq!(f.slow_micros(1), 500);
        assert_eq!(f.slow_micros(0), 0);
        assert_eq!(f.recv_timeout_micros(), Some(2000));
        assert_eq!(f.crashed_ranks().collect::<Vec<_>>(), vec![2]);
        assert_eq!(f.alive_ranks(4), vec![0, 1, 3]);
        assert!(!RankFaults::none().active());
    }
}
