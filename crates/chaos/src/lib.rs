//! `gas-chaos`: deterministic fault injection for the serving stack.
//!
//! Production failures — short writes, torn writes, transient I/O
//! errors, fsync loss, crashed or slowed ranks — are rare enough that
//! code paths handling them rot unless they can be *driven on demand*.
//! This crate makes failure an injectable, reproducible input:
//!
//! * a [`Storage`] trait abstracts the container's four I/O shapes
//!   (whole-file read, truncate-then-append-then-sync, atomic replace,
//!   plain write). [`RealFs`] is the byte-identical default;
//!   [`ChaosStorage`] wraps any storage and injects faults from a
//!   [`FaultPlan`];
//! * a [`FaultPlan`] is **seeded and wall-clock free**: the fault
//!   schedule is a pure function of `(seed, op-counter)`, so the same
//!   seed replays the same faults in the same places. One-shot faults
//!   can also be scripted at exact operation indices for targeted
//!   tests;
//! * a process-global [`enabled`] switch gates every injection site at
//!   the cost of **one relaxed atomic load** — the production default
//!   (`false`) makes a chaos-wrapped storage a plain pass-through;
//! * [`RetryPolicy`] provides bounded-attempt exponential backoff with
//!   *deterministic* jitter (`splitmix64(seed, attempt)`), shared by
//!   the service layer's commit retry and anything else that backs
//!   off.
//!
//! Every injected fault bumps a `gas_chaos_*` counter in the
//! [`gas_obs`] registry, so chaos drills leave the same audit trail a
//! production incident would.

use std::collections::BTreeMap;
use std::io::{self, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Process-global injection switch. While `false` (the default) every
/// [`ChaosStorage`] method is a pass-through guarded by one relaxed
/// atomic load; [`RealFs`] never checks it at all.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is fault injection globally enabled? One relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Flip the global injection switch (tests and chaos drills only).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// SplitMix64 — the one PRNG the whole plan derives from. Local copy so
/// this crate stays at the bottom of the workspace DAG (no `gas-core`).
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The kinds of storage fault the plan can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A transient `ErrorKind`-style I/O error before anything touches
    /// the file: nothing is written, the caller sees `Err`. Retryable.
    IoError,
    /// The write stops short: a prefix of the payload lands on disk and
    /// the caller sees `Err`.
    ShortWrite,
    /// The write tears at an arbitrary byte offset (mid-word cuts
    /// included): a ragged prefix lands on disk and the caller sees
    /// `Err`.
    TornWrite,
    /// The write "succeeds" (`Ok`) but the sync lied: only a prefix of
    /// the payload is durable. Observable only after a crash — exactly
    /// how a power cut behind a volatile write cache behaves.
    FsyncLoss,
}

impl FaultKind {
    fn metric(self) -> &'static str {
        match self {
            FaultKind::IoError => "gas_chaos_io_error_total",
            FaultKind::ShortWrite => "gas_chaos_short_write_total",
            FaultKind::TornWrite => "gas_chaos_torn_write_total",
            FaultKind::FsyncLoss => "gas_chaos_fsync_loss_total",
        }
    }
}

/// One decided fault: the kind plus a deterministic roll that picks cut
/// offsets.
#[derive(Debug, Clone, Copy)]
pub struct Fault {
    pub kind: FaultKind,
    pub roll: u64,
}

impl Fault {
    /// A cut point in `0..=len` derived from the roll (never the full
    /// length for `len > 0`, so a "cut" write is always actually cut).
    pub fn cut(&self, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        (splitmix64(self.roll ^ 0x00C0_FFEE) % len as u64) as usize
    }
}

/// A deterministic fault schedule: a pure function of
/// `(seed, op-counter)` plus scripted one-shot overrides.
///
/// Same seed ⇒ same schedule, independent of wall-clock, thread timing
/// or machine — the determinism contract chaos tests rely on.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    /// Probability any given storage op faults, in parts per 1000.
    fault_per_mille: u16,
    /// Kinds eligible for seeded faults (scripted faults ignore this).
    kinds: Vec<FaultKind>,
    /// One-shot faults at exact op indices; they win over the seeded
    /// roll and fire exactly once.
    scripted: BTreeMap<u64, FaultKind>,
    /// Monotone op counter — every storage call consumes one index.
    ops: u64,
}

impl FaultPlan {
    /// A plan that never fires (useful as an inert default).
    pub fn none() -> Self {
        FaultPlan::seeded(0, 0)
    }

    /// A seeded plan firing on roughly `fault_per_mille`/1000 of ops,
    /// over all four fault kinds.
    pub fn seeded(seed: u64, fault_per_mille: u16) -> Self {
        FaultPlan {
            seed,
            fault_per_mille: fault_per_mille.min(1000),
            kinds: vec![
                FaultKind::IoError,
                FaultKind::ShortWrite,
                FaultKind::TornWrite,
                FaultKind::FsyncLoss,
            ],
            scripted: BTreeMap::new(),
            ops: 0,
        }
    }

    /// Restrict the seeded kinds (scripted faults are unaffected).
    pub fn with_kinds(mut self, kinds: &[FaultKind]) -> Self {
        self.kinds = kinds.to_vec();
        self
    }

    /// Script a one-shot `kind` at exact op index `op` (0-based over
    /// every storage call this plan sees).
    pub fn script(mut self, op: u64, kind: FaultKind) -> Self {
        self.scripted.insert(op, kind);
        self
    }

    /// Ops decided so far (useful to script "the next op" from a test).
    pub fn ops_seen(&self) -> u64 {
        self.ops
    }

    /// Decide the fate of the next op. Pure in `(seed, ops)`; advances
    /// the op counter.
    pub fn decide(&mut self) -> Option<Fault> {
        let op = self.ops;
        self.ops += 1;
        let roll = splitmix64(self.seed ^ op.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        if let Some(kind) = self.scripted.remove(&op) {
            return Some(Fault { kind, roll });
        }
        if self.kinds.is_empty() || self.fault_per_mille == 0 {
            return None;
        }
        if roll % 1000 < self.fault_per_mille as u64 {
            let kind = self.kinds[(splitmix64(roll) % self.kinds.len() as u64) as usize];
            return Some(Fault { kind, roll });
        }
        None
    }
}

/// Bounded-attempt exponential backoff with deterministic jitter.
///
/// Delay for attempt *k* (0-based) is
/// `min(max_delay, base_delay · 2^k) · (0.5 + jitter/2)` where `jitter`
/// is `splitmix64(jitter_seed ^ k)` mapped to `[0, 1)` — the same seed
/// replays the same backoff schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). `1` disables retries.
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_delay: Duration,
    /// Backoff cap.
    pub max_delay: Duration,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(50),
            jitter_seed: 0x6A17,
        }
    }
}

impl RetryPolicy {
    /// The backoff to sleep after failed attempt `attempt` (0-based).
    pub fn delay(&self, attempt: u32) -> Duration {
        let exp = self.base_delay.saturating_mul(1u32 << attempt.min(20));
        let capped = exp.min(self.max_delay);
        let jitter =
            (splitmix64(self.jitter_seed ^ attempt as u64) >> 11) as f64 / (1u64 << 53) as f64;
        capped.mul_f64(0.5 + jitter / 2.0)
    }
}

/// The four I/O shapes the index container uses, abstracted so a chaos
/// implementation can slide underneath the [`IndexWriter`] without the
/// caller changing.
pub trait Storage: Send + Sync + std::fmt::Debug {
    /// Read the whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// The commit append: truncate `path` to `keep` bytes, append
    /// `tail` at that offset, then sync file data. This is the v3
    /// container's crash-safety primitive — the manifest rides last in
    /// `tail`, so any prefix of it on disk is a torn tail the reader
    /// falls back from.
    fn append_tail(&self, path: &Path, keep: u64, tail: &[u8]) -> io::Result<()>;

    /// Atomic whole-file replace: write a temp sibling, fsync it,
    /// rename over `path`, sync the parent directory. Either the old or
    /// the new content is fully visible — never a mix.
    fn replace(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Plain whole-file write (legacy v1/v2 containers only; no
    /// atomicity guarantee).
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
}

/// Best-effort fsync of a path's parent directory, so a rename is
/// durable across a crash (no-op where unsupported).
pub fn sync_parent_dir(path: &Path) {
    #[cfg(unix)]
    if let Some(parent) = path.parent() {
        if let Ok(dir) = std::fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    #[cfg(not(unix))]
    let _ = path;
}

/// The real filesystem: exactly the I/O the container performed before
/// the trait existed, byte for byte.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealFs;

impl Storage for RealFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn append_tail(&self, path: &Path, keep: u64, tail: &[u8]) -> io::Result<()> {
        use std::io::{Seek, SeekFrom};
        let mut file = std::fs::OpenOptions::new().write(true).open(path)?;
        file.set_len(keep)?;
        file.seek(SeekFrom::Start(keep))?;
        file.write_all(tail)?;
        file.sync_data()
    }

    fn replace(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut tmp_name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
        tmp_name.push(".tmp");
        let tmp = path.with_file_name(tmp_name);
        {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(bytes)?;
            file.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        sync_parent_dir(path);
        Ok(())
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        std::fs::write(path, bytes)
    }
}

/// A storage wrapper that injects the wrapped [`FaultPlan`]'s faults
/// into every call — when the global [`enabled`] switch is on. When it
/// is off every method is a pass-through behind one relaxed atomic
/// load.
#[derive(Debug)]
pub struct ChaosStorage {
    inner: Arc<dyn Storage>,
    plan: Mutex<FaultPlan>,
}

impl ChaosStorage {
    /// Wrap `inner` with `plan`.
    pub fn new(inner: Arc<dyn Storage>, plan: FaultPlan) -> Self {
        ChaosStorage { inner, plan: Mutex::new(plan) }
    }

    /// Chaos over the real filesystem — the common drill setup.
    pub fn over_fs(plan: FaultPlan) -> Self {
        ChaosStorage::new(Arc::new(RealFs), plan)
    }

    /// Swap the plan (keeps the op counter of the new plan).
    pub fn set_plan(&self, plan: FaultPlan) {
        *self.plan.lock().expect("chaos plan lock poisoned") = plan;
    }

    /// Ops decided so far by the current plan.
    pub fn ops_seen(&self) -> u64 {
        self.plan.lock().expect("chaos plan lock poisoned").ops_seen()
    }

    fn next_fault(&self) -> Option<Fault> {
        if !enabled() {
            return None;
        }
        let fault = self.plan.lock().expect("chaos plan lock poisoned").decide();
        if let Some(f) = fault {
            gas_obs::counter("gas_chaos_injected_total").inc();
            gas_obs::counter(f.kind.metric()).inc();
        }
        fault
    }
}

/// A transient error whose `ErrorKind` is itself derived from the roll,
/// so retries see the variety real storage produces.
fn transient_error(roll: u64) -> io::Error {
    let kind = match splitmix64(roll ^ 0x10) % 3 {
        0 => io::ErrorKind::Interrupted,
        1 => io::ErrorKind::TimedOut,
        _ => io::ErrorKind::Other,
    };
    io::Error::new(kind, "injected transient I/O error")
}

impl Storage for ChaosStorage {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        // Reads fault transiently only: there is nothing torn to leave
        // behind, the bytes on disk are untouched.
        if let Some(f) = self.next_fault() {
            if f.kind == FaultKind::IoError {
                return Err(transient_error(f.roll));
            }
        }
        self.inner.read(path)
    }

    fn append_tail(&self, path: &Path, keep: u64, tail: &[u8]) -> io::Result<()> {
        let Some(f) = self.next_fault() else {
            return self.inner.append_tail(path, keep, tail);
        };
        match f.kind {
            FaultKind::IoError => Err(transient_error(f.roll)),
            FaultKind::ShortWrite => {
                // An honest short write: a prefix lands, the caller is
                // told. Cut on the payload length.
                let cut = f.cut(tail.len());
                self.inner.append_tail(path, keep, &tail[..cut])?;
                Err(io::Error::new(io::ErrorKind::WriteZero, "injected short write"))
            }
            FaultKind::TornWrite => {
                // A torn write: ragged prefix (any byte offset, mid-word
                // included), then failure.
                let cut = f.cut(tail.len());
                self.inner.append_tail(path, keep, &tail[..cut])?;
                Err(io::Error::other("injected torn write"))
            }
            FaultKind::FsyncLoss => {
                // The lying sync: the call reports success but only a
                // prefix is durable. Modeled by appending the prefix and
                // returning Ok — the caller's in-memory offsets run
                // ahead of the file, exactly as after a power cut.
                let cut = f.cut(tail.len());
                self.inner.append_tail(path, keep, &tail[..cut])?;
                Ok(())
            }
        }
    }

    fn replace(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let Some(f) = self.next_fault() else {
            return self.inner.replace(path, bytes);
        };
        match f.kind {
            FaultKind::IoError => Err(transient_error(f.roll)),
            // A replace that dies before the rename — torn or short temp
            // file, original untouched. The temp write goes to a decoy
            // sibling so even a ragged prefix never shadows the real
            // temp path of a later successful replace.
            FaultKind::ShortWrite | FaultKind::TornWrite => {
                let cut = f.cut(bytes.len());
                let mut decoy_name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
                decoy_name.push(".chaos-torn");
                let decoy = path.with_file_name(decoy_name);
                let _ = self.inner.write(&decoy, &bytes[..cut]);
                Err(io::Error::other("injected crash before rename"))
            }
            // For an atomic replace a lying sync downgrades to a failed
            // rename: the new bytes are gone, the original is intact.
            FaultKind::FsyncLoss => Err(io::Error::other("injected rename failure")),
        }
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let Some(f) = self.next_fault() else {
            return self.inner.write(path, bytes);
        };
        match f.kind {
            FaultKind::IoError => Err(transient_error(f.roll)),
            _ => {
                let cut = f.cut(bytes.len());
                self.inner.write(path, &bytes[..cut])?;
                Err(io::Error::new(io::ErrorKind::WriteZero, "injected short write"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unique_path(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::AtomicU64;
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("gas_chaos_{tag}_{}_{n}.bin", std::process::id()))
    }

    #[test]
    fn same_seed_same_schedule() {
        let mut a = FaultPlan::seeded(42, 400);
        let mut b = FaultPlan::seeded(42, 400);
        for _ in 0..256 {
            let (fa, fb) = (a.decide(), b.decide());
            match (fa, fb) {
                (None, None) => {}
                (Some(x), Some(y)) => {
                    assert_eq!(x.kind, y.kind);
                    assert_eq!(x.roll, y.roll);
                }
                _ => panic!("schedules diverged"),
            }
        }
        let mut c = FaultPlan::seeded(42, 400);
        let mut d = FaultPlan::seeded(43, 400);
        let differs = (0..256).any(|_| c.decide().map(|f| f.roll) != d.decide().map(|f| f.roll));
        assert!(differs, "different seeds should produce different schedules");
    }

    #[test]
    fn scripted_faults_fire_exactly_once_at_their_index() {
        let mut plan = FaultPlan::seeded(7, 0).script(2, FaultKind::TornWrite);
        assert!(plan.decide().is_none());
        assert!(plan.decide().is_none());
        let f = plan.decide().expect("scripted op fires");
        assert_eq!(f.kind, FaultKind::TornWrite);
        assert!(plan.decide().is_none());
    }

    #[test]
    fn disabled_injection_is_a_pass_through() {
        set_enabled(false);
        let path = unique_path("pass");
        let chaos = ChaosStorage::over_fs(FaultPlan::seeded(1, 1000));
        chaos.write(&path, b"hello").unwrap();
        assert_eq!(chaos.read(&path).unwrap(), b"hello");
        // The plan never advanced: injection sites are dormant.
        assert_eq!(chaos.ops_seen(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_append_leaves_a_prefix_and_reports_failure() {
        set_enabled(true);
        let path = unique_path("torn");
        let chaos = ChaosStorage::over_fs(FaultPlan::seeded(9, 0).script(1, FaultKind::TornWrite));
        chaos.write(&path, b"base").unwrap();
        let err = chaos.append_tail(&path, 4, b"0123456789").unwrap_err();
        assert!(err.to_string().contains("torn"));
        let on_disk = std::fs::read(&path).unwrap();
        assert!(on_disk.len() < 14, "torn write must not land fully");
        assert!(on_disk.starts_with(b"base"));
        set_enabled(false);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn failed_replace_keeps_the_original_intact() {
        set_enabled(true);
        let path = unique_path("replace");
        std::fs::write(&path, b"live generation").unwrap();
        for kind in [FaultKind::IoError, FaultKind::TornWrite, FaultKind::FsyncLoss] {
            let chaos = ChaosStorage::over_fs(FaultPlan::seeded(3, 0).script(0, kind));
            chaos.replace(&path, b"replacement").unwrap_err();
            assert_eq!(std::fs::read(&path).unwrap(), b"live generation", "{kind:?}");
        }
        set_enabled(false);
        std::fs::remove_file(&path).unwrap();
        let _ =
            std::fs::remove_file(path.with_file_name(format!(
                "{}.chaos-torn",
                path.file_name().unwrap().to_string_lossy()
            )));
    }

    #[test]
    fn fsync_loss_reports_success_but_loses_the_tail() {
        set_enabled(true);
        let path = unique_path("fsync");
        let chaos = ChaosStorage::over_fs(FaultPlan::seeded(5, 0).script(1, FaultKind::FsyncLoss));
        chaos.write(&path, b"base").unwrap();
        chaos.append_tail(&path, 4, b"0123456789").unwrap();
        let on_disk = std::fs::read(&path).unwrap();
        assert!(on_disk.len() < 14, "the lying sync must have dropped bytes");
        set_enabled(false);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn retry_backoff_is_deterministic_bounded_and_monotone_in_cap() {
        let policy = RetryPolicy::default();
        for attempt in 0..8 {
            let d1 = policy.delay(attempt);
            let d2 = policy.delay(attempt);
            assert_eq!(d1, d2, "jitter must be deterministic");
            assert!(d1 <= policy.max_delay, "delay exceeds cap at attempt {attempt}");
            assert!(d1 >= policy.base_delay / 2u32.pow(1), "delay under half the base");
        }
    }
}
