//! Property tests for the shared latency histogram: bucket-boundary
//! correctness on record and quantile monotonicity in `q`, plus the
//! Prometheus round-trip on arbitrary contents.

use gas_obs::{parse_prometheus, to_prometheus, LatencyHistogram, MetricsSnapshot};
use proptest::prelude::*;

/// The bucket a sample of `micros` must land in: 0 for a zero sample,
/// otherwise the `i` with `2^(i-1) <= micros < 2^i`, saturating at the
/// open-ended top bucket.
fn expected_bucket(micros: u64) -> usize {
    if micros == 0 {
        return 0;
    }
    let mut i = 0usize;
    while i < 63 && (1u64 << i) <= micros {
        i += 1;
    }
    i.min(gas_obs::HISTOGRAM_BUCKETS - 1)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn every_sample_lands_in_its_power_of_two_bucket(samples in
        prop::collection::vec(0u64..1 << 40, 1..64)) {
        for &micros in &samples {
            let mut h = LatencyHistogram::new();
            h.record_micros(micros);
            let idx = expected_bucket(micros);
            prop_assert_eq!(h.buckets()[idx], 1, "sample {} should land in bucket {}", micros, idx);
            prop_assert_eq!(h.buckets().iter().sum::<u64>(), 1);
            // The bucket's nominal bound really is an upper bound except
            // in the open-ended top bucket.
            if idx + 1 < gas_obs::HISTOGRAM_BUCKETS {
                prop_assert!(micros < LatencyHistogram::bucket_bound_micros(idx));
            }
        }
    }

    #[test]
    fn quantiles_are_monotone_in_q_and_bounded_by_max(samples in
        prop::collection::vec(0u64..1 << 34, 1..80)) {
        let mut h = LatencyHistogram::new();
        let mut max = 0u64;
        for &micros in &samples {
            h.record_micros(micros);
            max = max.max(micros);
        }
        let mut prev = 0u64;
        for i in 0..=20u64 {
            let q = i as f64 / 20.0;
            let v = h.quantile_micros(q);
            prop_assert!(v >= prev, "quantile dropped from {} to {} at q={}", prev, v, q);
            prop_assert!(v <= max.max(1), "quantile {} exceeds observed max {}", v, max);
            prev = v;
        }
        prop_assert_eq!(h.quantile_micros(1.0).max(1), max.max(1));
        prop_assert_eq!(h.max_micros(), max);
    }

    #[test]
    fn prometheus_round_trips_arbitrary_histograms(samples in
        prop::collection::vec(0u64..1 << 36, 0..64)) {
        let mut h = LatencyHistogram::new();
        for &micros in &samples {
            h.record_micros(micros);
        }
        let mut snap = MetricsSnapshot::default();
        snap.set_histogram("gas_prop_micros", h);
        let parsed = parse_prometheus(&to_prometheus(&snap)).expect("round trip");
        prop_assert_eq!(parsed, snap);
    }
}
