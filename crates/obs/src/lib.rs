//! `gas-obs`: observability for the GenomeAtScale reproduction.
//!
//! Three small pieces, no third-party dependencies:
//!
//! - [`trace`]: structured tracing — RAII [`Span`]s with phase tags,
//!   recorded into per-thread buffers and drained through a global
//!   recorder that is a guaranteed-cheap no-op while disabled
//!   (`GAS_TRACE=1` or [`set_enabled`]).
//! - [`metrics`]: a process-global registry of named counters, gauges
//!   and latency histograms ([`LatencyHistogram`] moved here from
//!   `gas_index::service`), snapshotted for export.
//! - [`export`]: hand-rolled Prometheus-text and JSON writers (both
//!   round-trip-parseable), folded-stacks dumps for flamegraphs, and the
//!   predicted-vs-measured collectives report.
//!
//! The serving stack (`gas-index`), the simulator (`gas-dstsim`), the
//! bench harness and the criterion stand-in all hang their
//! instrumentation off this crate; it depends on nothing, so it sits at
//! the bottom of the workspace DAG.

pub mod export;
pub mod hist;
pub mod metrics;
pub mod trace;

pub use export::{
    collective_cost_report, folded_stacks, metrics_to_json, parse_prometheus,
    render_collective_costs, to_prometheus, trace_to_json, CollectiveCost,
};
pub use hist::{LatencyHistogram, HISTOGRAM_BUCKETS};
pub use metrics::{
    counter, gauge, histogram, reset_metrics, segment_counter_name, snapshot, Counter, Gauge,
    Histogram, MetricsSnapshot,
};
pub use trace::{
    clear, set_enabled, set_sink, span, take_events, trace_enabled, Span, TraceEvent, TraceSink,
};
