//! Structured tracing: nested RAII spans recorded into per-thread
//! buffers and drained through a process-global recorder.
//!
//! The recorder is a guaranteed-cheap no-op while disabled: opening a
//! span costs one relaxed atomic load and constructs nothing. It is
//! enabled by the `GAS_TRACE=1` environment variable (read once, at
//! first use) or programmatically via [`set_enabled`] (the
//! `IndexOptions::with_tracing` path).
//!
//! Each thread buffers its own closed spans and flushes them to the
//! global sink whenever its *root* span closes (so signer, sealer,
//! compactor and simulated-rank threads publish complete trees), plus
//! once more when the thread exits. [`take_events`] drains everything
//! flushed so far.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// One closed span: where it ran, where it sat in the tree, and how
/// long it took.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Process-unique id of the recording thread.
    pub thread: u64,
    /// Coarse phase tag (`"serve"`, `"commit"`, `"compact"`, `"dist"`,
    /// `"collective"`, ...).
    pub phase: &'static str,
    /// Span name (`"probe"`, `"seal"`, `"allgatherv"`, ...).
    pub name: &'static str,
    /// Semicolon-joined path from the thread's root span to this one
    /// (folded-stacks convention), e.g. `"query_page;probe"`.
    pub stack: String,
    /// Nesting depth (0 = root span of its thread).
    pub depth: u32,
    /// Start time in nanoseconds since the recorder's epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// Numeric annotations attached via [`Span::annotate`]
    /// (e.g. `("predicted_us", 12.5)`).
    pub attrs: Vec<(&'static str, f64)>,
}

/// Receiver of flushed span batches. The default sink buffers in
/// memory and is drained by [`take_events`]; install a custom one with
/// [`set_sink`] to stream spans elsewhere.
pub trait TraceSink: Send + Sync + 'static {
    /// Accept a batch of closed spans flushed from one thread.
    fn record(&self, events: Vec<TraceEvent>);
}

/// The built-in sink backing [`take_events`].
struct MemorySink;

impl TraceSink for MemorySink {
    fn record(&self, mut events: Vec<TraceEvent>) {
        recorder().events.lock().expect("trace sink poisoned").append(&mut events);
    }
}

struct Recorder {
    enabled: AtomicBool,
    epoch: Instant,
    events: Mutex<Vec<TraceEvent>>,
    sink: Mutex<Arc<dyn TraceSink>>,
}

fn recorder() -> &'static Recorder {
    static RECORDER: OnceLock<Recorder> = OnceLock::new();
    RECORDER.get_or_init(|| Recorder {
        enabled: AtomicBool::new(std::env::var("GAS_TRACE").is_ok_and(|v| v == "1")),
        epoch: Instant::now(),
        events: Mutex::new(Vec::new()),
        sink: Mutex::new(Arc::new(MemorySink)),
    })
}

/// Replace the sink flushed span batches are delivered to. Events
/// already delivered to the previous sink stay there.
pub fn set_sink(sink: Arc<dyn TraceSink>) {
    *recorder().sink.lock().expect("trace sink poisoned") = sink;
}

/// Is the recorder currently enabled? One relaxed atomic load — this is
/// the entire cost of a span on the disabled path.
#[inline]
pub fn trace_enabled() -> bool {
    recorder().enabled.load(Ordering::Relaxed)
}

/// Enable or disable the recorder process-wide. Spans already open keep
/// recording; spans opened after a disable are inert.
pub fn set_enabled(enabled: bool) {
    recorder().enabled.store(enabled, Ordering::Relaxed);
}

/// Drain every event flushed to the global sink so far, flushing the
/// calling thread's buffer first. Events appear in close order within
/// each flush (children before parents).
pub fn take_events() -> Vec<TraceEvent> {
    LOCAL.with(|tt| flush(&mut tt.borrow_mut().buf));
    std::mem::take(&mut *recorder().events.lock().expect("trace sink poisoned"))
}

/// Drop everything flushed so far (and the calling thread's buffer).
pub fn clear() {
    LOCAL.with(|tt| tt.borrow_mut().buf.clear());
    recorder().events.lock().expect("trace sink poisoned").clear();
}

fn flush(buf: &mut Vec<TraceEvent>) {
    if buf.is_empty() {
        return;
    }
    let sink = Arc::clone(&*recorder().sink.lock().expect("trace sink poisoned"));
    sink.record(std::mem::take(buf));
}

struct ThreadTrace {
    id: u64,
    /// Names of the currently-open spans, root first.
    stack: Vec<&'static str>,
    /// Closed spans awaiting a root-close (or thread-exit) flush.
    buf: Vec<TraceEvent>,
}

impl Drop for ThreadTrace {
    fn drop(&mut self) {
        flush(&mut self.buf);
    }
}

thread_local! {
    static LOCAL: RefCell<ThreadTrace> = {
        static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);
        RefCell::new(ThreadTrace {
            id: NEXT_THREAD.fetch_add(1, Ordering::Relaxed),
            stack: Vec::new(),
            buf: Vec::new(),
        })
    };
}

/// An open span. Created by [`span`]; records a [`TraceEvent`] when
/// dropped. When the recorder is disabled the span is inert and
/// allocation-free.
#[derive(Debug)]
pub struct Span {
    inner: Option<SpanInner>,
}

#[derive(Debug)]
struct SpanInner {
    phase: &'static str,
    name: &'static str,
    stack: String,
    depth: u32,
    start: Instant,
    attrs: Vec<(&'static str, f64)>,
}

/// Open a span named `name` under phase tag `phase`. Nesting follows
/// RAII drop order on the calling thread.
#[inline]
pub fn span(phase: &'static str, name: &'static str) -> Span {
    if !trace_enabled() {
        return Span { inner: None };
    }
    let (stack, depth) = LOCAL.with(|tt| {
        let mut tt = tt.borrow_mut();
        let depth = tt.stack.len() as u32;
        tt.stack.push(name);
        let mut stack = String::with_capacity(tt.stack.iter().map(|s| s.len() + 1).sum());
        for (i, part) in tt.stack.iter().enumerate() {
            if i > 0 {
                stack.push(';');
            }
            stack.push_str(part);
        }
        (stack, depth)
    });
    Span {
        inner: Some(SpanInner {
            phase,
            name,
            stack,
            depth,
            start: Instant::now(),
            attrs: Vec::new(),
        }),
    }
}

impl Span {
    /// Attach a numeric annotation (no-op on an inert span).
    pub fn annotate(&mut self, key: &'static str, value: f64) {
        if let Some(inner) = &mut self.inner {
            inner.attrs.push((key, value));
        }
    }

    /// Is this span actually recording?
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else { return };
        let dur_ns = inner.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let start_ns =
            inner.start.duration_since(recorder().epoch).as_nanos().min(u64::MAX as u128) as u64;
        LOCAL.with(|tt| {
            let mut tt = tt.borrow_mut();
            // Pop this span's name; stray pops can only happen if a Span
            // was sent across threads, which the API does not offer.
            tt.stack.pop();
            let event = TraceEvent {
                thread: tt.id,
                phase: inner.phase,
                name: inner.name,
                stack: inner.stack,
                depth: inner.depth,
                start_ns,
                dur_ns,
                attrs: inner.attrs,
            };
            tt.buf.push(event);
            if tt.stack.is_empty() {
                flush(&mut tt.buf);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The recorder is process-global, so every test in this module runs
    // under one lock and leaves the recorder disabled and drained.
    fn serialized<R>(f: impl FnOnce() -> R) -> R {
        static GATE: Mutex<()> = Mutex::new(());
        let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        clear();
        let out = f();
        set_enabled(false);
        clear();
        out
    }

    #[test]
    fn disabled_spans_are_inert() {
        serialized(|| {
            set_enabled(false);
            let mut s = span("serve", "noop");
            assert!(!s.is_recording());
            s.annotate("x", 1.0);
            drop(s);
            assert!(take_events().is_empty());
        });
    }

    #[test]
    fn nested_spans_record_stacks_depths_and_containment() {
        let events = serialized(|| {
            {
                let _root = span("serve", "request");
                {
                    let _probe = span("serve", "probe");
                }
                {
                    let mut score = span("serve", "score");
                    score.annotate("candidates", 42.0);
                }
            }
            take_events()
        });
        assert_eq!(events.len(), 3);
        // Children close first; the root closes last.
        assert_eq!(events[0].stack, "request;probe");
        assert_eq!(events[1].stack, "request;score");
        assert_eq!(events[2].stack, "request");
        assert_eq!(events[2].depth, 0);
        assert_eq!(events[0].depth, 1);
        assert_eq!(events[1].attrs, vec![("candidates", 42.0)]);
        let root = &events[2];
        for child in &events[..2] {
            assert!(child.start_ns >= root.start_ns, "child starts inside its parent");
            assert!(
                child.start_ns + child.dur_ns <= root.start_ns + root.dur_ns,
                "child ends inside its parent"
            );
        }
        assert!(
            events[0].dur_ns + events[1].dur_ns <= root.dur_ns,
            "sibling durations fit inside the parent"
        );
    }

    #[test]
    fn custom_sinks_receive_flushed_batches() {
        struct Counting(Mutex<Vec<TraceEvent>>);
        impl TraceSink for Counting {
            fn record(&self, mut events: Vec<TraceEvent>) {
                self.0.lock().expect("counting sink").append(&mut events);
            }
        }
        serialized(|| {
            let sink = Arc::new(Counting(Mutex::new(Vec::new())));
            set_sink(Arc::clone(&sink) as Arc<dyn TraceSink>);
            drop(span("serve", "routed"));
            set_sink(Arc::new(MemorySink));
            let got = sink.0.lock().expect("counting sink");
            assert_eq!(got.len(), 1);
            assert_eq!(got[0].name, "routed");
        });
    }

    #[test]
    fn spans_from_other_threads_flush_on_root_close() {
        let events = serialized(|| {
            std::thread::spawn(|| {
                let _s = span("commit", "sign");
            })
            .join()
            .expect("worker thread");
            take_events()
        });
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "sign");
        assert_eq!(events[0].phase, "commit");
    }
}
