//! Exporters: Prometheus text, JSON report rows, folded stacks and the
//! predicted-vs-measured collectives report.
//!
//! The Prometheus writer is paired with a strict parser so exports are
//! round-trip-testable without a third-party client; the JSON writers
//! emit exactly the `{"title": ..., "rows": [...]}` shape of
//! `gas_bench::report::Table::write_json`, so the bench crate's
//! `read_json_rows` reads them back.

use std::collections::BTreeMap;

use crate::hist::{LatencyHistogram, HISTOGRAM_BUCKETS};
use crate::metrics::MetricsSnapshot;
use crate::trace::TraceEvent;

// ---------------------------------------------------------------------------
// Prometheus text
// ---------------------------------------------------------------------------

/// Render a snapshot as Prometheus text exposition. Histograms emit the
/// standard cumulative `_bucket{le=...}` / `_sum` / `_count` series plus
/// a non-standard `<name>_max` gauge so [`parse_prometheus`] can rebuild
/// the exact [`LatencyHistogram`] (the open-ended top bucket needs the
/// observed maximum).
pub fn to_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
    }
    for (name, value) in &snap.gauges {
        out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
    }
    for (name, hist) in &snap.histograms {
        out.push_str(&format!("# TYPE {name} histogram\n"));
        let mut cum = 0u64;
        for (i, &n) in hist.buckets().iter().enumerate() {
            cum += n;
            if i + 1 == HISTOGRAM_BUCKETS {
                out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cum}\n"));
            } else {
                let bound = LatencyHistogram::bucket_bound_micros(i);
                out.push_str(&format!("{name}_bucket{{le=\"{bound}\"}} {cum}\n"));
            }
        }
        out.push_str(&format!("{name}_sum {}\n", hist.total_micros()));
        out.push_str(&format!("{name}_count {}\n", hist.count()));
        out.push_str(&format!("{name}_max {}\n", hist.max_micros()));
    }
    out
}

/// Parse text produced by [`to_prometheus`] back into a snapshot.
///
/// Deliberately strict (like `read_json_rows`): it accepts exactly the
/// shape the writer emits and fails loudly on anything else, so a
/// corrupted scrape is an error rather than an empty snapshot.
pub fn parse_prometheus(text: &str) -> Result<MetricsSnapshot, String> {
    let mut snap = MetricsSnapshot::default();
    let mut lines = text.lines().peekable();
    while let Some(line) = lines.next() {
        if line.is_empty() {
            continue;
        }
        let (kind, name) = parse_type_line(line)?;
        match kind {
            "counter" => {
                let (n, v) = parse_sample(lines.next().ok_or("missing counter sample")?)?;
                if n != name {
                    return Err(format!("counter sample {n} under # TYPE {name}"));
                }
                snap.counters.push((name.to_string(), v.parse().map_err(|e| format!("{e}"))?));
            }
            "gauge" => {
                let (n, v) = parse_sample(lines.next().ok_or("missing gauge sample")?)?;
                if n != name {
                    return Err(format!("gauge sample {n} under # TYPE {name}"));
                }
                snap.gauges.push((name.to_string(), v.parse().map_err(|e| format!("{e}"))?));
            }
            "histogram" => {
                let mut buckets = [0u64; HISTOGRAM_BUCKETS];
                let mut prev = 0u64;
                for (i, slot) in buckets.iter_mut().enumerate() {
                    let line = lines.next().ok_or("truncated histogram buckets")?;
                    let (n, v) = parse_sample(line)?;
                    let want = if i + 1 == HISTOGRAM_BUCKETS {
                        format!("{name}_bucket{{le=\"+Inf\"}}")
                    } else {
                        format!(
                            "{name}_bucket{{le=\"{}\"}}",
                            LatencyHistogram::bucket_bound_micros(i)
                        )
                    };
                    if n != want {
                        return Err(format!("expected series {want}, found {n}"));
                    }
                    let cum: u64 = v.parse().map_err(|e| format!("{e}"))?;
                    *slot = cum.checked_sub(prev).ok_or("non-monotone histogram buckets")?;
                    prev = cum;
                }
                let mut tail = |suffix: &str| -> Result<u64, String> {
                    let (n, v) = parse_sample(lines.next().ok_or("truncated histogram tail")?)?;
                    if n != format!("{name}_{suffix}") {
                        return Err(format!("expected {name}_{suffix}, found {n}"));
                    }
                    v.parse().map_err(|e| format!("{e}"))
                };
                let sum = tail("sum")?;
                let count = tail("count")?;
                let max = tail("max")?;
                let hist = LatencyHistogram::from_parts(buckets, sum, max);
                if hist.count() != count {
                    return Err(format!(
                        "histogram {name}: bucket sum {} != count {count}",
                        hist.count()
                    ));
                }
                snap.histograms.push((name.to_string(), hist));
            }
            other => return Err(format!("unknown metric type {other}")),
        }
    }
    Ok(snap)
}

fn parse_type_line(line: &str) -> Result<(&str, &str), String> {
    let rest = line.strip_prefix("# TYPE ").ok_or_else(|| format!("expected # TYPE: {line}"))?;
    rest.split_once(' ')
        .map(|(name, kind)| (kind, name))
        .ok_or_else(|| format!("malformed # TYPE line: {line}"))
}

fn parse_sample(line: &str) -> Result<(&str, &str), String> {
    line.rsplit_once(' ').ok_or_else(|| format!("malformed sample line: {line}"))
}

// ---------------------------------------------------------------------------
// JSON report rows (the Table::write_json shape)
// ---------------------------------------------------------------------------

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_report(title: &str, rows: Vec<Vec<(String, String)>>) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"title\": {},\n", json_string(title)));
    out.push_str("  \"rows\": [\n");
    for (ri, row) in rows.iter().enumerate() {
        let fields: Vec<String> =
            row.iter().map(|(k, v)| format!("{}: {v}", json_string(k))).collect();
        let sep = if ri + 1 < rows.len() { "," } else { "" };
        out.push_str(&format!("    {{{}}}{sep}\n", fields.join(", ")));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Render trace events as a JSON report (`read_json_rows`-compatible):
/// one row per closed span with `thread`/`phase`/`name`/`stack`/`depth`/
/// `start_ns`/`dur_ns` columns plus `attrs` as a `key=value` list.
pub fn trace_to_json(events: &[TraceEvent]) -> String {
    let rows = events
        .iter()
        .map(|e| {
            let attrs =
                e.attrs.iter().map(|(k, v)| format!("{k}={v}")).collect::<Vec<_>>().join(";");
            vec![
                ("thread".to_string(), e.thread.to_string()),
                ("phase".to_string(), json_string(e.phase)),
                ("name".to_string(), json_string(e.name)),
                ("stack".to_string(), json_string(&e.stack)),
                ("depth".to_string(), e.depth.to_string()),
                ("start_ns".to_string(), e.start_ns.to_string()),
                ("dur_ns".to_string(), e.dur_ns.to_string()),
                ("attrs".to_string(), json_string(&attrs)),
            ]
        })
        .collect();
    json_report("trace", rows)
}

/// Render a metrics snapshot as a JSON report (`read_json_rows`-
/// compatible): one row per metric with uniform columns — scalars fill
/// `value`, histograms fill the latency columns.
pub fn metrics_to_json(snap: &MetricsSnapshot) -> String {
    let mut rows = Vec::new();
    let scalar = |kind: &str, name: &str, value: String| {
        vec![
            ("kind".to_string(), json_string(kind)),
            ("name".to_string(), json_string(name)),
            ("value".to_string(), value),
            ("count".to_string(), "0".to_string()),
            ("p50_us".to_string(), "0".to_string()),
            ("p99_us".to_string(), "0".to_string()),
            ("max_us".to_string(), "0".to_string()),
        ]
    };
    for (name, value) in &snap.counters {
        rows.push(scalar("counter", name, value.to_string()));
    }
    for (name, value) in &snap.gauges {
        rows.push(scalar("gauge", name, value.to_string()));
    }
    for (name, hist) in &snap.histograms {
        rows.push(vec![
            ("kind".to_string(), json_string("histogram")),
            ("name".to_string(), json_string(name)),
            ("value".to_string(), hist.total_micros().to_string()),
            ("count".to_string(), hist.count().to_string()),
            ("p50_us".to_string(), hist.quantile_micros(0.5).to_string()),
            ("p99_us".to_string(), hist.quantile_micros(0.99).to_string()),
            ("max_us".to_string(), hist.max_micros().to_string()),
        ]);
    }
    json_report("metrics", rows)
}

// ---------------------------------------------------------------------------
// Folded stacks
// ---------------------------------------------------------------------------

/// Collapse span events into folded-stacks lines (`stack self_weight`),
/// the input format of flamegraph renderers. Weights are *self* time in
/// microseconds: each stack's total minus its direct children's totals
/// (clamped at zero — concurrent children can transiently oversubscribe
/// a parent). Stacks from different threads with the same path merge.
pub fn folded_stacks(events: &[TraceEvent]) -> String {
    let mut total: BTreeMap<&str, u64> = BTreeMap::new();
    for e in events {
        *total.entry(e.stack.as_str()).or_insert(0) += e.dur_ns;
    }
    let mut self_ns = total.clone();
    for (stack, ns) in &total {
        if let Some(pos) = stack.rfind(';') {
            if let Some(parent) = self_ns.get_mut(&stack[..pos]) {
                *parent = parent.saturating_sub(*ns);
            }
        }
    }
    let mut out = String::new();
    for (stack, ns) in &self_ns {
        out.push_str(&format!("{stack} {}\n", ns / 1_000));
    }
    out
}

// ---------------------------------------------------------------------------
// Predicted vs measured collectives
// ---------------------------------------------------------------------------

/// Aggregated cost of one collective phase: how often it ran, how long
/// it measurably took, and what the simulator's cost model predicted
/// (summed from the `predicted_us` span annotations).
#[derive(Debug, Clone, PartialEq)]
pub struct CollectiveCost {
    /// Collective name (`"bcast"`, `"allgatherv"`, ...).
    pub name: &'static str,
    /// Number of spans aggregated.
    pub calls: u64,
    /// Measured wall-clock, microseconds.
    pub measured_us: f64,
    /// Cost-model prediction, microseconds.
    pub predicted_us: f64,
}

/// Group `phase == "collective"` spans by name, summing measured
/// wall-clock and the `predicted_us` annotations. Sorted by name.
pub fn collective_cost_report(events: &[TraceEvent]) -> Vec<CollectiveCost> {
    let mut by_name: BTreeMap<&'static str, CollectiveCost> = BTreeMap::new();
    for e in events.iter().filter(|e| e.phase == "collective") {
        let entry = by_name.entry(e.name).or_insert(CollectiveCost {
            name: e.name,
            calls: 0,
            measured_us: 0.0,
            predicted_us: 0.0,
        });
        entry.calls += 1;
        entry.measured_us += e.dur_ns as f64 / 1_000.0;
        for (k, v) in &e.attrs {
            if *k == "predicted_us" {
                entry.predicted_us += v;
            }
        }
    }
    by_name.into_values().collect()
}

/// Render a [`collective_cost_report`] as an aligned text table.
pub fn render_collective_costs(report: &[CollectiveCost]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<20} {:>8} {:>14} {:>14} {:>8}\n",
        "collective", "calls", "measured_us", "predicted_us", "ratio"
    ));
    for row in report {
        let ratio = if row.predicted_us > 0.0 { row.measured_us / row.predicted_us } else { 0.0 };
        out.push_str(&format!(
            "{:<20} {:>8} {:>14.1} {:>14.1} {:>8.2}\n",
            row.name, row.calls, row.measured_us, row.predicted_us, ratio
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn sample_snapshot() -> MetricsSnapshot {
        let mut hist = LatencyHistogram::new();
        for micros in [0u64, 1, 3, 900, 5_000_000, 30_000_000] {
            hist.record(Duration::from_micros(micros));
        }
        let mut snap = MetricsSnapshot::default();
        snap.set_counter("gas_serve_requests_total", 42);
        snap.set_counter("gas_serve_shed_total", 3);
        snap.set_gauge("gas_serve_inflight", -1);
        snap.set_histogram("gas_serve_query_micros", hist);
        snap
    }

    #[test]
    fn prometheus_text_round_trips_exactly() {
        let snap = sample_snapshot();
        let text = to_prometheus(&snap);
        assert!(text.contains("# TYPE gas_serve_requests_total counter"));
        assert!(text.contains("gas_serve_requests_total 42"));
        assert!(text.contains("# TYPE gas_serve_query_micros histogram"));
        assert!(text.contains("gas_serve_query_micros_bucket{le=\"+Inf\"} 6"));
        assert!(text.contains("gas_serve_query_micros_max 30000000"));
        let parsed = parse_prometheus(&text).expect("round trip");
        assert_eq!(parsed, snap);
    }

    #[test]
    fn prometheus_parser_rejects_corruption() {
        let text = to_prometheus(&sample_snapshot());
        // Flipping any single line must fail loudly, not read as empty.
        for (i, _) in text.lines().enumerate() {
            let corrupted: String = text
                .lines()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, l)| format!("{l}\n"))
                .collect();
            assert!(parse_prometheus(&corrupted).is_err(), "dropping line {i} must fail");
        }
        assert!(parse_prometheus("gas_x 1\n").is_err(), "sample without # TYPE must fail");
    }

    #[test]
    fn trace_json_rows_carry_all_span_fields() {
        let events = vec![TraceEvent {
            thread: 1,
            phase: "serve",
            name: "probe",
            stack: "query_page;probe".to_string(),
            depth: 1,
            start_ns: 10,
            dur_ns: 20,
            attrs: vec![("candidates", 7.0)],
        }];
        let json = trace_to_json(&events);
        assert!(json.contains("\"title\": \"trace\""));
        assert!(json.contains("\"stack\": \"query_page;probe\""));
        assert!(json.contains("\"dur_ns\": 20"));
        assert!(json.contains("\"attrs\": \"candidates=7\""));
    }

    #[test]
    fn metrics_json_rows_cover_all_kinds() {
        let json = metrics_to_json(&sample_snapshot());
        assert!(json.contains(
            "\"kind\": \"counter\", \"name\": \"gas_serve_requests_total\", \"value\": 42"
        ));
        assert!(
            json.contains("\"kind\": \"gauge\", \"name\": \"gas_serve_inflight\", \"value\": -1")
        );
        assert!(json.contains("\"kind\": \"histogram\", \"name\": \"gas_serve_query_micros\""));
        assert!(json.contains("\"max_us\": 30000000"));
    }

    fn ev(stack: &str, dur_ns: u64) -> TraceEvent {
        let name: &'static str = "x";
        TraceEvent {
            thread: 0,
            phase: "serve",
            name,
            stack: stack.to_string(),
            depth: stack.matches(';').count() as u32,
            start_ns: 0,
            dur_ns,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn folded_stacks_report_self_time() {
        let events = vec![
            ev("req", 10_000),
            ev("req;probe", 3_000),
            ev("req;score", 4_000),
            ev("req;score;rerank", 1_000),
        ];
        let folded = folded_stacks(&events);
        let lines: Vec<&str> = folded.lines().collect();
        // Self time: req = 10 - 3 - 4 = 3 µs; score = 4 - 1 = 3 µs.
        assert_eq!(lines, vec!["req 3", "req;probe 3", "req;score 3", "req;score;rerank 1"]);
    }

    #[test]
    fn collective_report_groups_and_sums_predictions() {
        let mut a = ev("allgatherv", 5_000);
        a.phase = "collective";
        a.name = "allgatherv";
        a.attrs = vec![("predicted_us", 2.0)];
        let mut b = a.clone();
        b.dur_ns = 3_000;
        b.attrs = vec![("predicted_us", 1.5)];
        let mut c = ev("bcast", 1_000);
        c.phase = "collective";
        c.name = "bcast";
        let report = collective_cost_report(&[a, b, c, ev("not_collective", 9)]);
        assert_eq!(report.len(), 2);
        assert_eq!(report[0].name, "allgatherv");
        assert_eq!(report[0].calls, 2);
        assert!((report[0].measured_us - 8.0).abs() < 1e-9);
        assert!((report[0].predicted_us - 3.5).abs() < 1e-9);
        assert_eq!(report[1].name, "bcast");
        let rendered = render_collective_costs(&report);
        assert!(rendered.contains("allgatherv"));
        assert!(rendered.contains("predicted_us"));
    }
}
