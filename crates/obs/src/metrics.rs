//! Process-global metrics registry: named counters, gauges and latency
//! histograms under one namespace.
//!
//! Handles are get-or-create ([`counter`], [`gauge`], [`histogram`]) and
//! cheap to clone; [`snapshot`] captures every registered metric sorted
//! by name for the exporters. The registry absorbs what used to live in
//! scattered structs (`ServiceStats`, `DistQueryStats`, compaction
//! counters) so one scrape sees the whole serving stack.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use crate::hist::LatencyHistogram;

/// A monotonically increasing counter handle.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increase by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increase by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a value that can move in both directions.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Set the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A shared latency-histogram handle.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<Mutex<LatencyHistogram>>);

impl Histogram {
    /// Record one latency sample.
    pub fn record(&self, latency: Duration) {
        self.0.lock().expect("histogram poisoned").record(latency);
    }

    /// Record one sample given directly in microseconds.
    pub fn record_micros(&self, micros: u64) {
        self.0.lock().expect("histogram poisoned").record_micros(micros);
    }

    /// A copy of the current histogram contents.
    pub fn get(&self) -> LatencyHistogram {
        self.0.lock().expect("histogram poisoned").clone()
    }
}

#[derive(Default)]
struct Registry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Name of a per-segment counter: `{base}_seg{segment_id}_total`. Keyed
/// metric families (the planner's probe-heat counters, `gas_plan_*`) use
/// this so one segment's counter is one registry entry, alongside a plain
/// `{base}_total` aggregate, and consumers can reconstruct the family
/// from a snapshot by name.
pub fn segment_counter_name(base: &str, segment_id: u64) -> String {
    format!("{base}_seg{segment_id}_total")
}

/// Get or create the counter named `name`.
pub fn counter(name: &str) -> Counter {
    let mut map = registry().counters.lock().expect("metrics registry poisoned");
    map.entry(name.to_string()).or_insert_with(|| Counter(Arc::new(AtomicU64::new(0)))).clone()
}

/// Get or create the gauge named `name`.
pub fn gauge(name: &str) -> Gauge {
    let mut map = registry().gauges.lock().expect("metrics registry poisoned");
    map.entry(name.to_string()).or_insert_with(|| Gauge(Arc::new(AtomicI64::new(0)))).clone()
}

/// Get or create the histogram named `name`.
pub fn histogram(name: &str) -> Histogram {
    let mut map = registry().histograms.lock().expect("metrics registry poisoned");
    map.entry(name.to_string())
        .or_insert_with(|| Histogram(Arc::new(Mutex::new(LatencyHistogram::new()))))
        .clone()
}

/// A point-in-time capture of every registered metric, sorted by name.
/// This is what the exporters serialize and what
/// `IndexService::telemetry()` returns.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, i64)>,
    /// `(name, contents)` for every histogram.
    pub histograms: Vec<(String, LatencyHistogram)>,
}

impl MetricsSnapshot {
    /// Look up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Look up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Look up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&LatencyHistogram> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Insert or overwrite a counter (used by `telemetry()` adapters
    /// that fold externally-tracked stats into a snapshot).
    pub fn set_counter(&mut self, name: &str, value: u64) {
        match self.counters.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
            Ok(i) => self.counters[i].1 = value,
            Err(i) => self.counters.insert(i, (name.to_string(), value)),
        }
    }

    /// Insert or overwrite a gauge.
    pub fn set_gauge(&mut self, name: &str, value: i64) {
        match self.gauges.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
            Ok(i) => self.gauges[i].1 = value,
            Err(i) => self.gauges.insert(i, (name.to_string(), value)),
        }
    }

    /// Insert or overwrite a histogram.
    pub fn set_histogram(&mut self, name: &str, value: LatencyHistogram) {
        match self.histograms.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
            Ok(i) => self.histograms[i].1 = value,
            Err(i) => self.histograms.insert(i, (name.to_string(), value)),
        }
    }
}

/// Capture every registered metric, sorted by name.
pub fn snapshot() -> MetricsSnapshot {
    let reg = registry();
    let counters = reg
        .counters
        .lock()
        .expect("metrics registry poisoned")
        .iter()
        .map(|(n, c)| (n.clone(), c.get()))
        .collect();
    let gauges = reg
        .gauges
        .lock()
        .expect("metrics registry poisoned")
        .iter()
        .map(|(n, g)| (n.clone(), g.get()))
        .collect();
    let histograms = reg
        .histograms
        .lock()
        .expect("metrics registry poisoned")
        .iter()
        .map(|(n, h)| (n.clone(), h.get()))
        .collect();
    MetricsSnapshot { counters, gauges, histograms }
}

/// Drop every registered metric. Existing handles keep working but are
/// detached from the registry; intended for test isolation.
pub fn reset_metrics() {
    let reg = registry();
    reg.counters.lock().expect("metrics registry poisoned").clear();
    reg.gauges.lock().expect("metrics registry poisoned").clear();
    reg.histograms.lock().expect("metrics registry poisoned").clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global; serialize tests that reset it.
    fn serialized<R>(f: impl FnOnce() -> R) -> R {
        static GATE: Mutex<()> = Mutex::new(());
        let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
        reset_metrics();
        let out = f();
        reset_metrics();
        out
    }

    #[test]
    fn segment_counter_names_are_stable_and_distinct() {
        assert_eq!(
            segment_counter_name("gas_plan_segment_probes", 42),
            "gas_plan_segment_probes_seg42_total"
        );
        assert_ne!(
            segment_counter_name("gas_plan_segment_probes", 1),
            segment_counter_name("gas_plan_segment_probes", 2)
        );
    }

    #[test]
    fn counters_share_state_by_name() {
        serialized(|| {
            let a = counter("gas_test_requests_total");
            let b = counter("gas_test_requests_total");
            a.inc();
            b.add(2);
            assert_eq!(a.get(), 3);
            assert_eq!(snapshot().counter("gas_test_requests_total"), Some(3));
        });
    }

    #[test]
    fn gauges_move_both_directions() {
        serialized(|| {
            let g = gauge("gas_test_inflight");
            g.set(5);
            g.add(-2);
            assert_eq!(g.get(), 3);
            assert_eq!(snapshot().gauge("gas_test_inflight"), Some(3));
        });
    }

    #[test]
    fn histograms_record_and_snapshot() {
        serialized(|| {
            let h = histogram("gas_test_latency_micros");
            h.record_micros(100);
            h.record(Duration::from_micros(900));
            let snap = snapshot();
            let hist = snap.histogram("gas_test_latency_micros").expect("registered");
            assert_eq!(hist.count(), 2);
            assert_eq!(hist.total_micros(), 1000);
        });
    }

    #[test]
    fn snapshot_is_sorted_and_editable() {
        serialized(|| {
            counter("gas_test_b").inc();
            counter("gas_test_a").inc();
            let mut snap = snapshot();
            let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
            assert_eq!(names, vec!["gas_test_a", "gas_test_b"]);
            snap.set_counter("gas_test_ab", 7);
            let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
            assert_eq!(names, vec!["gas_test_a", "gas_test_ab", "gas_test_b"]);
            snap.set_counter("gas_test_a", 9);
            assert_eq!(snap.counter("gas_test_a"), Some(9));
        });
    }
}
