//! Power-of-two latency histogram shared across the workspace.
//!
//! Moved here from `gas_index::service` (which re-exports it for
//! compatibility) so the commit pipeline, the compactor, the criterion
//! stand-in and the metrics registry all bin latencies identically.

use std::time::Duration;

/// Number of power-of-two buckets: bucket `i < 23` holds microsecond
/// values in `[2^(i-1), 2^i)` (bucket 0 holds exactly 0 µs); the last
/// bucket is open-ended and holds everything from `2^22` µs (~4.2 s) up.
pub const HISTOGRAM_BUCKETS: usize = 24;

/// Fixed-footprint latency histogram with power-of-two microsecond
/// buckets — no allocation on record, mergeable, quantile-queryable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    total_micros: u64,
    /// Largest single sample ever recorded, in microseconds. The top
    /// bucket is open-ended, so its "upper bound" is only honest when a
    /// quantile that resolves there reports this observed maximum.
    max_micros: u64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuild a histogram from exported parts (the Prometheus-text
    /// parser's inverse of the accessors). `buckets` are per-bucket
    /// counts, not cumulative.
    pub fn from_parts(
        buckets: [u64; HISTOGRAM_BUCKETS],
        total_micros: u64,
        max_micros: u64,
    ) -> Self {
        let count = buckets.iter().sum();
        LatencyHistogram { buckets, count, total_micros, max_micros }
    }

    /// Record one latency sample.
    pub fn record(&mut self, latency: Duration) {
        self.record_micros(latency.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Record one latency sample given directly in microseconds.
    pub fn record_micros(&mut self, micros: u64) {
        let idx = (64 - micros.leading_zeros() as usize).min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.total_micros += micros;
        self.max_micros = self.max_micros.max(micros);
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.total_micros += other.total_micros;
        self.max_micros = self.max_micros.max(other.max_micros);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_micros(&self) -> u64 {
        self.total_micros.checked_div(self.count).unwrap_or(0)
    }

    /// Sum of all recorded samples, in microseconds.
    pub fn total_micros(&self) -> u64 {
        self.total_micros
    }

    /// Largest single sample recorded, in microseconds.
    pub fn max_micros(&self) -> u64 {
        self.max_micros
    }

    /// Upper bound (exclusive, in microseconds) of bucket `i` — the
    /// Prometheus `le` boundary of that bucket.
    pub fn bucket_bound_micros(i: usize) -> u64 {
        1u64 << i.min(HISTOGRAM_BUCKETS - 1)
    }

    /// An upper bound (µs) on the `q`-quantile (`q` in `[0, 1]`): the
    /// power-of-two boundary of the bucket the quantile lands in, or the
    /// observed maximum when it lands in the open-ended top bucket
    /// (where the boundary would otherwise be a *lower* bound).
    pub fn quantile_micros(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if i + 1 == self.buckets.len() { self.max_micros } else { 1u64 << i };
            }
        }
        self.max_micros
    }

    /// The raw per-bucket counts (bucket `i` ends at `2^i` µs; the last
    /// is open-ended).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reports_quantiles() {
        let mut h = LatencyHistogram::new();
        for micros in [3u64, 5, 9, 17, 100, 1000] {
            h.record(Duration::from_micros(micros));
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.mean_micros(), (3 + 5 + 9 + 17 + 100 + 1000) / 6);
        assert!(h.quantile_micros(0.5) <= 16);
        assert!(h.quantile_micros(1.0) >= 1000);
    }

    #[test]
    fn top_bucket_quantile_reports_the_observed_maximum() {
        // The last bucket is open-ended: before the fix, a 20-second
        // sample reported a "p100" of 2^23 µs (~8.4 s), an upper bound
        // that was actually a lower bound.
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_secs(20));
        assert_eq!(h.quantile_micros(1.0), 20_000_000);
        assert_eq!(h.max_micros(), 20_000_000);
        // A sample inside the top bucket's nominal range also reports
        // the honest maximum rather than the 2^23 boundary.
        let mut h = LatencyHistogram::new();
        h.record_micros(5_000_000);
        assert_eq!(h.quantile_micros(0.5), 5_000_000);
    }

    #[test]
    fn quantile_is_monotone_even_across_the_top_bucket() {
        let mut h = LatencyHistogram::new();
        for micros in [1u64, 1 << 10, 1 << 21, (1 << 23) + 123] {
            h.record_micros(micros);
        }
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        for w in qs.windows(2) {
            assert!(
                h.quantile_micros(w[0]) <= h.quantile_micros(w[1]),
                "quantile not monotone between q={} and q={}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn merge_adds_counts_and_keeps_the_max() {
        let mut a = LatencyHistogram::new();
        a.record_micros(10);
        let mut b = LatencyHistogram::new();
        b.record_micros(1 << 24);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max_micros(), 1 << 24);
        assert_eq!(a.total_micros(), 10 + (1 << 24));
    }

    #[test]
    fn from_parts_round_trips_the_accessors() {
        let mut h = LatencyHistogram::new();
        for micros in [0u64, 1, 2, 7, 1 << 20, 1 << 23] {
            h.record_micros(micros);
        }
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        buckets.copy_from_slice(h.buckets());
        let rebuilt = LatencyHistogram::from_parts(buckets, h.total_micros(), h.max_micros());
        assert_eq!(rebuilt, h);
    }
}
